//! Differential testing on randomly generated combinational circuits:
//! the hardware simulator must agree with a direct software evaluation
//! of the same gate DAG, before and after obfuscation, and the
//! netlisters must stay well-formed on arbitrary structure.
//!
//! Randomized with the in-repo deterministic RNG (`ipd-testutil`), so
//! the suite runs with zero registry dependencies.

use ipd::hdl::{CellCtx, Circuit, PortSpec, Signal, WireId};
use ipd::sim::Simulator;
use ipd::techlib::LogicCtx;
use ipd_testutil::{check_n, XorShift64};

/// One random gate in the DAG; sources index previously created
/// signals (modulo the pool size at evaluation time).
#[derive(Debug, Clone)]
enum Op {
    Inv(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
    Lut2(u16, usize, usize),
}

fn any_op(rng: &mut XorShift64) -> Op {
    let kind = rng.below(6);
    let a = rng.next_u64() as usize;
    let b = rng.next_u64() as usize;
    let c = rng.next_u64() as usize;
    match kind {
        0 => Op::Inv(a),
        1 => Op::And(a, b),
        2 => Op::Or(a, b),
        3 => Op::Xor(a, b),
        4 => Op::Mux(a, b, c),
        _ => Op::Lut2((rng.next_u64() & 0xF) as u16, a, b),
    }
}

fn any_ops(rng: &mut XorShift64, max: usize) -> Vec<Op> {
    let len = 1 + rng.index(max - 1);
    (0..len).map(|_| any_op(rng)).collect()
}

/// Builds the circuit for a DAG over `inputs` primary bits, returning
/// the signal pool size.
fn build(
    ctx: &mut CellCtx<'_>,
    input_wire: WireId,
    inputs: usize,
    ops: &[Op],
    out_wire: WireId,
) -> ipd::hdl::Result<usize> {
    let mut pool: Vec<Signal> = (0..inputs)
        .map(|b| Signal::bit_of(input_wire, b as u32))
        .collect();
    for (k, op) in ops.iter().enumerate() {
        let pick = |i: usize| pool[i % pool.len()].clone();
        let out = ctx.wire(&format!("g{k}"), 1);
        match op {
            Op::Inv(a) => ctx.inv(pick(*a), out)?,
            Op::And(a, b) => ctx.and2(pick(*a), pick(*b), out)?,
            Op::Or(a, b) => ctx.or2(pick(*a), pick(*b), out)?,
            Op::Xor(a, b) => ctx.xor2(pick(*a), pick(*b), out)?,
            Op::Mux(a, b, s) => ctx.mux2(pick(*a), pick(*b), pick(*s), out)?,
            Op::Lut2(init, a, b) => ctx.lut(*init, &[pick(*a), pick(*b)], out)?,
        };
        pool.push(out.into());
    }
    // The last signal drives the output.
    let last = pool.last().expect("non-empty pool").clone();
    ctx.buffer(last, out_wire)?;
    Ok(pool.len())
}

/// Software oracle for the same DAG.
fn oracle(inputs: &[bool], ops: &[Op]) -> bool {
    let mut pool: Vec<bool> = inputs.to_vec();
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let v = match op {
            Op::Inv(a) => !pick(*a),
            Op::And(a, b) => pick(*a) & pick(*b),
            Op::Or(a, b) => pick(*a) | pick(*b),
            Op::Xor(a, b) => pick(*a) ^ pick(*b),
            Op::Mux(a, b, s) => {
                if pick(*s) {
                    pick(*b)
                } else {
                    pick(*a)
                }
            }
            Op::Lut2(init, a, b) => {
                let idx = usize::from(pick(*a)) | (usize::from(pick(*b)) << 1);
                (init >> idx) & 1 == 1
            }
        };
        pool.push(v);
    }
    *pool.last().expect("non-empty")
}

fn random_circuit(inputs: usize, ops: &[Op]) -> Circuit {
    let mut circuit = Circuit::new("random_dag");
    let mut ctx = circuit.root_ctx();
    let a = ctx
        .add_port(PortSpec::input("a", inputs as u32))
        .expect("port");
    let y = ctx.add_port(PortSpec::output("y", 1)).expect("port");
    build(&mut ctx, a, inputs, ops, y).expect("build");
    circuit
}

#[test]
fn simulator_matches_software_oracle() {
    check_n("simulator_matches_oracle", 40, |rng| {
        let inputs = 1 + rng.index(7);
        let ops = any_ops(rng, 40);
        let stimulus = rng.next_u64();
        let circuit = random_circuit(inputs, &ops);
        let mut sim = Simulator::new(&circuit).expect("compile");
        assert!(sim.is_levelized(), "random DAGs are acyclic");
        // Try several input patterns per circuit.
        for round in 0..4u64 {
            let pattern = stimulus.rotate_left((round * 13) as u32) & ((1 << inputs) - 1);
            sim.set_u64("a", pattern).expect("set");
            let got = sim.peek("y").expect("peek").to_u64().expect("driven");
            let bits: Vec<bool> = (0..inputs).map(|b| (pattern >> b) & 1 == 1).collect();
            assert_eq!(got == 1, oracle(&bits, &ops), "pattern {pattern:#x}");
        }
    });
}

#[test]
fn obfuscation_equivalence_on_random_dags() {
    check_n("obfuscation_equivalence", 40, |rng| {
        let inputs = 1 + rng.index(5);
        let ops = any_ops(rng, 24);
        let circuit = random_circuit(inputs, &ops);
        let hidden = ipd::core::obfuscate(&circuit).expect("obfuscate");
        let mut s1 = Simulator::new(&circuit).expect("clear");
        let mut s2 = Simulator::new(&hidden).expect("hidden");
        let pattern = rng.next_u64() & ((1 << inputs) - 1);
        s1.set_u64("a", pattern).expect("set");
        s2.set_u64("a", pattern).expect("set");
        assert_eq!(s1.peek("y").expect("p1"), s2.peek("y").expect("p2"));
    });
}

#[test]
fn netlists_stay_well_formed_on_random_dags() {
    check_n("netlists_well_formed", 40, |rng| {
        let inputs = 1 + rng.index(5);
        let ops = any_ops(rng, 24);
        let circuit = random_circuit(inputs, &ops);
        let edif = ipd::netlist::edif_string(&circuit).expect("edif");
        let tree = ipd::netlist::SExpr::parse(&edif).expect("reparse");
        assert_eq!(tree.head(), Some("edif"));
        let vhdl = ipd::netlist::vhdl_string(&circuit).expect("vhdl");
        assert_eq!(vhdl.matches('(').count(), vhdl.matches(')').count());
        let verilog = ipd::netlist::verilog_string(&circuit).expect("verilog");
        assert!(verilog.ends_with("endmodule\n"));
        // Design rules hold: generated DAGs are single-driver by
        // construction.
        let report = ipd::hdl::validate(&circuit).expect("validate");
        assert!(report.is_clean(), "{report}");
    });
}

#[test]
fn area_timing_estimates_are_sane_on_random_dags() {
    check_n("estimates_sane", 40, |rng| {
        let inputs = 1 + rng.index(5);
        let ops = any_ops(rng, 32);
        let circuit = random_circuit(inputs, &ops);
        let area = ipd::estimate::estimate_area(&circuit).expect("area");
        // Buffers and constants are free; everything else costs a LUT.
        assert!(u64::from(area.total.luts) <= ops.len() as u64);
        let timing = ipd::estimate::estimate_timing(&circuit).expect("timing");
        assert!(timing.critical_path_ns >= 0.0);
        assert!(timing.levels <= ops.len());
    });
}
