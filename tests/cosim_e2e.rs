//! Cross-crate co-simulation integration: real sockets, protocol
//! fidelity, and system simulation against software references.

use ipd::core::{AppletHost, AppletSession, CapabilitySet, IpExecutable};
use ipd::cosim::{
    BehavioralModel, BlackBoxClient, BlackBoxServer, InProcTransport, LocalSimModel, SimModel,
    SystemSimulator,
};
use ipd::hdl::{Circuit, LogicVec, PortDir};
use ipd::modgen::{FirFilter, KcmMultiplier};
use ipd::sim::Simulator;

#[test]
fn tcp_black_box_equals_local_simulation() {
    let kcm = KcmMultiplier::new(-56, 8, 14).signed(true);
    let circuit = Circuit::from_generator(&kcm).unwrap();

    let mut host = AppletHost::new();
    host.grant_network_permission();
    let server = BlackBoxServer::bind(&host).unwrap();
    let addr = server.addr();
    let handle = server.spawn(LocalSimModel::new(&circuit).unwrap());

    let mut remote = BlackBoxClient::connect(addr).unwrap();
    let mut local = Simulator::new(&circuit).unwrap();
    for x in [-128i64, -56, -3, 0, 9, 127] {
        remote
            .set("multiplicand", LogicVec::from_i64(x, 8))
            .unwrap();
        local.set_i64("multiplicand", x).unwrap();
        assert_eq!(
            remote.get("product").unwrap(),
            local.peek("product").unwrap(),
            "x={x}"
        );
    }
    remote.close().unwrap();
    handle.join().unwrap().unwrap();
}

#[test]
fn black_box_interface_hides_internals() {
    // The protocol simply has no message for netlists, hierarchies or
    // internal nets: the interface is the complete attack surface.
    let kcm = KcmMultiplier::new(7, 4, 7);
    let circuit = Circuit::from_generator(&kcm).unwrap();
    let model = LocalSimModel::new(&circuit).unwrap();
    let mut client = BlackBoxClient::over(InProcTransport::new(model));
    let ports = client.interface().unwrap();
    let names: Vec<&str> = ports.iter().map(|(n, _, _)| n.as_str()).collect();
    assert_eq!(names, ["multiplicand", "product"]);
    // Internal names are not addressable.
    assert!(client.get("pp0").is_err());
    assert!(client.get("zero").is_err());
}

#[test]
fn system_simulation_matches_fir_reference() {
    let fir = FirFilter::new(vec![3, -1, 4, -1, 5], 8).unwrap();
    let circuit = Circuit::from_generator(&fir).unwrap();

    let mut system = SystemSimulator::new();
    let samples: Vec<i64> = (0..30).map(|i| ((i * 13 + 5) % 200) - 100).collect();
    let feed = samples.clone();
    let mut n = 0usize;
    let stimulus = system.add_model(
        "stimulus",
        Box::new(BehavioralModel::new(
            vec![("x".into(), PortDir::Output, 8)],
            move |_| {
                let v = feed.get(n).copied().unwrap_or(0);
                n += 1;
                vec![("x".into(), LogicVec::from_i64(v, 8))]
            },
        )),
    );
    let dut = system.add_model("fir", Box::new(LocalSimModel::new(&circuit).unwrap()));
    system.connect(stimulus, "x", dut, "x").unwrap();

    // The system interleaves: step stimulus+dut together; the DUT sees
    // the stimulus with one cycle of transport delay, so feed the
    // reference the same delayed stream.
    let mut seen = Vec::new();
    let mut outputs = Vec::new();
    for _ in 0..samples.len() {
        outputs.push(system.probe(dut, "y").unwrap());
        let x = system.probe(stimulus, "x").unwrap();
        seen.push(x.to_i64().unwrap_or(0));
        system.step(1).unwrap();
    }
    // `seen[k]` is exactly what the DUT consumed on step `k` (the
    // first value is the stimulus' power-on X, recorded as 0). The
    // X only affects outputs until it exits the pipeline, so compare
    // once the flush has cleared: after `taps + 1` cycles.
    let reference = fir.reference(&seen);
    let start = fir.taps() + 1;
    for i in start..samples.len() {
        let got = outputs[i].to_i64();
        assert_eq!(
            got.map(i128::from),
            Some(reference[i]),
            "cycle {i}: dut inputs {seen:?}"
        );
    }
}

#[test]
fn black_box_export_respects_capability_and_network_gates() {
    let exe = IpExecutable::new("kcm", "byu", CapabilitySet::black_box());
    let host = AppletHost::new(); // no network permission
    let kcm = KcmMultiplier::new(5, 4, 7);
    let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
    session.build().unwrap();
    // The capability allows export…
    session.black_box_simulator().expect("capability granted");
    // …but the sandbox still refuses the socket.
    assert!(BlackBoxServer::bind(&host).is_err());

    // An evaluation applet (no BlackBoxExport) refuses export even
    // with network permission.
    let exe = IpExecutable::new("kcm", "byu", CapabilitySet::evaluation());
    let mut host = AppletHost::new();
    host.grant_network_permission();
    let kcm = KcmMultiplier::new(5, 4, 7);
    let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
    session.build().unwrap();
    assert!(session.black_box_simulator().is_err());
}

#[test]
fn two_black_boxes_one_system_over_tcp() {
    // The exact Figure 4 topology: two applets + system simulator.
    let mut host = AppletHost::new();
    host.grant_network_permission();

    let kcm_a = Circuit::from_generator(&KcmMultiplier::new(3, 6, 8)).unwrap();
    let kcm_b = Circuit::from_generator(&KcmMultiplier::new(5, 8, 11)).unwrap();
    let server_a = BlackBoxServer::bind(&host).unwrap();
    let server_b = BlackBoxServer::bind(&host).unwrap();
    let (addr_a, addr_b) = (server_a.addr(), server_b.addr());
    let h1 = server_a.spawn(LocalSimModel::new(&kcm_a).unwrap());
    let h2 = server_b.spawn(LocalSimModel::new(&kcm_b).unwrap());

    let mut system = SystemSimulator::new();
    let a = system.add_model("x3", Box::new(BlackBoxClient::connect(addr_a).unwrap()));
    let b = system.add_model("x5", Box::new(BlackBoxClient::connect(addr_b).unwrap()));
    // Chain: x → (×3) → (×5) → 15x.
    system.connect(a, "product", b, "multiplicand").unwrap();
    system
        .drive(a, "multiplicand", LogicVec::from_u64(7, 6))
        .unwrap();
    system.step(2).unwrap(); // two propagation steps through the chain
    assert_eq!(system.probe(b, "product").unwrap().to_u64(), Some(105));
    drop(system);
    let _ = h1.join();
    let _ = h2.join();
}
