//! Differential end-to-end tests for the two wire transports: the
//! thread-per-session loop and the readiness-driven event loop must be
//! observationally identical to every client.
//!
//! The invariants under test:
//!
//! - The full delivery + co-simulation fleet produces **bit-identical**
//!   results under `ServerMode::Threaded` and `ServerMode::EventLoop`,
//!   and both reconcile their [`WireStats`] exactly against the
//!   clients' own counters.
//! - A [`MuxClient`] driving many logical sessions over one socket
//!   receives byte-for-byte the same responses a plain [`WireClient`]
//!   gets for the same requests — including the zero-copy packed
//!   segment path — and the server's totals equal the sum of both
//!   clients' views.

use std::sync::Arc;
use std::thread;

use ipd::core::{
    delivery_endpoints, AppletHost, AppletServer, CapabilitySet, DeliveryClient, DeliveryService,
    Digest,
};
use ipd::cosim::{BlackBoxClient, BlackBoxServer, LocalSimModel, SimModel, TcpTransport};
use ipd::hdl::{Circuit, LogicVec};
use ipd::modgen::KcmMultiplier;
use ipd::wire::{ClientConfig, MuxClient, ServerMode, WireClient, WireConfig, WireStats};
use ipd_testutil::XorShift64;

fn vendor() -> AppletServer {
    let mut server = AppletServer::new("byu", b"e2e-vendor-key".to_vec());
    server.enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
    server
}

fn kcm_circuit() -> Circuit {
    Circuit::from_generator(&KcmMultiplier::new(-56, 8, 14).signed(true)).unwrap()
}

fn batch_inputs(seed: u64) -> Vec<(String, Vec<LogicVec>)> {
    let mut rng = XorShift64::new(seed);
    let vectors: Vec<LogicVec> = (0..32)
        .map(|_| LogicVec::from_i64(rng.range_i64(-128, 127), 8))
        .collect();
    vec![("multiplicand".to_owned(), vectors)]
}

fn mode_config(mode: ServerMode) -> WireConfig {
    WireConfig {
        mode,
        ..WireConfig::default()
    }
}

/// Everything a fleet run observed, for cross-mode comparison.
#[derive(PartialEq, Debug)]
struct FleetOutcome {
    manifest_bytes: Vec<u8>,
    payloads: Vec<Vec<u8>>,
    outputs: Vec<(String, Vec<LogicVec>)>,
}

/// Runs the mixed delivery + co-simulation fleet under one transport
/// mode, reconciles stats exactly, and returns the observed bytes.
fn run_fleet(mode: ServerMode) -> FleetOutcome {
    let circuit = kcm_circuit();
    let service = Arc::new(DeliveryService::new(vendor(), b"e2e-vendor-key".to_vec()));
    let delivery = service.serve(mode_config(mode)).unwrap();
    let mut host = AppletHost::new();
    host.grant_network_permission();
    let cosim = BlackBoxServer::bind_with(&host, mode_config(mode))
        .unwrap()
        .start_cloning(LocalSimModel::new(&circuit).unwrap());

    let delivery_addr = delivery.addr();
    let cosim_addr = cosim.addr();
    let mut workers = Vec::new();
    for i in 0..16u64 {
        workers.push(thread::spawn(move || {
            if i % 2 == 0 {
                let mut client = DeliveryClient::connect(delivery_addr, "acme").unwrap();
                let manifest = client.manifest(30).unwrap();
                let cold = client.fetch(30, &[]).unwrap();
                let payloads: Vec<Vec<u8>> = cold
                    .items()
                    .iter()
                    .filter_map(|item| match item {
                        ipd::core::BundleDelivery::Payload { bytes, .. } => Some(bytes.to_vec()),
                        ipd::core::BundleDelivery::NotModified { .. } => None,
                    })
                    .collect();
                let have: Vec<Digest> = manifest.entries().iter().map(|e| e.digest).collect();
                let warm = client.fetch(31, &have).unwrap();
                assert_eq!(warm.delivered(), 0, "warm fetch must be all 304s");
                let stats = client.stats();
                client.close();
                (stats, Some(payloads), None)
            } else {
                let transport = TcpTransport::connect(cosim_addr).unwrap();
                let stats = transport.stats();
                let mut client = BlackBoxClient::over(transport);
                let outputs = client.run_batch(1, &batch_inputs(7)).unwrap();
                client.close().unwrap();
                (stats, None, Some(outputs))
            }
        }));
    }
    let mut delivery_clients: Vec<Arc<WireStats>> = Vec::new();
    let mut cosim_clients: Vec<Arc<WireStats>> = Vec::new();
    let mut payloads: Option<Vec<Vec<u8>>> = None;
    let mut outputs: Option<Vec<(String, Vec<LogicVec>)>> = None;
    for worker in workers {
        let (stats, fleet_payloads, fleet_outputs) = worker.join().unwrap();
        if let Some(p) = fleet_payloads {
            // Every delivery worker must observe the same bytes.
            assert!(payloads.as_ref().is_none_or(|first| *first == p));
            payloads = Some(p);
            delivery_clients.push(stats);
        } else {
            let o = fleet_outputs.unwrap();
            assert!(outputs.as_ref().is_none_or(|first| *first == o));
            outputs = Some(o);
            cosim_clients.push(stats);
        }
    }

    // Exact reconciliation on both servers, whatever the transport.
    let sum = |stats: &[Arc<WireStats>]| {
        stats.iter().fold((0u64, 0u64, 0u64), |acc, s| {
            let t = s.totals();
            (acc.0 + t.requests, acc.1 + t.bytes_in, acc.2 + t.bytes_out)
        })
    };
    let d = delivery.stats().totals();
    assert_eq!(
        (d.requests, d.bytes_in, d.bytes_out),
        sum(&delivery_clients),
        "{mode:?}: delivery stats must reconcile exactly"
    );
    let c = cosim.stats().totals();
    assert_eq!(
        (c.requests, c.bytes_in, c.bytes_out),
        sum(&cosim_clients),
        "{mode:?}: cosim stats must reconcile exactly"
    );
    assert_eq!(delivery.stats().sessions_opened(), 8);
    assert_eq!(cosim.stats().sessions_opened(), 8);

    // One raw-frame manifest call, for byte-level cross-mode identity
    // (decoded structs could mask an encoding difference).
    let mut raw = WireClient::connect(delivery_addr, &ClientConfig::with_token("acme")).unwrap();
    let manifest_bytes = raw
        .call(delivery_endpoints::MANIFEST, &30u32.to_le_bytes())
        .unwrap();
    raw.close();

    delivery.shutdown().unwrap();
    cosim.shutdown().unwrap();
    FleetOutcome {
        manifest_bytes,
        payloads: payloads.unwrap(),
        outputs: outputs.unwrap(),
    }
}

/// The tentpole differential: the same fleet under both transports is
/// bit-identical — manifests, packed payload bytes, simulation output.
#[test]
fn both_transports_serve_bit_identical_fleets() {
    let threaded = run_fleet(ServerMode::Threaded);
    let evloop = run_fleet(ServerMode::EventLoop);
    assert_eq!(
        threaded, evloop,
        "the two transports must be observationally identical"
    );
}

/// A mux client multiplexing 16 delivery sessions over one socket gets
/// byte-for-byte what a plain client gets — including the zero-copy
/// segment path — and the server's totals are exactly the sum of both
/// clients' counters.
#[test]
fn mux_sessions_match_plain_clients_byte_for_byte() {
    let service = Arc::new(DeliveryService::new(vendor(), b"e2e-vendor-key".to_vec()));
    let delivery = service.serve(mode_config(ServerMode::EventLoop)).unwrap();
    let addr = delivery.addr();

    // In-process reference for the digests to request.
    let manifest = vendor().manifest("acme", 30).unwrap();
    let digests: Vec<Digest> = manifest.entries().iter().map(|e| e.digest).collect();
    assert!(!digests.is_empty(), "the evaluation set has bundles");

    let mut plain = WireClient::connect(addr, &ClientConfig::with_token("acme")).unwrap();
    let manifest_body = 30u32.to_le_bytes().to_vec();
    let plain_manifest = plain
        .call(delivery_endpoints::MANIFEST, &manifest_body)
        .unwrap();
    let segment_bodies: Vec<Vec<u8>> = digests
        .iter()
        .map(|digest| {
            let mut body = manifest_body.clone();
            body.extend_from_slice(digest);
            body
        })
        .collect();
    let plain_segments: Vec<Vec<u8>> = segment_bodies
        .iter()
        .map(|body| plain.call(delivery_endpoints::FETCH_SEGMENT, body).unwrap())
        .collect();

    let mut mux = MuxClient::connect(addr, &ClientConfig::with_token("acme")).unwrap();
    let channels: Vec<u32> = mux
        .open_many(16, Some("acme"), false)
        .unwrap()
        .into_iter()
        .map(|c| c.expect("channel opens"))
        .collect();
    // Every channel asks for the manifest and every segment, all
    // pipelined in one gathered write per round.
    let manifest_calls: Vec<(u32, u16, Vec<u8>)> = channels
        .iter()
        .map(|&ch| (ch, delivery_endpoints::MANIFEST, manifest_body.clone()))
        .collect();
    for answer in mux.call_batch(&manifest_calls).unwrap() {
        assert_eq!(answer.unwrap(), plain_manifest, "manifest bytes differ");
    }
    for (body, expect) in segment_bodies.iter().zip(&plain_segments) {
        let calls: Vec<(u32, u16, Vec<u8>)> = channels
            .iter()
            .map(|&ch| (ch, delivery_endpoints::FETCH_SEGMENT, body.clone()))
            .collect();
        for answer in mux.call_batch(&calls).unwrap() {
            assert_eq!(&answer.unwrap(), expect, "segment bytes differ");
        }
    }

    // Exact reconciliation across both client kinds.
    let p = plain.stats().totals();
    let m = mux.stats().totals();
    let s = delivery.stats().totals();
    assert_eq!(s.requests, p.requests + m.requests);
    assert_eq!(s.bytes_in, p.bytes_in + m.bytes_in);
    assert_eq!(s.bytes_out, p.bytes_out + m.bytes_out);
    // 16 mux channels + the mux hello session + the plain session.
    assert_eq!(delivery.stats().sessions_opened(), 18);

    plain.close();
    mux.close();
    let service = delivery.shutdown().unwrap();
    assert!(
        service
            .audit_log()
            .iter()
            .any(|r| r.outcome.contains("served segment")),
        "segment serves must be audited"
    );
}
