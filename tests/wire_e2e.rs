//! Cross-crate wire integration: the delivery stack and the
//! co-simulation stack sharing one framed transport, exercised by
//! concurrent clients on real loopback sockets.
//!
//! The invariants under test:
//!
//! - Everything served over the wire is **bit-identical** to the
//!   in-process path (manifests, bundle payloads, batch-simulation
//!   outputs).
//! - Per-endpoint [`WireStats`] reconcile exactly: server totals equal
//!   the sum of client-observed totals.
//! - Hostile peers — truncated frames, flipped bits, oversized length
//!   prefixes — neither panic the servers nor stall healthy sessions,
//!   and a lying *server* cannot make a client over-allocate either.

use std::io::{Read, Write};
use std::sync::Arc;
use std::thread;

use ipd::core::{AppletHost, AppletServer, CapabilitySet, DeliveryClient, DeliveryService, Digest};
use ipd::cosim::{BlackBoxClient, BlackBoxServer, LocalSimModel, SimModel, TcpTransport};
use ipd::hdl::{Circuit, LogicVec};
use ipd::modgen::KcmMultiplier;
use ipd::wire::{ClientConfig, Envelope, WireConfig, WireError, WireStats, VERSION};
use ipd_testutil::{check_n, XorShift64};

fn vendor() -> AppletServer {
    let mut server = AppletServer::new("byu", b"e2e-vendor-key".to_vec());
    server.enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
    server
}

fn kcm_circuit() -> Circuit {
    Circuit::from_generator(&KcmMultiplier::new(-56, 8, 14).signed(true)).unwrap()
}

fn batch_inputs(seed: u64) -> Vec<(String, Vec<LogicVec>)> {
    let mut rng = XorShift64::new(seed);
    let vectors: Vec<LogicVec> = (0..32)
        .map(|_| LogicVec::from_i64(rng.range_i64(-128, 127), 8))
        .collect();
    vec![("multiplicand".to_owned(), vectors)]
}

/// 16 concurrent sessions — half delivery, half co-simulation — each
/// comparing every wire response against the in-process baseline, then
/// both servers' stats reconciled against the clients' own counters.
#[test]
fn sixteen_mixed_sessions_bit_identical_and_stats_reconcile() {
    // In-process baselines, computed once.
    let mut local_vendor = vendor();
    let expected_manifest = local_vendor.manifest("acme", 30).unwrap();
    let expected_fetch = local_vendor.fetch("acme", 30, &[]).unwrap();
    let circuit = kcm_circuit();
    let mut local_model = LocalSimModel::new(&circuit).unwrap();
    let expected_outputs = local_model.run_batch(1, &batch_inputs(7)).unwrap();

    // The two wire servers.
    let service = Arc::new(DeliveryService::new(vendor(), b"e2e-vendor-key".to_vec()));
    let delivery = service.serve(WireConfig::default()).unwrap();
    let mut host = AppletHost::new();
    host.grant_network_permission();
    let cosim = BlackBoxServer::bind(&host)
        .unwrap()
        .start_cloning(LocalSimModel::new(&circuit).unwrap());

    let delivery_addr = delivery.addr();
    let cosim_addr = cosim.addr();
    let mut workers = Vec::new();
    for i in 0..16u64 {
        let expected_manifest = expected_manifest.clone();
        let expected_payloads: Vec<Vec<u8>> = expected_fetch
            .items()
            .iter()
            .filter_map(|item| match item {
                ipd::core::BundleDelivery::Payload { bytes, .. } => Some(bytes.to_vec()),
                ipd::core::BundleDelivery::NotModified { .. } => None,
            })
            .collect();
        let expected_outputs = expected_outputs.clone();
        workers.push(thread::spawn(move || -> Arc<WireStats> {
            if i % 2 == 0 {
                // Delivery customer: manifest, cold fetch, warm fetch.
                let mut client = DeliveryClient::connect(delivery_addr, "acme").unwrap();
                let manifest = client.manifest(30).unwrap();
                assert_eq!(manifest, expected_manifest, "session {i}: manifest differs");
                let cold = client.fetch(30, &[]).unwrap();
                let got: Vec<Vec<u8>> = cold
                    .items()
                    .iter()
                    .filter_map(|item| match item {
                        ipd::core::BundleDelivery::Payload { bytes, .. } => Some(bytes.to_vec()),
                        ipd::core::BundleDelivery::NotModified { .. } => None,
                    })
                    .collect();
                assert_eq!(got, expected_payloads, "session {i}: payload bytes differ");
                let have: Vec<Digest> = manifest.entries().iter().map(|e| e.digest).collect();
                let warm = client.fetch(31, &have).unwrap();
                assert_eq!(warm.delivered(), 0, "session {i}: warm fetch must be 304s");
                let stats = client.stats();
                client.close();
                stats
            } else {
                // Co-simulation customer: one batched sweep.
                let transport = TcpTransport::connect(cosim_addr).unwrap();
                let stats = transport.stats();
                let mut client = BlackBoxClient::over(transport);
                let outputs = client.run_batch(1, &batch_inputs(7)).unwrap();
                assert_eq!(
                    outputs, expected_outputs,
                    "session {i}: batch outputs differ"
                );
                client.close().unwrap();
                stats
            }
        }));
    }
    let client_stats: Vec<Arc<WireStats>> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();

    // Reconcile: each server's totals equal the sum over its clients.
    let sum = |stats: &[&Arc<WireStats>]| {
        stats.iter().fold((0u64, 0u64, 0u64), |acc, s| {
            let t = s.totals();
            (acc.0 + t.requests, acc.1 + t.bytes_in, acc.2 + t.bytes_out)
        })
    };
    let delivery_clients: Vec<&Arc<WireStats>> = client_stats.iter().step_by(2).collect();
    let cosim_clients: Vec<&Arc<WireStats>> = client_stats.iter().skip(1).step_by(2).collect();
    let d = delivery.stats().totals();
    assert_eq!(
        (d.requests, d.bytes_in, d.bytes_out),
        sum(&delivery_clients),
        "delivery stats must reconcile exactly"
    );
    let c = cosim.stats().totals();
    assert_eq!(
        (c.requests, c.bytes_in, c.bytes_out),
        sum(&cosim_clients),
        "cosim stats must reconcile exactly"
    );
    assert_eq!(delivery.stats().sessions_opened(), 8);
    assert_eq!(cosim.stats().sessions_opened(), 8);

    let service = delivery.shutdown().unwrap();
    assert!(service.audit_log().len() >= 24, "every request audited");
    cosim.shutdown().unwrap();
}

/// A flood of malformed connections — truncated hellos, flipped bits,
/// hostile length prefixes — while a healthy customer keeps syncing.
#[test]
fn malformed_floods_do_not_stall_the_delivery_server() {
    let service = Arc::new(DeliveryService::new(vendor(), b"e2e-vendor-key".to_vec()));
    // Snappy deadlines: a trickling attacker gets dropped fast, so the
    // flood (and this test) stays quick.
    let config = WireConfig {
        idle_timeout: std::time::Duration::from_millis(500),
        frame_timeout: std::time::Duration::from_millis(200),
        poll_interval: std::time::Duration::from_millis(5),
        ..WireConfig::default()
    };
    let running = service.serve(config).unwrap();
    let addr = running.addr();

    let flooder = thread::spawn(move || {
        let mut rng = XorShift64::new(0xF100D);
        for round in 0..40 {
            let Ok(mut socket) = std::net::TcpStream::connect(addr) else {
                continue;
            };
            let payload = match round % 4 {
                // A length prefix claiming ~4 GiB: must be refused
                // before any allocation.
                0 => u32::MAX.to_le_bytes().to_vec(),
                // A truncated frame: header promises more than sent.
                1 => {
                    let mut bytes = 64u32.to_le_bytes().to_vec();
                    bytes.extend_from_slice(b"short");
                    bytes
                }
                // A well-formed frame of garbage bytes.
                2 => {
                    let len = rng.below(256) as usize;
                    let body = rng.bytes(len);
                    let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
                    bytes.extend_from_slice(&body);
                    bytes
                }
                // A valid hello with one bit flipped somewhere.
                _ => {
                    let hello = Envelope::Hello {
                        version: VERSION,
                        max_frame: 1 << 20,
                        token: Some("acme".to_owned()),
                    }
                    .encode();
                    let mut bytes = (hello.len() as u32).to_le_bytes().to_vec();
                    bytes.extend_from_slice(&hello);
                    let bit = rng.below(8 * bytes.len() as u64) as usize;
                    bytes[bit / 8] ^= 1 << (bit % 8);
                    bytes
                }
            };
            let _ = socket.write_all(&payload);
            let _ = socket.flush();
            // Half the flooders hang up instantly, half linger.
            if round % 2 == 0 {
                drop(socket);
            } else {
                let mut sink = [0u8; 64];
                let _ = socket.read(&mut sink);
            }
        }
    });

    // The healthy session proceeds to a complete, correct sync.
    let mut client = DeliveryClient::connect(addr, "acme").unwrap();
    let mut applet_host = AppletHost::new();
    let first = applet_host.sync_wire(&mut client, 30).unwrap();
    assert!(first > 0, "cold sync transfers payloads");
    let second = applet_host.sync_wire(&mut client, 31).unwrap();
    assert_eq!(second, 0, "warm sync is all 304s");
    client.close();
    flooder.join().unwrap();

    // Most flood rounds send bytes the server counts as protocol
    // errors (instant hang-ups can race the first read, so exact
    // counts are not guaranteed — but the flood must register).
    assert!(running.stats().protocol_errors() > 0);
    running.shutdown().unwrap();
}

/// Property: random mutations of a valid request frame never panic the
/// server, and the same session (when it survives) or a fresh one
/// still serves correct manifests afterwards.
#[test]
fn mutated_request_frames_never_break_the_service() {
    let service = Arc::new(DeliveryService::new(vendor(), b"e2e-vendor-key".to_vec()));
    let running = service.serve(WireConfig::default()).unwrap();
    let addr = running.addr();
    let expected = vendor().manifest("acme", 30).unwrap();

    check_n("mutated-request-frames", 25, |rng| {
        // Hand-rolled client: real handshake, then a mutated request.
        let mut socket = std::net::TcpStream::connect(addr).unwrap();
        let hello = Envelope::Hello {
            version: VERSION,
            max_frame: 1 << 20,
            token: Some("acme".to_owned()),
        }
        .encode();
        let mut frame = (hello.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&hello);
        socket.write_all(&frame).unwrap();
        let mut header = [0u8; 4];
        socket.read_exact(&mut header).unwrap();
        let mut ack = vec![0u8; u32::from_le_bytes(header) as usize];
        socket.read_exact(&mut ack).unwrap();
        assert!(
            matches!(Envelope::decode(&ack), Ok(Envelope::HelloAck { .. })),
            "handshake must succeed before the hostile request"
        );

        let request = Envelope::Request {
            id: 1,
            endpoint: 0x20,
            body: 30u32.to_le_bytes().to_vec(),
        }
        .encode();
        let mut frame = (request.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&request);
        match rng.below(3) {
            0 => {
                let bit = rng.below(8 * frame.len() as u64) as usize;
                frame[bit / 8] ^= 1 << (bit % 8);
            }
            1 => {
                let keep = 1 + rng.below(frame.len() as u64 - 1) as usize;
                frame.truncate(keep);
            }
            _ => {
                let extra = 1 + rng.below(16) as usize;
                let garbage = rng.bytes(extra);
                frame.extend_from_slice(&garbage);
            }
        }
        let _ = socket.write_all(&frame);
        let _ = socket.flush();
        drop(socket);

        // The service keeps serving fresh sessions correctly.
        let mut client = DeliveryClient::connect(addr, "acme").unwrap();
        assert_eq!(client.manifest(30).unwrap(), expected);
        client.close();
    });

    running.shutdown().unwrap();
}

/// Client-side hardening: a lying server that acks the handshake and
/// then announces a multi-gigabyte response frame must get a protocol
/// error, not a multi-gigabyte allocation.
#[test]
fn client_rejects_hostile_server_length_prefix() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let evil = thread::spawn(move || {
        let (mut socket, _) = listener.accept().unwrap();
        // Read and discard the client's hello frame.
        let mut header = [0u8; 4];
        socket.read_exact(&mut header).unwrap();
        let mut hello = vec![0u8; u32::from_le_bytes(header) as usize];
        socket.read_exact(&mut hello).unwrap();
        // Ack politely…
        let ack = Envelope::HelloAck {
            session: 1,
            max_frame: 1 << 20,
        }
        .encode();
        let mut frame = (ack.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&ack);
        socket.write_all(&frame).unwrap();
        // …then read the request and answer with a hostile prefix.
        socket.read_exact(&mut header).unwrap();
        let mut request = vec![0u8; u32::from_le_bytes(header) as usize];
        socket.read_exact(&mut request).unwrap();
        socket.write_all(&u32::MAX.to_le_bytes()).unwrap();
        let _ = socket.flush();
        // Hold the socket open so the client fails on the prefix, not
        // on a disconnect.
        let mut sink = [0u8; 16];
        let _ = socket.read(&mut sink);
    });

    let mut client = DeliveryClient::connect_with(addr, &ClientConfig::with_token("acme")).unwrap();
    let outcome = client.manifest(30);
    match outcome {
        Err(ipd::core::CoreError::Wire(WireError::Protocol { reason })) => {
            assert!(
                reason.contains("exceeds"),
                "must reject the length prefix itself, got: {reason}"
            );
        }
        other => panic!("expected a protocol error on the length prefix, got {other:?}"),
    }
    drop(client);
    evil.join().unwrap();
}
