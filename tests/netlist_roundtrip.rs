//! Netlist generation across the whole module-generator zoo: every
//! generator's EDIF reparses, and VHDL/Verilog output is structurally
//! sane.

use ipd::hdl::{Circuit, Generator};
use ipd::modgen::{
    Accumulator, AddSub, ArrayMultiplier, BusMux, Comparator, CompareOp, CountDirection, Counter,
    Decoder, FirFilter, KcmMultiplier, ParityTree, Register, RippleAdder, Rom, ShiftRegister,
    Subtractor,
};
use ipd::netlist::{edif_string, verilog_string, vhdl_string, SExpr};

fn zoo() -> Vec<Box<dyn Generator>> {
    vec![
        Box::new(RippleAdder::new(8).with_cin().with_cout()),
        Box::new(Subtractor::new(6).with_cout()),
        Box::new(AddSub::new(5)),
        Box::new(Accumulator::new(8)),
        Box::new(Comparator::new(8, CompareOp::Lt)),
        Box::new(Counter::new(8, CountDirection::Up).loadable()),
        Box::new(Register::new(8).with_ce().with_clr()),
        Box::new(ShiftRegister::new(4, 20)),
        Box::new(Decoder::new(3)),
        Box::new(ParityTree::new(9)),
        Box::new(BusMux::new(8)),
        Box::new(Rom::new(6, 8, (0..64).map(|i| i * 3 % 256).collect()).expect("rom")),
        Box::new(KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true)),
        Box::new(ArrayMultiplier::new(6, 6)),
        Box::new(FirFilter::new(vec![1, -2, 3], 6).expect("fir")),
    ]
}

#[test]
fn every_generator_produces_reparsable_edif() {
    for generator in zoo() {
        let circuit = Circuit::from_generator(generator.as_ref())
            .unwrap_or_else(|e| panic!("{}: {e}", generator.type_name()));
        let edif = edif_string(&circuit).expect("edif");
        let tree = SExpr::parse(&edif).unwrap_or_else(|e| panic!("{}: {e}", generator.type_name()));
        assert_eq!(tree.head(), Some("edif"), "{}", generator.type_name());
        // The design section references the root definition.
        assert_eq!(tree.find_all("design").len(), 1);
        // Flat primitive count matches instances across all work cells.
        let flat = ipd::hdl::FlatNetlist::build(&circuit).expect("flatten");
        let composite_instances = circuit
            .cell_ids()
            .filter(|&id| {
                circuit.cell(id).kind().is_composite() && circuit.cell(id).parent().is_some()
            })
            .count();
        assert_eq!(
            tree.find_all("instance").len(),
            flat.leaves().len() + composite_instances,
            "{}",
            generator.type_name()
        );
    }
}

#[test]
fn every_generator_produces_vhdl_and_verilog() {
    for generator in zoo() {
        let circuit = Circuit::from_generator(generator.as_ref()).expect("build");
        let name = generator.type_name();
        let vhdl = vhdl_string(&circuit).expect("vhdl");
        assert!(vhdl.contains("entity"), "{name}");
        assert!(vhdl.contains("architecture structural"), "{name}");
        assert!(vhdl.contains("port map"), "{name}");
        let verilog = verilog_string(&circuit).expect("verilog");
        assert!(verilog.contains("module"), "{name}");
        assert!(verilog.contains("endmodule"), "{name}");
        // Balanced parens in VHDL port maps (cheap syntax sanity).
        assert_eq!(
            vhdl.matches('(').count(),
            vhdl.matches(')').count(),
            "{name}"
        );
    }
}

#[test]
fn every_generator_passes_design_rules() {
    for generator in zoo() {
        let circuit = Circuit::from_generator(generator.as_ref()).expect("build");
        let report = ipd::hdl::validate(&circuit).expect("validate");
        assert!(report.is_clean(), "{}: {report}", generator.type_name());
    }
}

#[test]
fn every_generator_estimates() {
    for generator in zoo() {
        let circuit = Circuit::from_generator(generator.as_ref()).expect("build");
        let area = ipd::estimate::estimate_area(&circuit).expect("area");
        assert!(
            area.total.luts + area.total.ffs + area.total.carries > 0,
            "{} has no resources?",
            generator.type_name()
        );
        let timing = ipd::estimate::estimate_timing(&circuit).expect("timing");
        assert!(timing.critical_path_ns > 0.0, "{}", generator.type_name());
    }
}

#[test]
fn every_generator_renders_views() {
    for generator in zoo() {
        let circuit = Circuit::from_generator(generator.as_ref()).expect("build");
        let name = generator.type_name();
        assert!(!ipd::viewer::hierarchy_tree(&circuit).is_empty(), "{name}");
        assert!(
            !ipd::viewer::schematic_text(&circuit, circuit.root()).is_empty(),
            "{name}"
        );
        let svg = ipd::viewer::schematic_svg(&circuit, circuit.root());
        assert!(svg.starts_with("<svg"), "{name}");
    }
}
