//! The semantic-lint CI gate fixtures: a committed EDIF carrying
//! SAT-provable redundant logic that structural lint cannot see, and
//! the committed `redundant.lintrc` raising `redundant-logic` to error
//! severity so `ipd-lint --semantic` refuses it.
//!
//! CI runs both directions of the gate as shell steps:
//!
//! ```text
//! ipd-lint --semantic --examples                 # must exit 0
//! ipd-lint --semantic --config tests/fixtures/redundant.lintrc \
//!          tests/fixtures/redundant.edif         # must exit 1
//! ```
//!
//! This test keeps the committed fixture honest from inside the test
//! suite: the EDIF must reparse, the lintrc must parse, and the
//! semantic tier must still find the planted redundancies at the
//! proved tier. Regenerate the EDIF after an intentional change to
//! the EDIF writer with:
//!
//! ```text
//! IPD_REGEN_GOLDEN=1 cargo test --test semantic_gate
//! ```

use std::fs;
use std::path::PathBuf;

use ipd::hdl::{Circuit, PortSpec, Signal};
use ipd::lint::{LintConfig, Linter, OracleOptions, ProofTier};
use ipd::techlib::LogicCtx;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The planted design: `y[1]` duplicates `y[0]` exactly, `y[2]` is its
/// complement behind a NAND LUT, and `y[3]` is live non-redundant
/// logic. Structural lint sees four healthy gates; only SAT
/// equivalence exposes the first two.
fn redundant_design() -> Circuit {
    let mut c = Circuit::new("dup");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 4)).unwrap();
    let w0 = ctx.wire("y0", 1);
    ctx.and2(a, b, w0).unwrap();
    ctx.buffer(w0, Signal::bit_of(y, 0)).unwrap();
    let w1 = ctx.wire("y1", 1);
    ctx.and2(a, b, w1).unwrap();
    ctx.buffer(w1, Signal::bit_of(y, 1)).unwrap();
    let w2 = ctx.wire("y2", 1);
    ctx.lut(0b0111, &[a.into(), b.into()], w2).unwrap();
    ctx.buffer(w2, Signal::bit_of(y, 2)).unwrap();
    let w3 = ctx.wire("y3", 1);
    ctx.or2(a, b, w3).unwrap();
    ctx.buffer(w3, Signal::bit_of(y, 3)).unwrap();
    c
}

#[test]
fn committed_redundant_fixture_fails_semantic_lint() {
    let edif_path = fixture_dir().join("redundant.edif");
    if std::env::var_os("IPD_REGEN_GOLDEN").is_some() {
        let edif = ipd::netlist::NetlistFormat::Edif
            .generate(&redundant_design())
            .expect("netlist");
        fs::write(&edif_path, edif).unwrap();
    }
    let text = fs::read_to_string(&edif_path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}\n\
             regenerate with IPD_REGEN_GOLDEN=1 cargo test --test semantic_gate",
            edif_path.display()
        )
    });
    let circuit = ipd::netlist::read_edif(&text).expect("fixture parses");

    let lintrc = fs::read_to_string(fixture_dir().join("redundant.lintrc"))
        .expect("committed lintrc present");
    let config = LintConfig::parse(&lintrc).expect("committed lintrc parses");

    // Structural lint sees nothing: the gate only trips semantically.
    let structural = Linter::with_config(config.clone())
        .run(&circuit)
        .expect("structural lint runs");
    assert_eq!(
        structural.error_count(),
        0,
        "fixture must be structurally clean:\n{structural}"
    );

    let report = Linter::with_oracle(config, OracleOptions::default())
        .run(&circuit)
        .expect("semantic lint runs");
    let redundant: Vec<_> = report.by_rule("redundant-logic").collect();
    assert!(
        redundant.len() >= 2,
        "fixture must carry the planted duplicate and complement:\n{report}"
    );
    for diag in &redundant {
        assert_eq!(diag.proof, ProofTier::Proved, "{diag}");
    }
    assert!(
        report.error_count() > 0,
        "lintrc must raise redundant-logic to error severity:\n{report}"
    );
}
