//! The formal-equivalence CI gate: every example-zoo generator must
//! stay provably equivalent to its committed golden EDIF fixture, and
//! the committed mutated fixture (one LUT INIT bit flipped in the KCM)
//! must be refuted with a replay-confirmed counterexample.
//!
//! The fixtures pin the *function* of each generator: an accidental
//! change to a generator, the techlib builders, the flattener, or the
//! EDIF writer/reader that alters observable behaviour fails here with
//! a distinguishing input vector, not just a textual diff.
//!
//! Regenerate fixtures after an *intentional* functional change with:
//!
//! ```text
//! IPD_REGEN_GOLDEN=1 cargo test --test equiv_golden
//! ```

use std::fs;
use std::path::PathBuf;

use ipd::hdl::FlatNetlist;
use ipd::verify::{check_equiv, EquivConfig, EquivVerdict};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden")
}

fn regen() -> bool {
    std::env::var_os("IPD_REGEN_GOLDEN").is_some()
}

fn read_flat(path: &PathBuf) -> FlatNetlist {
    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             regenerate with IPD_REGEN_GOLDEN=1 cargo test --test equiv_golden",
            path.display()
        )
    });
    let circuit = ipd::netlist::read_edif(&text).expect("golden fixture parses");
    FlatNetlist::build(&circuit).expect("golden fixture flattens")
}

#[test]
fn zoo_matches_committed_golden_fixtures() {
    fs::create_dir_all(fixture_dir()).unwrap();
    for (name, circuit) in ipd::modgen::example_zoo() {
        let path = fixture_dir().join(format!("{name}.edif"));
        if regen() {
            let edif = ipd::netlist::NetlistFormat::Edif
                .generate(&circuit)
                .expect("netlist");
            fs::write(&path, edif).unwrap();
        }
        let golden = read_flat(&path);
        let revised = FlatNetlist::build(&circuit).expect("zoo design flattens");
        let report =
            check_equiv(&golden, &revised, &EquivConfig::default()).expect("check completes");
        assert!(
            report.is_equivalent(),
            "{name} diverged from its committed golden fixture: {:?}\n\
             if the change is intentional, regenerate with IPD_REGEN_GOLDEN=1",
            report.verdict
        );
    }
}

/// The zoo's KCM multiplier (the paper's running example).
fn kcm() -> (String, FlatNetlist) {
    let (name, circuit) = ipd::modgen::example_zoo().remove(0);
    assert!(name.starts_with("kcm"), "zoo reordered: {name}");
    (name, FlatNetlist::build(&circuit).expect("kcm flattens"))
}

#[test]
fn mutated_fixture_is_refuted_with_replayed_vector() {
    let (kcm_name, golden) = kcm();
    let path = fixture_dir().join("mutated_kcm.edif");
    if regen() {
        // Flip the low bit of the first LUT INIT nibble in the golden
        // KCM fixture — a single-bit functional fault.
        let text = fs::read_to_string(fixture_dir().join(format!("{kcm_name}.edif"))).unwrap();
        let marker = "(property INIT (string \"";
        let at = text.find(marker).expect("kcm has INIT properties") + marker.len();
        let digit = text[at..].chars().next().expect("INIT digit");
        let flipped = char::from_digit(digit.to_digit(16).expect("hex INIT") ^ 1, 16).unwrap();
        let mut mutated = text;
        mutated.replace_range(at..at + 1, &flipped.to_uppercase().to_string());
        fs::write(&path, mutated).unwrap();
    }
    let mutated = read_flat(&path);
    // Replay is on by default: the reported vector has already been
    // cross-checked against both simulation engines.
    let report = check_equiv(&golden, &mutated, &EquivConfig::default()).expect("check completes");
    match report.verdict {
        EquivVerdict::NotEquivalent(cex) => {
            assert!(!cex.inputs.is_empty(), "vector must name the inputs");
            assert_ne!(cex.golden_value, cex.revised_value);
        }
        EquivVerdict::Equivalent => {
            panic!("mutated KCM fixture passed the equivalence gate")
        }
    }
}
