//! Property-based tests over the core invariants, randomized with the
//! in-repo deterministic RNG (`ipd-testutil`) so the suite runs with
//! zero registry dependencies.

use ipd::core::{CapabilitySet, LicenseAuthority};
use ipd::hdl::{Circuit, FlatNetlist};
use ipd::modgen::{ArrayMultiplier, KcmMultiplier, RippleAdder};
use ipd::netlist::{Dialect, NameTable, SExpr};
use ipd::pack::{compress, crc32, decompress};
use ipd::sim::Simulator;
use ipd_testutil::check_n;

/// The KCM computes `constant × input` for arbitrary constants, widths
/// and signs (full product width, so no truncation).
#[test]
fn kcm_multiplies_correctly() {
    check_n("kcm_multiplies", 48, |rng| {
        let signed = rng.bool();
        let constant = if signed {
            rng.range_i64(-6000, 5999)
        } else {
            rng.range_i64(0, 5999)
        };
        let width = rng.range_i64(2, 10) as u32;
        let probe = KcmMultiplier::new(constant, width, 1).signed(signed);
        let full = probe.full_product_width();
        let kcm = KcmMultiplier::new(constant, width, full).signed(signed);
        let circuit = Circuit::from_generator(&kcm).expect("build");
        let mut sim = Simulator::new(&circuit).expect("compile");
        let x_seed = rng.next_u64();
        let x = if signed {
            let span = 1i64 << width;
            ((x_seed % span as u64) as i64) - (span / 2)
        } else {
            (x_seed % (1u64 << width)) as i64
        };
        if signed {
            sim.set_i64("multiplicand", x).expect("set");
        } else {
            sim.set_u64("multiplicand", x as u64).expect("set");
        }
        let product = sim.peek("product").expect("peek");
        let got = if constant * x < 0 {
            product.to_i64().expect("driven")
        } else {
            product.to_u64().expect("driven") as i64
        };
        assert_eq!(got, constant * x);
    });
}

/// Pipelined and combinational KCMs agree modulo latency.
#[test]
fn kcm_pipelining_is_transparent() {
    check_n("kcm_pipelining", 48, |rng| {
        let constant = rng.range_i64(1, 1999);
        let width = rng.range_i64(2, 9) as u32;
        let full = KcmMultiplier::new(constant, width, 1).full_product_width();
        let comb = KcmMultiplier::new(constant, width, full);
        let pipe = KcmMultiplier::new(constant, width, full).pipelined(true);
        let c1 = Circuit::from_generator(&comb).expect("comb");
        let c2 = Circuit::from_generator(&pipe).expect("pipe");
        let mut s1 = Simulator::new(&c1).expect("compile");
        let mut s2 = Simulator::new(&c2).expect("compile");
        let x = rng.next_u64() % (1u64 << width);
        s1.set_u64("multiplicand", x).expect("set");
        s2.set_u64("multiplicand", x).expect("set");
        s2.cycle(u64::from(pipe.latency())).expect("cycle");
        assert_eq!(
            s1.peek("product").expect("p1"),
            s2.peek("product").expect("p2")
        );
    });
}

/// The ripple adder is a wrapping adder with carry out.
#[test]
fn adder_is_addition() {
    check_n("adder_is_addition", 48, |rng| {
        let width = rng.range_i64(1, 16) as u32;
        let circuit = Circuit::from_generator(&RippleAdder::new(width).with_cout()).expect("build");
        let mut sim = Simulator::new(&circuit).expect("compile");
        let mask = (1u64 << width) - 1;
        let (a, b) = (rng.next_u64() & mask, rng.next_u64() & mask);
        sim.set_u64("a", a).expect("set");
        sim.set_u64("b", b).expect("set");
        let s = sim.peek("s").expect("s").to_u64().expect("driven");
        let co = sim.peek("cout").expect("cout").to_u64().expect("driven");
        assert_eq!(s, (a + b) & mask);
        assert_eq!(co, (a + b) >> width);
    });
}

/// The array multiplier multiplies.
#[test]
fn array_multiplier_multiplies() {
    check_n("array_multiplier", 48, |rng| {
        let aw = rng.range_i64(1, 7) as u32;
        let bw = rng.range_i64(1, 7) as u32;
        let circuit = Circuit::from_generator(&ArrayMultiplier::new(aw, bw)).expect("build");
        let mut sim = Simulator::new(&circuit).expect("compile");
        let a = rng.next_u64() & ((1 << aw) - 1);
        let b = rng.next_u64() & ((1 << bw) - 1);
        sim.set_u64("a", a).expect("set");
        sim.set_u64("b", b).expect("set");
        assert_eq!(sim.peek("p").expect("p").to_u64(), Some(a * b));
    });
}

/// LZSS round-trips arbitrary bytes.
#[test]
fn lzss_round_trips() {
    check_n("lzss_round_trips", 48, |rng| {
        let len = rng.index(4096);
        let data = rng.bytes(len);
        let packed = compress(&data);
        assert_eq!(decompress(&packed).expect("decompress"), data);
    });
}

/// CRC-32 detects any single-bit corruption.
#[test]
fn crc_detects_bit_flips() {
    check_n("crc_detects_bit_flips", 48, |rng| {
        let len = 1 + rng.index(255);
        let data = rng.bytes(len);
        let reference = crc32(&data);
        let mut corrupted = data.clone();
        let idx = rng.index(corrupted.len());
        corrupted[idx] ^= 1 << (rng.below(8) as u8);
        assert_ne!(crc32(&corrupted), reference);
    });
}

/// Identifier legalization is injective per table, for every dialect.
#[test]
fn name_legalization_injective() {
    check_n("name_legalization", 48, |rng| {
        let mut names = std::collections::HashSet::new();
        for _ in 0..1 + rng.index(39) {
            let len = rng.index(25);
            let name: String = (0..len)
                .map(|_| (b' ' + (rng.below(95) as u8)) as char)
                .collect();
            names.insert(name);
        }
        for dialect in [Dialect::Edif, Dialect::Vhdl, Dialect::Verilog] {
            let mut table = NameTable::new(dialect);
            let mut legal = std::collections::HashSet::new();
            for name in &names {
                let l = table.legalize(name).to_owned();
                assert!(legal.insert(l.clone()), "collision on {l} ({dialect:?})");
            }
        }
    });
}

/// Licenses reject any tampering with the capability bits.
#[test]
fn license_tampering_detected() {
    check_n("license_tampering", 48, |rng| {
        let day = rng.below(1000) as u32;
        let cap_bits = rng.next_u64() as u16;
        let authority = LicenseAuthority::new(b"prop-key".to_vec());
        let caps = CapabilitySet::from_bits(cap_bits);
        let license = authority.issue("acme", "ip", caps, day, day + 30);
        assert!(authority.verify(&license, day).is_ok());
        // Any *other* capability set under the same signature must fail:
        // re-issue with different caps and splice signatures.
        let other_caps = if caps == CapabilitySet::licensed() {
            CapabilitySet::passive()
        } else {
            CapabilitySet::licensed()
        };
        let other = authority.issue("acme", "ip", other_caps, day, day + 30);
        assert_ne!(license.signature_hex(), other.signature_hex());
    });
}

/// Flattening preserves the primitive multiset and EDIF output
/// reparses, across random adder/multiplier shapes.
#[test]
fn flatten_and_edif_invariants() {
    check_n("flatten_and_edif", 48, |rng| {
        let width = rng.range_i64(1, 11) as u32;
        let circuit = Circuit::from_generator(&RippleAdder::new(width).with_cin().with_cout())
            .expect("build");
        let flat = FlatNetlist::build(&circuit).expect("flatten");
        assert_eq!(flat.leaves().len(), circuit.primitive_count());
        let edif = ipd::netlist::edif_string(&circuit).expect("edif");
        let tree = SExpr::parse(&edif).expect("reparse");
        // Instance count in the (single-level) work cell equals
        // primitive count.
        assert_eq!(tree.find_all("instance").len(), circuit.primitive_count());
    });
}

/// Obfuscation preserves simulation behaviour on random KCMs.
#[test]
fn obfuscation_preserves_function() {
    check_n("obfuscation_preserves", 48, |rng| {
        let constant = rng.range_i64(-300, 299);
        let probe = KcmMultiplier::new(constant, 6, 1).signed(true);
        let kcm = KcmMultiplier::new(constant, 6, probe.full_product_width()).signed(true);
        let clear = Circuit::from_generator(&kcm).expect("build");
        let hidden = ipd::core::obfuscate(&clear).expect("obfuscate");
        let mut s1 = Simulator::new(&clear).expect("compile clear");
        let mut s2 = Simulator::new(&hidden).expect("compile hidden");
        let x = rng.range_i64(-32, 31);
        s1.set_i64("multiplicand", x).expect("set");
        s2.set_i64("multiplicand", x).expect("set");
        assert_eq!(
            s1.peek("product").expect("clear"),
            s2.peek("product").expect("hidden")
        );
    });
}
