//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;

use ipd::core::{CapabilitySet, LicenseAuthority};
use ipd::hdl::{Circuit, FlatNetlist};
use ipd::modgen::{ArrayMultiplier, KcmMultiplier, RippleAdder};
use ipd::netlist::{Dialect, NameTable, SExpr};
use ipd::pack::{compress, crc32, decompress};
use ipd::sim::Simulator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The KCM computes `constant × input` for arbitrary constants,
    /// widths and signs (full product width, so no truncation).
    #[test]
    fn kcm_multiplies_correctly(
        constant in -6000i64..6000,
        width in 2u32..11,
        x_seed in any::<u64>(),
        signed in any::<bool>(),
    ) {
        let constant = if signed { constant } else { constant.abs() };
        let probe = KcmMultiplier::new(constant, width, 1).signed(signed);
        let full = probe.full_product_width();
        let kcm = KcmMultiplier::new(constant, width, full).signed(signed);
        let circuit = Circuit::from_generator(&kcm).expect("build");
        let mut sim = Simulator::new(&circuit).expect("compile");
        let x = if signed {
            let span = 1i64 << width;
            ((x_seed % span as u64) as i64) - (span / 2)
        } else {
            (x_seed % (1u64 << width)) as i64
        };
        if signed {
            sim.set_i64("multiplicand", x).expect("set");
        } else {
            sim.set_u64("multiplicand", x as u64).expect("set");
        }
        let product = sim.peek("product").expect("peek");
        let got = if constant * x < 0 {
            product.to_i64().expect("driven")
        } else {
            product.to_u64().expect("driven") as i64
        };
        prop_assert_eq!(got, constant * x);
    }

    /// Pipelined and combinational KCMs agree modulo latency.
    #[test]
    fn kcm_pipelining_is_transparent(
        constant in 1i64..2000,
        width in 2u32..10,
        x_seed in any::<u64>(),
    ) {
        let full = KcmMultiplier::new(constant, width, 1).full_product_width();
        let comb = KcmMultiplier::new(constant, width, full);
        let pipe = KcmMultiplier::new(constant, width, full).pipelined(true);
        let c1 = Circuit::from_generator(&comb).expect("comb");
        let c2 = Circuit::from_generator(&pipe).expect("pipe");
        let mut s1 = Simulator::new(&c1).expect("compile");
        let mut s2 = Simulator::new(&c2).expect("compile");
        let x = x_seed % (1u64 << width);
        s1.set_u64("multiplicand", x).expect("set");
        s2.set_u64("multiplicand", x).expect("set");
        s2.cycle(u64::from(pipe.latency())).expect("cycle");
        prop_assert_eq!(s1.peek("product").expect("p1"), s2.peek("product").expect("p2"));
    }

    /// The ripple adder is a wrapping adder with carry out.
    #[test]
    fn adder_is_addition(width in 1u32..17, a in any::<u64>(), b in any::<u64>()) {
        let circuit = Circuit::from_generator(
            &RippleAdder::new(width).with_cout(),
        ).expect("build");
        let mut sim = Simulator::new(&circuit).expect("compile");
        let mask = (1u64 << width) - 1;
        let (a, b) = (a & mask, b & mask);
        sim.set_u64("a", a).expect("set");
        sim.set_u64("b", b).expect("set");
        let s = sim.peek("s").expect("s").to_u64().expect("driven");
        let co = sim.peek("cout").expect("cout").to_u64().expect("driven");
        prop_assert_eq!(s, (a + b) & mask);
        prop_assert_eq!(co, (a + b) >> width);
    }

    /// The array multiplier multiplies.
    #[test]
    fn array_multiplier_multiplies(
        aw in 1u32..8, bw in 1u32..8, a in any::<u64>(), b in any::<u64>(),
    ) {
        let circuit = Circuit::from_generator(&ArrayMultiplier::new(aw, bw)).expect("build");
        let mut sim = Simulator::new(&circuit).expect("compile");
        let (a, b) = (a & ((1 << aw) - 1), b & ((1 << bw) - 1));
        sim.set_u64("a", a).expect("set");
        sim.set_u64("b", b).expect("set");
        prop_assert_eq!(sim.peek("p").expect("p").to_u64(), Some(a * b));
    }

    /// LZSS round-trips arbitrary bytes.
    #[test]
    fn lzss_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let packed = compress(&data);
        prop_assert_eq!(decompress(&packed).expect("decompress"), data);
    }

    /// CRC-32 detects any single-bit corruption.
    #[test]
    fn crc_detects_bit_flips(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        byte_idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let reference = crc32(&data);
        let mut corrupted = data.clone();
        let idx = byte_idx.index(corrupted.len());
        corrupted[idx] ^= 1 << bit;
        prop_assert_ne!(crc32(&corrupted), reference);
    }

    /// Identifier legalization is injective per table, for every
    /// dialect.
    #[test]
    fn name_legalization_injective(
        names in proptest::collection::hash_set("[ -~]{0,24}", 1..40),
    ) {
        for dialect in [Dialect::Edif, Dialect::Vhdl, Dialect::Verilog] {
            let mut table = NameTable::new(dialect);
            let mut legal = std::collections::HashSet::new();
            for name in &names {
                let l = table.legalize(name).to_owned();
                prop_assert!(legal.insert(l.clone()), "collision on {l} ({dialect:?})");
            }
        }
    }

    /// Licenses reject any tampering with the capability bits.
    #[test]
    fn license_tampering_detected(day in 0u32..1000, cap_bits in any::<u16>()) {
        let authority = LicenseAuthority::new(b"prop-key".to_vec());
        let caps = CapabilitySet::from_bits(cap_bits);
        let license = authority.issue("acme", "ip", caps, day, day + 30);
        prop_assert!(authority.verify(&license, day).is_ok());
        // Any *other* capability set under the same signature must fail:
        // re-issue with different caps and splice signatures.
        let other_caps = if caps == CapabilitySet::licensed() {
            CapabilitySet::passive()
        } else {
            CapabilitySet::licensed()
        };
        let other = authority.issue("acme", "ip", other_caps, day, day + 30);
        prop_assert_ne!(license.signature_hex(), other.signature_hex());
    }

    /// Flattening preserves the primitive multiset and EDIF output
    /// reparses, across random adder/multiplier shapes.
    #[test]
    fn flatten_and_edif_invariants(width in 1u32..12) {
        let circuit = Circuit::from_generator(
            &RippleAdder::new(width).with_cin().with_cout(),
        ).expect("build");
        let flat = FlatNetlist::build(&circuit).expect("flatten");
        prop_assert_eq!(flat.leaves().len(), circuit.primitive_count());
        let edif = ipd::netlist::edif_string(&circuit).expect("edif");
        let tree = SExpr::parse(&edif).expect("reparse");
        // Instance count in the (single-level) work cell equals
        // primitive count.
        prop_assert_eq!(tree.find_all("instance").len(), circuit.primitive_count());
    }

    /// Obfuscation preserves simulation behaviour on random KCMs.
    #[test]
    fn obfuscation_preserves_function(constant in -300i64..300, x_seed in any::<u64>()) {
        let probe = KcmMultiplier::new(constant, 6, 1).signed(true);
        let kcm = KcmMultiplier::new(constant, 6, probe.full_product_width()).signed(true);
        let clear = Circuit::from_generator(&kcm).expect("build");
        let hidden = ipd::core::obfuscate(&clear).expect("obfuscate");
        let mut s1 = Simulator::new(&clear).expect("compile clear");
        let mut s2 = Simulator::new(&hidden).expect("compile hidden");
        let x = ((x_seed % 64) as i64) - 32;
        s1.set_i64("multiplicand", x).expect("set");
        s2.set_i64("multiplicand", x).expect("set");
        prop_assert_eq!(
            s1.peek("product").expect("clear"),
            s2.peek("product").expect("hidden")
        );
    }
}
