//! Packaging and delivery integration: the Table 1 bundles, executable
//! download deltas, and protection passes against netlist regeneration.

use std::sync::Arc;

use ipd::core::{
    embed_watermark, obfuscate, verify_watermark, AppletHost, AppletServer, BundleDelivery,
    CapabilitySet, IpExecutable,
};
use ipd::hdl::Circuit;
use ipd::modgen::KcmMultiplier;
use ipd::pack::{Archive, BundleSet};

#[test]
fn table1_bundles_cover_the_kcm_applet() {
    let set = BundleSet::jhdl_applet_set();
    // The same four rows as the paper's Table 1.
    let names: Vec<_> = set.bundles().iter().map(|b| b.name()).collect();
    assert_eq!(names, ["JHDLBase", "Virtex", "Viewer", "Applet"]);
    // Shape: base largest, applet smallest by a wide margin, total is
    // the sum.
    let sizes: Vec<usize> = set.bundles().iter().map(|b| b.packed_size()).collect();
    assert!(sizes[0] > sizes[1] && sizes[1] > sizes[2] && sizes[2] > sizes[3]);
    assert!(sizes[0] > 5 * sizes[3]);
    assert_eq!(set.total_packed(), sizes.iter().sum::<usize>());
    // Rendered table matches the paper's columns.
    let table = set.to_string();
    for needle in ["File", "Size", "Description", "JHDLBase.jar", "Total"] {
        assert!(table.contains(needle), "missing {needle} in:\n{table}");
    }
}

#[test]
fn partitioning_saves_bandwidth_for_simple_applets() {
    // A passive applet downloads strictly less than the full set —
    // the reason the paper partitions Jar files at all.
    let passive = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
    let licensed = IpExecutable::new("kcm", "byu", CapabilitySet::licensed());
    let everything = BundleSet::full_set().total_packed();
    assert!(passive.download_size() < licensed.download_size());
    assert!(licensed.download_size() <= everything);
    assert!(
        passive.download_size() < everything * 3 / 4,
        "passive applet skips at least a quarter of the code"
    );
}

#[test]
fn browser_cache_semantics() {
    let mut host = AppletHost::new();
    let kcm_applet = IpExecutable::new("kcm", "byu", CapabilitySet::evaluation());
    let fir_applet = IpExecutable::new("fir", "byu", CapabilitySet::evaluation());
    let first = host.load(&kcm_applet);
    // A second applet from the same vendor reuses every shared bundle;
    // with identical capability sets nothing new is fetched.
    let second = host.load(&fir_applet);
    assert!(first > 0);
    assert_eq!(second, 0, "shared bundles are cached");
}

#[test]
fn bundles_survive_the_wire() {
    // Serialize every bundle, corrupt a copy, verify detection.
    for bundle in BundleSet::full_set().bundles() {
        let bytes = bundle.archive().to_bytes();
        let back = Archive::from_bytes(&bytes).expect("clean parse");
        assert_eq!(back.len(), bundle.archive().len());
        let mut corrupted = bytes.clone();
        let idx = corrupted.len() / 2;
        corrupted[idx] ^= 0x40;
        assert!(
            Archive::from_bytes(&corrupted).is_err(),
            "corruption in {} must be detected",
            bundle.name()
        );
    }
}

#[test]
fn conditional_delivery_round_trips_every_profile() {
    // For every capability profile: the first conditional fetch
    // delivers full payloads that decompress bit-identically to the
    // compress-every-time pipeline, and the second fetch is all
    // not-modified markers transferring zero bytes.
    let profiles = [
        ("passive", CapabilitySet::passive()),
        ("evaluation", CapabilitySet::evaluation()),
        ("licensed", CapabilitySet::licensed()),
        ("black_box", CapabilitySet::black_box()),
    ];
    for (label, caps) in profiles {
        let mut server = AppletServer::new("byu", b"key".to_vec());
        server.enroll("acme", "kcm", caps, 0, 365);
        let exe = server.serve("acme", 1).expect("serve");
        let reference = exe.bundle_set();

        let mut host = AppletHost::new();
        let first = host.sync(&mut server, "acme", 1).expect("first sync");
        assert_eq!(first, exe.download_size(), "{label}: full cold download");

        let response = server.fetch("acme", 1, &[]).expect("unconditional fetch");
        for item in response.items() {
            let BundleDelivery::Payload { name, bytes, .. } = item else {
                panic!("{label}: empty client must receive payloads");
            };
            let expected = reference
                .get(name)
                .unwrap_or_else(|| panic!("{label}: unknown bundle {name}"));
            assert_eq!(
                bytes[..],
                expected.archive().to_bytes()[..],
                "{label}/{name}: served bytes differ from the pre-cache pipeline"
            );
            let unpacked = Archive::from_bytes(bytes).expect("served container parses");
            for entry in expected.archive().entries() {
                assert_eq!(
                    unpacked.entry(entry.name()).expect("entry present").data(),
                    entry.data(),
                    "{label}/{name}/{}: decompressed contents changed",
                    entry.name()
                );
            }
        }

        let second = host.sync(&mut server, "acme", 2).expect("second sync");
        assert_eq!(second, 0, "{label}: warm revisit transfers nothing");
        let revalidated = server
            .fetch("acme", 2, &host.held_digests())
            .expect("revalidation");
        assert_eq!(revalidated.delivered(), 0, "{label}: everything is a 304");
        assert_eq!(revalidated.not_modified(), response.items().len());
    }
}

#[test]
fn same_digest_bundles_share_storage_across_customers() {
    let mut server = AppletServer::new("byu", b"key".to_vec());
    server.enroll("acme", "kcm", CapabilitySet::licensed(), 0, 365);
    server.enroll("bolt", "kcm", CapabilitySet::passive(), 0, 365);
    let acme = server.fetch("acme", 1, &[]).expect("acme fetch");
    let bolt = server.fetch("bolt", 1, &[]).expect("bolt fetch");
    // Every bundle the passive customer needs is the same content the
    // licensed customer already pulled — the store must hand out the
    // same allocation, not a recompression.
    for item in bolt.items() {
        let BundleDelivery::Payload { name, bytes, .. } = item else {
            panic!("bolt holds nothing; everything is a payload");
        };
        let shared = acme
            .items()
            .iter()
            .find_map(|i| match i {
                BundleDelivery::Payload {
                    name: n, bytes: b, ..
                } if n == name => Some(b),
                _ => None,
            })
            .unwrap_or_else(|| panic!("licensed set covers {name}"));
        assert!(
            Arc::ptr_eq(bytes, shared),
            "{name}: second customer got a second copy"
        );
    }
    let stats = server.store().stats();
    assert_eq!(
        stats.misses as usize,
        acme.items().len(),
        "only the first customer's bundles were packed"
    );
    assert!(stats.hits >= bolt.items().len() as u64);
}

#[test]
fn manifest_lists_digests_and_sizes() {
    let mut server = AppletServer::new("byu", b"key".to_vec());
    server.enroll("acme", "kcm", CapabilitySet::evaluation(), 0, 365);
    let manifest = server.manifest("acme", 1).expect("manifest");
    let exe = server.serve("acme", 1).expect("serve");
    assert_eq!(manifest.product(), "kcm");
    assert_eq!(manifest.entries().len(), exe.required_bundles().len());
    assert_eq!(manifest.total_packed(), exe.download_size());
    // Manifest access is metered separately from served accesses.
    assert_eq!(server.access_count("acme"), 1);
}

#[test]
fn watermark_survives_netlist_regeneration() {
    // The leak scenario: a licensed customer netlists the IP and the
    // EDIF ends up somewhere public. The vendor inspects the EDIF text
    // for the fingerprint ROM contents.
    let mut circuit =
        Circuit::from_generator(&KcmMultiplier::new(-56, 8, 12).signed(true)).unwrap();
    embed_watermark(&mut circuit, "acme", "kcm", b"vendor-key").unwrap();
    let delivered = obfuscate(&circuit).unwrap();
    assert!(verify_watermark(&delivered, "acme", "kcm", b"vendor-key"));

    let edif = ipd::netlist::edif_string(&delivered).unwrap();
    // The EDIF carries the INIT properties of the watermark ROMs.
    let words = {
        // Recompute the expected words the same way the library does.
        let mac = ipd::core::hmac_sha256(b"vendor-key", b"wm|acme|kcm");
        [
            u16::from_be_bytes([mac[0], mac[1]]),
            u16::from_be_bytes([mac[2], mac[3]]),
            u16::from_be_bytes([mac[4], mac[5]]),
            u16::from_be_bytes([mac[6], mac[7]]),
        ]
    };
    for word in words {
        let needle = format!("(property INIT (string \"{:X}\"))", word);
        assert!(
            edif.contains(&needle),
            "EDIF lost watermark word {word:#06x}"
        );
    }
}

#[test]
fn obfuscated_netlists_leak_no_names() {
    let circuit = Circuit::from_generator(&KcmMultiplier::new(-77, 8, 15).signed(true)).unwrap();
    let delivered = obfuscate(&circuit).unwrap();
    let edif = ipd::netlist::edif_string(&delivered).unwrap();
    for secret in ["kcm", "pp0", "sum_l", "_add"] {
        assert!(
            !edif.contains(secret),
            "obfuscated EDIF leaks generator name fragment {secret:?}"
        );
    }
    // The interface names must remain.
    assert!(edif.contains("multiplicand"));
    assert!(edif.contains("product"));
}
