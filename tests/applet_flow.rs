//! End-to-end integration: the full vendor→browser→evaluation→delivery
//! pipeline of the paper, across crates.

use ipd::core::{
    AppletHost, AppletServer, AppletSession, Capability, CapabilitySet, CoreError, IpExecutable,
};
use ipd::modgen::KcmMultiplier;
use ipd::netlist::{NetlistFormat, SExpr};

fn paper_kcm() -> Box<KcmMultiplier> {
    Box::new(KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true))
}

#[test]
fn figure3_full_session() {
    let mut server = AppletServer::new("byu", b"k".to_vec());
    server.enroll("acme", "virtex-kcm", CapabilitySet::licensed(), 0, 100);
    let exe = server.serve("acme", 1).expect("served");
    let mut host = AppletHost::new();
    assert!(host.load(&exe) > 0);

    let mut session = AppletSession::new(&exe, &host, paper_kcm());
    session.build().expect("build button");

    // Estimates panel.
    let area = session.estimate_area().expect("area");
    assert!(area.total.luts >= 16, "KCM uses partial-product LUTs");
    let timing = session.estimate_timing().expect("timing");
    assert!(timing.fmax_mhz > 10.0 && timing.fmax_mhz < 1000.0);

    // Structure panel.
    let schematic = session.schematic().expect("schematic");
    assert!(schematic.contains("port multiplicand"));
    let hierarchy = session.hierarchy().expect("hierarchy");
    assert!(hierarchy.contains("muxcy"), "carry-chain adders visible");
    let layout = session.layout().expect("layout");
    assert!(layout.contains("layout: rows"));

    // Simulation panel: cycle and reset.
    session.record("product").expect("record");
    session.set_i64("multiplicand", -56).expect("set");
    session.cycle(2).expect("latency cycles");
    let product = session.peek("product").expect("peek");
    // (-56 × -56) = 3136; full width 14, 12-bit product = >> 2 = 784.
    assert_eq!(product.to_i64(), Some(784));
    session.reset().expect("reset button");
    let waves = session.waveforms().expect("waveform viewer");
    assert!(waves.contains("product"));

    // Netlist button: EDIF that reparses.
    let edif = session.netlist(NetlistFormat::Edif).expect("netlist");
    let tree = SExpr::parse(&edif).expect("generated EDIF reparses");
    assert_eq!(tree.head(), Some("edif"));
    // Every netlist format generates.
    for format in NetlistFormat::all() {
        assert!(!session.netlist(format).expect("format").is_empty());
    }
}

#[test]
fn capability_matrix_is_enforced() {
    let host = AppletHost::new();
    struct Case {
        caps: CapabilitySet,
        schematic: bool,
        simulate: bool,
        netlist: bool,
        layout: bool,
    }
    let cases = [
        Case {
            caps: CapabilitySet::passive(),
            schematic: false,
            simulate: false,
            netlist: false,
            layout: false,
        },
        Case {
            caps: CapabilitySet::evaluation(),
            schematic: true,
            simulate: true,
            netlist: false,
            layout: true,
        },
        Case {
            caps: CapabilitySet::licensed(),
            schematic: true,
            simulate: true,
            netlist: true,
            layout: true,
        },
        Case {
            caps: CapabilitySet::black_box(),
            schematic: false,
            simulate: true,
            netlist: false,
            layout: false,
        },
    ];
    for case in cases {
        let exe = IpExecutable::new("kcm", "byu", case.caps);
        let mut session = AppletSession::new(&exe, &host, paper_kcm());
        session.build().expect("configure is granted in all cases");
        assert_eq!(session.schematic().is_ok(), case.schematic, "{}", case.caps);
        assert_eq!(session.layout().is_ok(), case.layout, "{}", case.caps);
        assert_eq!(
            session.set_i64("multiplicand", 1).is_ok(),
            case.simulate,
            "{}",
            case.caps
        );
        assert_eq!(
            session.netlist(NetlistFormat::Edif).is_ok(),
            case.netlist,
            "{}",
            case.caps
        );
    }
}

#[test]
fn denied_operations_never_leak_data() {
    let exe = IpExecutable::new("kcm", "byu", CapabilitySet::passive());
    let host = AppletHost::new();
    let mut session = AppletSession::new(&exe, &host, paper_kcm());
    session.build().unwrap();
    // The error type carries no circuit content.
    match session.netlist(NetlistFormat::Edif) {
        Err(CoreError::CapabilityDenied { capability }) => {
            assert_eq!(capability, Capability::Netlist);
        }
        other => panic!("expected denial, got {other:?}"),
    }
}

#[test]
fn server_upgrade_changes_served_applet() {
    let mut server = AppletServer::new("byu", b"k".to_vec());
    server.enroll("acme", "kcm", CapabilitySet::passive(), 0, 100);
    let before = server.serve("acme", 1).unwrap();
    // The customer buys a license; the server-side profile changes and
    // the *same URL* now serves a richer applet (the paper's central
    // deployment advantage).
    server.enroll("acme", "kcm", CapabilitySet::licensed(), 0, 100);
    let after = server.serve("acme", 2).unwrap();
    assert!(after.capabilities().is_superset_of(&before.capabilities()));
    assert!(after.download_size() > before.download_size());
    assert_eq!(server.access_count("acme"), 2);
}

#[test]
fn applet_reconfiguration_rebuilds() {
    // The "programmatic circuit generator interface": the customer
    // tries several parameter sets in one applet visit.
    let exe = IpExecutable::new("kcm", "byu", CapabilitySet::evaluation());
    let host = AppletHost::new();
    for (constant, width) in [(3i64, 4u32), (-77, 8), (1023, 10)] {
        let full = KcmMultiplier::new(constant, width, 1)
            .signed(true)
            .full_product_width();
        let kcm = KcmMultiplier::new(constant, width, full).signed(true);
        let mut session = AppletSession::new(&exe, &host, Box::new(kcm));
        session.build().expect("build");
        let x = if width >= 3 { -3 } else { -1 };
        session.set_i64("multiplicand", x).unwrap();
        assert_eq!(
            session.peek("product").unwrap().to_i64(),
            Some(constant * x),
            "constant {constant} width {width}"
        );
    }
}
