//! # ipd-testutil — deterministic randomness for offline test suites
//!
//! The workspace builds and tests with **zero network access**, so the
//! test suites cannot depend on crates.io (`rand`, `proptest`). This
//! crate supplies the two things those dependencies were used for:
//!
//! - [`XorShift64`] — a tiny, fast, deterministic pseudo-random number
//!   generator (Marsaglia xorshift64*), good enough for randomized
//!   structural tests and stimulus sweeps.
//! - [`check`] / [`check_n`] — a minimal property-test loop: run a
//!   closure over `n` seeded cases and report the failing seed so a
//!   failure reproduces exactly.
//!
//! Determinism is a feature: every test derives its stream from a fixed
//! seed, so CI failures replay locally bit-for-bit.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Default number of cases run by [`check`].
pub const DEFAULT_CASES: u32 = 64;

/// A xorshift64* pseudo-random number generator.
///
/// Not cryptographic — a deterministic stimulus source for tests and
/// benchmark workloads.
///
/// # Examples
///
/// ```
/// use ipd_testutil::XorShift64;
///
/// let mut rng = XorShift64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// assert_eq!(XorShift64::new(42).next_u64(), a, "deterministic");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (0 is remapped internally).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            // xorshift has a fixed point at 0; nudge it off.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniform value in `0..bound` (`bound` of 0 returns 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// A uniform `usize` in `0..bound` (`bound` of 0 returns 0).
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let offset = (u128::from(self.next_u64()) % span) as i128;
        (i128::from(lo) + offset) as i64
    }

    /// A pseudo-random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector of `len` pseudo-random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() & 0xFF) as u8).collect()
    }
}

/// Runs `case` for [`DEFAULT_CASES`] seeded cases.
///
/// # Panics
///
/// Panics (with the failing case number) when `case` panics; the case
/// number seeds the RNG, so failures replay deterministically.
pub fn check(name: &str, case: impl Fn(&mut XorShift64)) {
    check_n(name, DEFAULT_CASES, case);
}

/// Runs `case` over `cases` deterministic seeds.
///
/// Each case receives an RNG seeded from the case index, so any
/// failure names the exact case to replay.
///
/// # Panics
///
/// Propagates the first failing case's panic, prefixed with its seed.
pub fn check_n(name: &str, cases: u32, case: impl Fn(&mut XorShift64)) {
    for i in 0..cases {
        let seed = 0xA5A5_0000 + u64::from(i);
        let mut rng = XorShift64::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property `{name}` failed on case {i} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = XorShift64::new(0);
        let values: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(values.iter().any(|&v| v != 0));
        assert_ne!(values[0], values[1]);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = XorShift64::new(1);
        for bound in [1u64, 2, 3, 16, 1000] {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = XorShift64::new(2);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..500 {
            let v = rng.range_i64(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi, "endpoints reached");
    }

    #[test]
    fn check_reports_failures() {
        let result = std::panic::catch_unwind(|| {
            check_n("always_fails", 3, |_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn check_passes_quiet() {
        check_n("trivial", 8, |rng| {
            let v = rng.below(10);
            assert!(v < 10);
        });
    }
}
