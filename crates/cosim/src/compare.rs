//! Quantifying the paper's delivery-architecture claim (Figure 4 and
//! §1.2/§4.2 discussion).
//!
//! The paper argues that delivering a simulation *executable* (applet)
//! beats the Web-CAD [2] / JavaCAD [1] remote-simulation architectures
//! because "simulating the IP directly on the user's machine will
//! result in increased simulation speed by avoiding the relatively
//! long latency associated with a network". This module models the
//! three architectures over a common scenario so the trade-off — a
//! one-time download versus a per-event network tax — can be swept and
//! plotted.

use std::time::Duration;

use ipd_hdl::Circuit;

use crate::error::CosimError;
use crate::model::{LocalSimModel, SimModel};

/// How the IP's simulation reaches the customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// The paper's approach: download the applet once, simulate
    /// locally.
    AppletLocal,
    /// Web-CAD style: simulation stays at the vendor; the customer
    /// exchanges one batched event message per clock cycle.
    WebCadRemote,
    /// JavaCAD style: remote method invocation — one round trip per
    /// port event (every set and every get).
    JavaCadRmi,
}

impl std::fmt::Display for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Approach::AppletLocal => "applet-local",
            Approach::WebCadRemote => "web-cad-remote",
            Approach::JavaCadRmi => "javacad-rmi",
        })
    }
}

/// A co-simulation scenario to cost out.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveryScenario {
    /// Clock cycles the customer wants to simulate.
    pub cycles: u64,
    /// Port events (input sets + output reads) per cycle.
    pub events_per_cycle: u64,
    /// Applet code size (compressed bundles) in bytes.
    pub download_bytes: u64,
    /// Customer link bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// Network round-trip time to the vendor.
    pub rtt: Duration,
    /// Measured local cost of one simulation event.
    pub local_event_cost: Duration,
}

impl DeliveryScenario {
    /// Total evaluation time under an approach.
    #[must_use]
    pub fn total_time(&self, approach: Approach) -> Duration {
        let events = self.cycles * self.events_per_cycle;
        let compute = self.local_event_cost * events as u32;
        match approach {
            Approach::AppletLocal => {
                let download = Duration::from_secs_f64(
                    self.download_bytes as f64 / self.bandwidth_bytes_per_s,
                );
                download + compute
            }
            Approach::WebCadRemote => {
                // One batched round trip per cycle; the vendor's server
                // does the same compute.
                self.rtt * self.cycles as u32 + compute
            }
            Approach::JavaCadRmi => {
                // One round trip per event.
                self.rtt * events as u32 + compute
            }
        }
    }

    /// Steady-state throughput in cycles per second.
    #[must_use]
    pub fn throughput(&self, approach: Approach) -> f64 {
        let per_cycle = match approach {
            Approach::AppletLocal => {
                self.local_event_cost.as_secs_f64() * self.events_per_cycle as f64
            }
            Approach::WebCadRemote => {
                self.rtt.as_secs_f64()
                    + self.local_event_cost.as_secs_f64() * self.events_per_cycle as f64
            }
            Approach::JavaCadRmi => {
                (self.rtt.as_secs_f64() + self.local_event_cost.as_secs_f64())
                    * self.events_per_cycle as f64
            }
        };
        if per_cycle <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / per_cycle
        }
    }

    /// The number of cycles after which the applet download has paid
    /// for itself against an approach, or `None` if the remote
    /// approach never loses (zero-latency network).
    #[must_use]
    pub fn crossover_cycles(&self, against: Approach) -> Option<u64> {
        let download = self.download_bytes as f64 / self.bandwidth_bytes_per_s;
        let saved_per_cycle = match against {
            Approach::AppletLocal => return None,
            Approach::WebCadRemote => self.rtt.as_secs_f64(),
            Approach::JavaCadRmi => self.rtt.as_secs_f64() * self.events_per_cycle as f64,
        };
        if saved_per_cycle <= 0.0 {
            return None;
        }
        Some((download / saved_per_cycle).ceil() as u64)
    }
}

/// Measures the real local cost of one simulation event (a set, a
/// cycle, a get) on a compiled circuit — the `local_event_cost` input
/// to a [`DeliveryScenario`].
///
/// # Errors
///
/// Propagates simulator compile failures.
pub fn measure_local_event_cost(circuit: &Circuit, samples: u32) -> Result<Duration, CosimError> {
    let mut model = LocalSimModel::new(circuit)?;
    let ports = model.interface()?;
    let input = ports
        .iter()
        .find(|(n, d, _)| *d == ipd_hdl::PortDir::Input && n != "clk")
        .map(|(n, _, w)| (n.clone(), *w))
        .ok_or_else(|| CosimError::Wiring {
            reason: "circuit has no data input".to_owned(),
        })?;
    let output = ports
        .iter()
        .find(|(_, d, _)| *d == ipd_hdl::PortDir::Output)
        .map(|(n, _, _)| n.clone())
        .ok_or_else(|| CosimError::Wiring {
            reason: "circuit has no output".to_owned(),
        })?;
    let start = std::time::Instant::now();
    for i in 0..samples {
        model.set(
            &input.0,
            ipd_hdl::LogicVec::from_u64(u64::from(i), input.1 as usize),
        )?;
        model.cycle(1)?;
        let _ = model.get(&output)?;
    }
    // Three events per iteration: set, cycle, get.
    Ok(start.elapsed() / (samples * 3).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(rtt_ms: u64) -> DeliveryScenario {
        DeliveryScenario {
            cycles: 10_000,
            events_per_cycle: 3,
            download_bytes: 795 * 1024, // the paper's Table 1 total
            bandwidth_bytes_per_s: 128.0 * 1024.0, // a 2002-era 1 Mb/s link
            rtt: Duration::from_millis(rtt_ms),
            local_event_cost: Duration::from_micros(5),
        }
    }

    #[test]
    fn applet_throughput_is_rtt_independent() {
        let slow = scenario(50);
        let fast = scenario(1);
        assert_eq!(
            slow.throughput(Approach::AppletLocal),
            fast.throughput(Approach::AppletLocal)
        );
    }

    #[test]
    fn remote_throughput_degrades_with_rtt() {
        let slow = scenario(50);
        let fast = scenario(1);
        assert!(slow.throughput(Approach::WebCadRemote) < fast.throughput(Approach::WebCadRemote));
        assert!(
            slow.throughput(Approach::JavaCadRmi) < slow.throughput(Approach::WebCadRemote),
            "per-event RMI is the slowest"
        );
    }

    #[test]
    fn applet_wins_at_wan_latency() {
        let s = scenario(20);
        let applet = s.total_time(Approach::AppletLocal);
        let webcad = s.total_time(Approach::WebCadRemote);
        let rmi = s.total_time(Approach::JavaCadRmi);
        assert!(applet < webcad, "{applet:?} vs {webcad:?}");
        assert!(webcad < rmi);
    }

    #[test]
    fn crossover_is_finite_and_small_for_wan() {
        let s = scenario(20);
        let cross = s.crossover_cycles(Approach::WebCadRemote).unwrap();
        // Download ~6.2 s, saving 20 ms per cycle → ~311 cycles.
        assert!(cross > 100 && cross < 1000, "crossover {cross}");
        let rmi_cross = s.crossover_cycles(Approach::JavaCadRmi).unwrap();
        assert!(rmi_cross < cross, "RMI pays more per cycle");
        assert!(s.crossover_cycles(Approach::AppletLocal).is_none());
    }

    #[test]
    fn zero_rtt_never_crosses() {
        let s = scenario(0);
        assert!(s.crossover_cycles(Approach::WebCadRemote).is_none());
    }

    #[test]
    fn measured_event_cost_is_positive() {
        use ipd_techlib::LogicCtx;
        let mut c = Circuit::new("inv");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(ipd_hdl::PortSpec::input("a", 4)).unwrap();
        let y = ctx.add_port(ipd_hdl::PortSpec::output("y", 4)).unwrap();
        for b in 0..4 {
            ctx.inv(ipd_hdl::Signal::bit_of(a, b), ipd_hdl::Signal::bit_of(y, b))
                .unwrap();
        }
        let cost = measure_local_event_cost(&c, 100).unwrap();
        assert!(cost > Duration::ZERO);
        assert!(cost < Duration::from_millis(10));
    }
}
