//! Transports and the black-box client.
//!
//! A [`BlackBoxClient`] speaks the co-simulation protocol over a
//! [`Transport`]. Three transports cover the paper's design space:
//!
//! - [`TcpTransport`] — a real socket to a black-box applet server
//!   (the paper's Figure 4).
//! - [`InProcTransport`] — the protocol run in-process (zero network),
//!   for tests and for measuring pure protocol overhead.
//! - [`LatencyTransport`] — wraps any transport and injects a
//!   configurable round-trip time, modelling the WAN that the
//!   Web-CAD [2] and JavaCAD [1] remote-simulation architectures pay
//!   *per event* — the cost the applet approach avoids.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use ipd_hdl::{LogicVec, PortDir};
use ipd_wire::{ClientConfig, ErrorCode, WireClient, WireError, WireStats};

use crate::error::CosimError;
use crate::model::SimModel;
use crate::protocol::Message;
use crate::server::handle;

/// A request/response channel carrying protocol messages.
pub trait Transport {
    /// Sends a request and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates channel failures.
    fn request(&mut self, message: &Message) -> Result<Message, CosimError>;

    /// Number of round trips performed so far.
    fn round_trips(&self) -> u64;
}

/// A real wire session to a [`BlackBoxServer`](crate::BlackBoxServer):
/// framed transport, handshake, typed error frames, per-endpoint
/// stats — all from `ipd-wire`.
#[derive(Debug)]
pub struct TcpTransport {
    wire: WireClient,
}

impl TcpTransport {
    /// Connects to a server address with default wire settings.
    ///
    /// # Errors
    ///
    /// Propagates connection and handshake failures (including a
    /// typed `Busy` refusal at the server's session cap).
    pub fn connect(addr: SocketAddr) -> Result<Self, CosimError> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects with explicit wire settings (frame cap, timeouts,
    /// auth token).
    ///
    /// # Errors
    ///
    /// Propagates connection and handshake failures.
    pub fn connect_with(addr: SocketAddr, config: &ClientConfig) -> Result<Self, CosimError> {
        Ok(TcpTransport {
            wire: WireClient::connect(addr, config)?,
        })
    }

    /// This session's client-side traffic counters (mirror of the
    /// server's per-session view).
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        self.wire.stats()
    }

    /// The server-assigned session id.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.wire.session_id()
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, message: &Message) -> Result<Message, CosimError> {
        match self.wire.call(message.wire_endpoint(), &message.encode()) {
            Ok(body) => Message::decode(&body),
            // Typed app error frames are the wire form of
            // `Message::Error`; hand them back as the response message
            // so callers keep their error mapping.
            Err(WireError::Remote {
                code: ErrorCode::App,
                message,
            }) => Ok(Message::Error { message }),
            Err(e) => Err(e.into()),
        }
    }

    fn round_trips(&self) -> u64 {
        self.wire.stats().totals().requests
    }
}

/// The protocol served in-process against a local model: encode,
/// decode, handle — everything but the wire.
pub struct InProcTransport<M: SimModel> {
    model: M,
    round_trips: u64,
}

impl<M: SimModel> std::fmt::Debug for InProcTransport<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcTransport")
            .field("round_trips", &self.round_trips)
            .finish()
    }
}

impl<M: SimModel> InProcTransport<M> {
    /// Wraps a local model.
    #[must_use]
    pub fn new(model: M) -> Self {
        InProcTransport {
            model,
            round_trips: 0,
        }
    }
}

impl<M: SimModel> Transport for InProcTransport<M> {
    fn request(&mut self, message: &Message) -> Result<Message, CosimError> {
        // Encode and decode for fidelity with the wire protocol.
        let bytes = message.encode();
        let decoded = Message::decode(&bytes)?;
        self.round_trips += 1;
        let response = handle(&mut self.model, &decoded);
        Message::decode(&response.encode())
    }

    fn round_trips(&self) -> u64 {
        self.round_trips
    }
}

/// Injects a fixed round-trip delay on every request — the WAN model
/// for the remote-simulation baselines.
#[derive(Debug)]
pub struct LatencyTransport<T: Transport> {
    inner: T,
    rtt: Duration,
}

impl<T: Transport> LatencyTransport<T> {
    /// Wraps a transport with a per-request round-trip time.
    #[must_use]
    pub fn new(inner: T, rtt: Duration) -> Self {
        LatencyTransport { inner, rtt }
    }

    /// The injected round-trip time.
    #[must_use]
    pub fn rtt(&self) -> Duration {
        self.rtt
    }
}

impl<T: Transport> Transport for LatencyTransport<T> {
    fn request(&mut self, message: &Message) -> Result<Message, CosimError> {
        if !self.rtt.is_zero() {
            std::thread::sleep(self.rtt);
        }
        self.inner.request(message)
    }

    fn round_trips(&self) -> u64 {
        self.inner.round_trips()
    }
}

/// A client driving a remote (or wrapped) black-box model. Implements
/// [`SimModel`], so a [`SystemSimulator`](crate::SystemSimulator) can
/// mix remote applets with local circuits.
#[derive(Debug)]
pub struct BlackBoxClient<T: Transport> {
    transport: T,
}

impl BlackBoxClient<TcpTransport> {
    /// Connects to a black-box applet server over TCP.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> Result<Self, CosimError> {
        Ok(BlackBoxClient {
            transport: TcpTransport::connect(addr)?,
        })
    }
}

impl<T: Transport> BlackBoxClient<T> {
    /// A client over an arbitrary transport.
    #[must_use]
    pub fn over(transport: T) -> Self {
        BlackBoxClient { transport }
    }

    /// Round trips performed so far (the remote-simulation cost
    /// driver).
    #[must_use]
    pub fn round_trips(&self) -> u64 {
        self.transport.round_trips()
    }

    /// The underlying transport (e.g. to read a [`TcpTransport`]'s
    /// wire counters).
    #[must_use]
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Ends the session politely.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn close(&mut self) -> Result<(), CosimError> {
        self.transport.request(&Message::Bye)?;
        Ok(())
    }

    fn expect_ok(&mut self, message: &Message) -> Result<(), CosimError> {
        match self.transport.request(message)? {
            Message::Ok => Ok(()),
            Message::Error { message } => Err(CosimError::Remote { message }),
            other => Err(CosimError::Protocol {
                reason: format!("expected Ok, got {other:?}"),
            }),
        }
    }
}

impl<T: Transport> SimModel for BlackBoxClient<T> {
    fn interface(&mut self) -> Result<Vec<(String, PortDir, u32)>, CosimError> {
        match self.transport.request(&Message::GetInterface)? {
            Message::Interface(ports) => Ok(ports),
            Message::Error { message } => Err(CosimError::Remote { message }),
            other => Err(CosimError::Protocol {
                reason: format!("expected Interface, got {other:?}"),
            }),
        }
    }

    fn set(&mut self, port: &str, value: LogicVec) -> Result<(), CosimError> {
        self.expect_ok(&Message::SetInput {
            port: port.to_owned(),
            value,
        })
    }

    fn cycle(&mut self, n: u32) -> Result<(), CosimError> {
        self.expect_ok(&Message::Cycle { n })
    }

    fn reset(&mut self) -> Result<(), CosimError> {
        self.expect_ok(&Message::Reset)
    }

    fn get(&mut self, port: &str) -> Result<LogicVec, CosimError> {
        match self.transport.request(&Message::GetOutput {
            port: port.to_owned(),
        })? {
            Message::Value { value, .. } => Ok(value),
            Message::Error { message } => Err(CosimError::Remote { message }),
            other => Err(CosimError::Protocol {
                reason: format!("expected Value, got {other:?}"),
            }),
        }
    }

    /// The whole batch travels in ONE round trip — the scalar path
    /// would pay `vectors × (inputs + cycle + outputs)` of them.
    fn run_batch(
        &mut self,
        cycles: u32,
        inputs: &[(String, Vec<LogicVec>)],
    ) -> Result<Vec<(String, Vec<LogicVec>)>, CosimError> {
        match self.transport.request(&Message::BatchRun {
            cycles,
            inputs: inputs.to_vec(),
        })? {
            Message::BatchResult { outputs } => Ok(outputs),
            Message::Error { message } => Err(CosimError::Remote { message }),
            other => Err(CosimError::Protocol {
                reason: format!("expected BatchResult, got {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LocalSimModel;
    use crate::server::BlackBoxServer;
    use ipd_core::AppletHost;
    use ipd_hdl::{Circuit, PortSpec};
    use ipd_techlib::LogicCtx;

    fn inverter() -> Circuit {
        let mut c = Circuit::new("inv");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, y).unwrap();
        c
    }

    #[test]
    fn in_proc_client_round_trip() {
        let model = LocalSimModel::new(&inverter()).unwrap();
        let mut client = BlackBoxClient::over(InProcTransport::new(model));
        let ports = client.interface().unwrap();
        assert_eq!(ports.len(), 2);
        client.set("a", LogicVec::from_u64(0, 1)).unwrap();
        assert_eq!(client.get("y").unwrap().to_u64(), Some(1));
        assert!(client.round_trips() >= 3);
        assert!(matches!(
            client.get("bogus"),
            Err(CosimError::Remote { .. })
        ));
    }

    #[test]
    fn tcp_client_against_real_server() {
        let mut host = AppletHost::new();
        host.grant_network_permission();
        let server = BlackBoxServer::bind(&host).unwrap();
        let addr = server.addr();
        let model = LocalSimModel::new(&inverter()).unwrap();
        let handle = server.spawn(model);
        let mut client = BlackBoxClient::connect(addr).unwrap();
        client.set("a", LogicVec::from_u64(1, 1)).unwrap();
        assert_eq!(client.get("y").unwrap().to_u64(), Some(0));
        client.reset().unwrap();
        client.cycle(1).unwrap();
        client.close().unwrap();
        handle.join().expect("no panic").expect("server ok");
    }

    #[test]
    fn batched_run_is_one_round_trip() {
        let mut host = AppletHost::new();
        host.grant_network_permission();
        let server = BlackBoxServer::bind(&host).unwrap();
        let addr = server.addr();
        let model = LocalSimModel::new(&inverter()).unwrap();
        let handle = server.spawn(model);
        let mut client = BlackBoxClient::connect(addr).unwrap();
        let inputs = vec![(
            "a".to_owned(),
            (0..100u64).map(|k| LogicVec::from_u64(k & 1, 1)).collect(),
        )];
        let before = client.round_trips();
        let outputs = client.run_batch(0, &inputs).unwrap();
        assert_eq!(client.round_trips() - before, 1, "one frame per batch");
        assert_eq!(outputs.len(), 1);
        let (port, values) = &outputs[0];
        assert_eq!(port, "y");
        assert_eq!(values.len(), 100);
        for (k, v) in values.iter().enumerate() {
            assert_eq!(v.to_u64(), Some(1 - (k as u64 & 1)), "vector {k}");
        }
        client.close().unwrap();
        handle.join().expect("no panic").expect("server ok");
    }

    #[test]
    fn batched_run_errors_travel_back() {
        let model = LocalSimModel::new(&inverter()).unwrap();
        let mut client = BlackBoxClient::over(InProcTransport::new(model));
        let ragged = vec![
            ("a".to_owned(), vec![LogicVec::zeros(1); 2]),
            ("a".to_owned(), vec![LogicVec::zeros(1); 1]),
        ];
        assert!(matches!(
            client.run_batch(0, &ragged),
            Err(CosimError::Remote { .. })
        ));
    }

    #[test]
    fn latency_transport_delays() {
        let model = LocalSimModel::new(&inverter()).unwrap();
        let transport =
            LatencyTransport::new(InProcTransport::new(model), Duration::from_millis(5));
        let mut client = BlackBoxClient::over(transport);
        let start = std::time::Instant::now();
        client.set("a", LogicVec::from_u64(1, 1)).unwrap();
        let _ = client.get("y").unwrap();
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "2 RTTs injected"
        );
    }
}
