//! The black-box co-simulation wire protocol.
//!
//! The paper (§4.2) exchanges "simulation events … over network sockets
//! and a custom communication protocol" between applets and the
//! customer's system simulator. This module defines that protocol:
//! length-prefixed frames carrying tagged messages.

use std::io::{Read, Write};

use ipd_hdl::{Logic, LogicVec, PortDir};

use crate::error::CosimError;

/// Maximum accepted frame size (a sanity bound against corruption).
pub const MAX_FRAME: u32 = 1 << 20;

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client greeting; the server answers with [`Message::Interface`].
    Hello,
    /// Queries the model's port interface.
    GetInterface,
    /// The model's interface: `(name, dir, width)` per port.
    Interface(Vec<(String, PortDir, u32)>),
    /// Drives an input port.
    SetInput {
        /// Port name.
        port: String,
        /// Value to drive.
        value: LogicVec,
    },
    /// Advances the model's clock.
    Cycle {
        /// Number of cycles.
        n: u32,
    },
    /// Resets the model to power-on state.
    Reset,
    /// Reads a port's current value.
    GetOutput {
        /// Port name.
        port: String,
    },
    /// A port value (response to [`Message::GetOutput`]).
    Value {
        /// Port name.
        port: String,
        /// Current value.
        value: LogicVec,
    },
    /// Generic success acknowledgement.
    Ok,
    /// Error report.
    Error {
        /// Human-readable message.
        message: String,
    },
    /// Ends the session.
    Bye,
    /// Runs a whole batch of stimulus vectors in one round trip. Each
    /// vector is simulated from power-on: inputs applied, `cycles`
    /// clock edges, outputs sampled. The server answers with
    /// [`Message::BatchResult`]. This amortizes the per-event
    /// round-trip cost that dominates the remote-simulation baselines.
    BatchRun {
        /// Clock cycles to run after applying each vector.
        cycles: u32,
        /// Per input port, one value per stimulus vector. All ports
        /// must carry the same number of vectors.
        inputs: Vec<(String, Vec<LogicVec>)>,
    },
    /// Per output port, one value per stimulus vector (response to
    /// [`Message::BatchRun`], in vector submission order).
    BatchResult {
        /// Per output port, one value per stimulus vector.
        outputs: Vec<(String, Vec<LogicVec>)>,
    },
}

impl Message {
    /// Encodes the message body (without framing).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::Hello => out.push(0),
            Message::GetInterface => out.push(1),
            Message::Interface(ports) => {
                out.push(2);
                out.extend_from_slice(&(ports.len() as u16).to_le_bytes());
                for (name, dir, width) in ports {
                    put_str(&mut out, name);
                    out.push(match dir {
                        PortDir::Input => 0,
                        PortDir::Output => 1,
                        PortDir::Inout => 2,
                    });
                    out.extend_from_slice(&width.to_le_bytes());
                }
            }
            Message::SetInput { port, value } => {
                out.push(3);
                put_str(&mut out, port);
                put_vec(&mut out, value);
            }
            Message::Cycle { n } => {
                out.push(4);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Message::Reset => out.push(5),
            Message::GetOutput { port } => {
                out.push(6);
                put_str(&mut out, port);
            }
            Message::Value { port, value } => {
                out.push(7);
                put_str(&mut out, port);
                put_vec(&mut out, value);
            }
            Message::Ok => out.push(8),
            Message::Error { message } => {
                out.push(9);
                put_str(&mut out, message);
            }
            Message::Bye => out.push(10),
            Message::BatchRun { cycles, inputs } => {
                out.push(11);
                out.extend_from_slice(&cycles.to_le_bytes());
                put_port_batches(&mut out, inputs);
            }
            Message::BatchResult { outputs } => {
                out.push(12);
                put_port_batches(&mut out, outputs);
            }
        }
        out
    }

    /// Decodes a message body.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Protocol`] for unknown tags or truncated
    /// fields.
    pub fn decode(bytes: &[u8]) -> Result<Message, CosimError> {
        let mut r = Cursor { bytes, pos: 0 };
        let tag = r.u8()?;
        let msg = match tag {
            0 => Message::Hello,
            1 => Message::GetInterface,
            2 => {
                let count = r.u16()? as usize;
                let mut ports = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = r.string()?;
                    let dir = match r.u8()? {
                        0 => PortDir::Input,
                        1 => PortDir::Output,
                        2 => PortDir::Inout,
                        other => {
                            return Err(CosimError::Protocol {
                                reason: format!("bad direction {other}"),
                            })
                        }
                    };
                    let width = r.u32()?;
                    ports.push((name, dir, width));
                }
                Message::Interface(ports)
            }
            3 => Message::SetInput {
                port: r.string()?,
                value: r.logic_vec()?,
            },
            4 => Message::Cycle { n: r.u32()? },
            5 => Message::Reset,
            6 => Message::GetOutput { port: r.string()? },
            7 => Message::Value {
                port: r.string()?,
                value: r.logic_vec()?,
            },
            8 => Message::Ok,
            9 => Message::Error {
                message: r.string()?,
            },
            10 => Message::Bye,
            11 => Message::BatchRun {
                cycles: r.u32()?,
                inputs: r.port_batches()?,
            },
            12 => Message::BatchResult {
                outputs: r.port_batches()?,
            },
            other => {
                return Err(CosimError::Protocol {
                    reason: format!("unknown message tag {other}"),
                })
            }
        };
        if r.pos != bytes.len() {
            return Err(CosimError::Protocol {
                reason: "trailing bytes in message".to_owned(),
            });
        }
        Ok(msg)
    }
}

/// Writes one length-prefixed frame. A mut reference can be passed as
/// the writer.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_frame<W: Write>(mut writer: W, message: &Message) -> Result<(), CosimError> {
    let body = message.encode();
    writer.write_all(&(body.len() as u32).to_le_bytes())?;
    writer.write_all(&body)?;
    writer.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame. A mut reference can be passed as
/// the reader.
///
/// # Errors
///
/// Fails on I/O errors, oversized frames or malformed bodies.
pub fn read_frame<R: Read>(mut reader: R) -> Result<Message, CosimError> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(CosimError::Protocol {
            reason: format!("frame of {len} bytes exceeds limit"),
        });
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body)?;
    Message::decode(&body)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_vec(out: &mut Vec<u8>, v: &LogicVec) {
    out.extend_from_slice(&(v.width() as u16).to_le_bytes());
    // Two bits per logic value, packed four per byte.
    let mut byte = 0u8;
    for (i, bit) in v.iter().enumerate() {
        let code = match bit {
            Logic::Zero => 0u8,
            Logic::One => 1,
            Logic::X => 2,
            Logic::Z => 3,
        };
        byte |= code << ((i % 4) * 2);
        if i % 4 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !v.width().is_multiple_of(4) {
        out.push(byte);
    }
}

fn put_port_batches(out: &mut Vec<u8>, batches: &[(String, Vec<LogicVec>)]) {
    out.extend_from_slice(&(batches.len() as u16).to_le_bytes());
    for (name, values) in batches {
        put_str(out, name);
        out.extend_from_slice(&(values.len() as u32).to_le_bytes());
        for value in values {
            put_vec(out, value);
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CosimError> {
        if self.pos + n > self.bytes.len() {
            return Err(CosimError::Protocol {
                reason: "truncated message".to_owned(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CosimError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CosimError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CosimError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn string(&mut self) -> Result<String, CosimError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CosimError::Protocol {
            reason: "string is not UTF-8".to_owned(),
        })
    }

    fn logic_vec(&mut self) -> Result<LogicVec, CosimError> {
        let width = self.u16()? as usize;
        let bytes = self.take(width.div_ceil(4))?;
        let mut bits = Vec::with_capacity(width);
        for i in 0..width {
            let code = (bytes[i / 4] >> ((i % 4) * 2)) & 0b11;
            bits.push(match code {
                0 => Logic::Zero,
                1 => Logic::One,
                2 => Logic::X,
                _ => Logic::Z,
            });
        }
        Ok(LogicVec::from_bits(bits))
    }

    fn port_batches(&mut self) -> Result<Vec<(String, Vec<LogicVec>)>, CosimError> {
        let ports = self.u16()? as usize;
        let mut batches = Vec::with_capacity(ports);
        for _ in 0..ports {
            let name = self.string()?;
            let count = self.u32()? as usize;
            // Bound allocation by the remaining bytes (each vector
            // takes at least the 2-byte width prefix).
            if count > self.bytes.len().saturating_sub(self.pos) {
                return Err(CosimError::Protocol {
                    reason: "batch vector count exceeds frame".to_owned(),
                });
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(self.logic_vec()?);
            }
            batches.push((name, values));
        }
        Ok(batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Message::Hello);
        round_trip(Message::GetInterface);
        round_trip(Message::Interface(vec![
            ("clk".into(), PortDir::Input, 1),
            ("x".into(), PortDir::Input, 8),
            ("y".into(), PortDir::Output, 17),
        ]));
        round_trip(Message::SetInput {
            port: "x".into(),
            value: LogicVec::from_i64(-56, 8),
        });
        round_trip(Message::Cycle { n: 1000 });
        round_trip(Message::Reset);
        round_trip(Message::GetOutput { port: "y".into() });
        round_trip(Message::Value {
            port: "y".into(),
            value: LogicVec::unknown(5),
        });
        round_trip(Message::Ok);
        round_trip(Message::Error {
            message: "no such port".into(),
        });
        round_trip(Message::Bye);
    }

    #[test]
    fn batch_messages_round_trip() {
        round_trip(Message::BatchRun {
            cycles: 3,
            inputs: vec![
                (
                    "x".into(),
                    (0..130).map(|k| LogicVec::from_u64(k, 8)).collect(),
                ),
                ("en".into(), vec![LogicVec::unknown(1); 130]),
            ],
        });
        round_trip(Message::BatchRun {
            cycles: 0,
            inputs: vec![],
        });
        round_trip(Message::BatchResult {
            outputs: vec![("y".into(), vec![LogicVec::from_i64(-3, 12)])],
        });
        round_trip(Message::BatchResult { outputs: vec![] });
    }

    #[test]
    fn truncated_batches_rejected() {
        let msg = Message::BatchRun {
            cycles: 1,
            inputs: vec![("x".into(), vec![LogicVec::from_u64(9, 4); 7])],
        };
        let bytes = msg.encode();
        for len in 1..bytes.len() {
            assert!(Message::decode(&bytes[..len]).is_err(), "prefix {len}");
        }
        // An absurd vector count must fail fast, not allocate.
        let mut bytes = vec![12, 1, 0, 1, 0, b'y'];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn four_state_values_survive() {
        let mut v = LogicVec::from_u64(0b1010, 4);
        v.set_bit(1, Logic::X);
        v.set_bit(2, Logic::Z);
        round_trip(Message::Value {
            port: "p".into(),
            value: v,
        });
    }

    #[test]
    fn framing_round_trip_over_a_pipe() {
        let mut buf = Vec::new();
        let msg = Message::SetInput {
            port: "multiplicand".into(),
            value: LogicVec::from_u64(42, 8),
        };
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &Message::Bye).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), msg);
        assert_eq!(read_frame(&mut cursor).unwrap(), Message::Bye);
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[200]).is_err());
        assert!(Message::decode(&[3, 5, 0]).is_err()); // truncated string
                                                       // Trailing junk.
        let mut bytes = Message::Ok.encode();
        bytes.push(7);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(std::io::Cursor::new(buf)),
            Err(CosimError::Protocol { .. })
        ));
    }
}
