//! The black-box co-simulation wire protocol.
//!
//! The paper (§4.2) exchanges "simulation events … over network sockets
//! and a custom communication protocol" between applets and the
//! customer's system simulator. This module defines the *payload*
//! encoding of that protocol; framing, size caps and deadlines live in
//! `ipd-wire`, the one transport layer shared with the delivery stack.

use std::io::{Read, Write};

use ipd_hdl::{Logic, LogicVec, PortDir};
use ipd_wire::{codec, Reader};

use crate::error::CosimError;

/// Maximum accepted frame size (a sanity bound against corruption) —
/// the wire layer's shared default.
pub const MAX_FRAME: u32 = ipd_wire::DEFAULT_MAX_FRAME;

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client greeting; the server answers with [`Message::Interface`].
    Hello,
    /// Queries the model's port interface.
    GetInterface,
    /// The model's interface: `(name, dir, width)` per port.
    Interface(Vec<(String, PortDir, u32)>),
    /// Drives an input port.
    SetInput {
        /// Port name.
        port: String,
        /// Value to drive.
        value: LogicVec,
    },
    /// Advances the model's clock.
    Cycle {
        /// Number of cycles.
        n: u32,
    },
    /// Resets the model to power-on state.
    Reset,
    /// Reads a port's current value.
    GetOutput {
        /// Port name.
        port: String,
    },
    /// A port value (response to [`Message::GetOutput`]).
    Value {
        /// Port name.
        port: String,
        /// Current value.
        value: LogicVec,
    },
    /// Generic success acknowledgement.
    Ok,
    /// Error report.
    Error {
        /// Human-readable message.
        message: String,
    },
    /// Ends the session.
    Bye,
    /// Runs a whole batch of stimulus vectors in one round trip. Each
    /// vector is simulated from power-on: inputs applied, `cycles`
    /// clock edges, outputs sampled. The server answers with
    /// [`Message::BatchResult`]. This amortizes the per-event
    /// round-trip cost that dominates the remote-simulation baselines.
    BatchRun {
        /// Clock cycles to run after applying each vector.
        cycles: u32,
        /// Per input port, one value per stimulus vector. All ports
        /// must carry the same number of vectors.
        inputs: Vec<(String, Vec<LogicVec>)>,
    },
    /// Per output port, one value per stimulus vector (response to
    /// [`Message::BatchRun`], in vector submission order).
    BatchResult {
        /// Per output port, one value per stimulus vector.
        outputs: Vec<(String, Vec<LogicVec>)>,
    },
}

impl Message {
    /// The wire endpoint id this message is routed to — the message
    /// tag, so per-endpoint [`WireStats`](ipd_wire::WireStats) break
    /// traffic down by request kind.
    #[must_use]
    pub fn wire_endpoint(&self) -> u16 {
        u16::from(self.tag())
    }

    fn tag(&self) -> u8 {
        match self {
            Message::Hello => 0,
            Message::GetInterface => 1,
            Message::Interface(_) => 2,
            Message::SetInput { .. } => 3,
            Message::Cycle { .. } => 4,
            Message::Reset => 5,
            Message::GetOutput { .. } => 6,
            Message::Value { .. } => 7,
            Message::Ok => 8,
            Message::Error { .. } => 9,
            Message::Bye => 10,
            Message::BatchRun { .. } => 11,
            Message::BatchResult { .. } => 12,
        }
    }

    /// Encodes the message body (without framing).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_u8(&mut out, self.tag());
        match self {
            Message::Hello
            | Message::GetInterface
            | Message::Reset
            | Message::Ok
            | Message::Bye => {}
            Message::Interface(ports) => {
                codec::put_u16(&mut out, ports.len() as u16);
                for (name, dir, width) in ports {
                    codec::put_str(&mut out, name);
                    codec::put_u8(
                        &mut out,
                        match dir {
                            PortDir::Input => 0,
                            PortDir::Output => 1,
                            PortDir::Inout => 2,
                        },
                    );
                    codec::put_u32(&mut out, *width);
                }
            }
            Message::SetInput { port, value } => {
                codec::put_str(&mut out, port);
                put_vec(&mut out, value);
            }
            Message::Cycle { n } => codec::put_u32(&mut out, *n),
            Message::GetOutput { port } => codec::put_str(&mut out, port),
            Message::Value { port, value } => {
                codec::put_str(&mut out, port);
                put_vec(&mut out, value);
            }
            Message::Error { message } => codec::put_str(&mut out, message),
            Message::BatchRun { cycles, inputs } => {
                codec::put_u32(&mut out, *cycles);
                put_port_batches(&mut out, inputs);
            }
            Message::BatchResult { outputs } => put_port_batches(&mut out, outputs),
        }
        out
    }

    /// Decodes a message body through the hardened wire reader: every
    /// declared length and count is capped against the bytes actually
    /// present before allocation, and trailing garbage is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Protocol`] for unknown tags, truncated
    /// fields, hostile counts and trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Message, CosimError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let msg = match tag {
            0 => Message::Hello,
            1 => Message::GetInterface,
            2 => {
                let count = r.u16()? as usize;
                // Each port needs ≥ 7 bytes (name prefix + dir + width).
                let count = r.cap_count(count, 7)?;
                let mut ports = Vec::with_capacity(count);
                for _ in 0..count {
                    let name = r.str()?;
                    let dir = match r.u8()? {
                        0 => PortDir::Input,
                        1 => PortDir::Output,
                        2 => PortDir::Inout,
                        other => {
                            return Err(CosimError::Protocol {
                                reason: format!("bad direction {other}"),
                            })
                        }
                    };
                    let width = r.u32()?;
                    ports.push((name, dir, width));
                }
                Message::Interface(ports)
            }
            3 => Message::SetInput {
                port: r.str()?,
                value: logic_vec(&mut r)?,
            },
            4 => Message::Cycle { n: r.u32()? },
            5 => Message::Reset,
            6 => Message::GetOutput { port: r.str()? },
            7 => Message::Value {
                port: r.str()?,
                value: logic_vec(&mut r)?,
            },
            8 => Message::Ok,
            9 => Message::Error { message: r.str()? },
            10 => Message::Bye,
            11 => Message::BatchRun {
                cycles: r.u32()?,
                inputs: port_batches(&mut r)?,
            },
            12 => Message::BatchResult {
                outputs: port_batches(&mut r)?,
            },
            other => {
                return Err(CosimError::Protocol {
                    reason: format!("unknown message tag {other}"),
                })
            }
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Display name for a co-simulation endpoint id (stats reports).
#[must_use]
pub fn endpoint_name(endpoint: u16) -> &'static str {
    match endpoint {
        0 => "cosim.hello",
        1 => "cosim.get-interface",
        2 => "cosim.interface",
        3 => "cosim.set-input",
        4 => "cosim.cycle",
        5 => "cosim.reset",
        6 => "cosim.get-output",
        7 => "cosim.value",
        8 => "cosim.ok",
        9 => "cosim.error",
        10 => "cosim.bye",
        11 => "cosim.batch-run",
        12 => "cosim.batch-result",
        _ => "cosim.unknown",
    }
}

/// Writes one length-prefixed frame. A mut reference can be passed as
/// the writer.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_frame<W: Write>(writer: W, message: &Message) -> Result<(), CosimError> {
    ipd_wire::write_frame(writer, &message.encode(), MAX_FRAME)?;
    Ok(())
}

/// Reads one length-prefixed frame. A mut reference can be passed as
/// the reader.
///
/// # Errors
///
/// Fails on I/O errors, oversized frames or malformed bodies.
pub fn read_frame<R: Read>(reader: R) -> Result<Message, CosimError> {
    let body = ipd_wire::read_frame(reader, MAX_FRAME)?;
    Message::decode(&body)
}

fn put_vec(out: &mut Vec<u8>, v: &LogicVec) {
    codec::put_u16(out, v.width() as u16);
    // Two bits per logic value, packed four per byte.
    let mut byte = 0u8;
    for (i, bit) in v.iter().enumerate() {
        let code = match bit {
            Logic::Zero => 0u8,
            Logic::One => 1,
            Logic::X => 2,
            Logic::Z => 3,
        };
        byte |= code << ((i % 4) * 2);
        if i % 4 == 3 {
            out.push(byte);
            byte = 0;
        }
    }
    if !v.width().is_multiple_of(4) {
        out.push(byte);
    }
}

fn put_port_batches(out: &mut Vec<u8>, batches: &[(String, Vec<LogicVec>)]) {
    codec::put_u16(out, batches.len() as u16);
    for (name, values) in batches {
        codec::put_str(out, name);
        codec::put_u32(out, values.len() as u32);
        for value in values {
            put_vec(out, value);
        }
    }
}

fn logic_vec(r: &mut Reader<'_>) -> Result<LogicVec, CosimError> {
    let width = r.u16()? as usize;
    let bytes = r.take(width.div_ceil(4))?;
    let mut bits = Vec::with_capacity(width);
    for i in 0..width {
        let code = (bytes[i / 4] >> ((i % 4) * 2)) & 0b11;
        bits.push(match code {
            0 => Logic::Zero,
            1 => Logic::One,
            2 => Logic::X,
            _ => Logic::Z,
        });
    }
    Ok(LogicVec::from_bits(bits))
}

fn port_batches(r: &mut Reader<'_>) -> Result<Vec<(String, Vec<LogicVec>)>, CosimError> {
    let ports = r.u16()? as usize;
    // Each port needs ≥ 6 bytes (name prefix + vector count).
    let ports = r.cap_count(ports, 6)?;
    let mut batches = Vec::with_capacity(ports);
    for _ in 0..ports {
        let name = r.str()?;
        let count = r.u32()? as usize;
        // Each vector takes at least its 2-byte width prefix; an
        // absurd declared count fails before any allocation.
        let count = r.cap_count(count, 2)?;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(logic_vec(r)?);
        }
        batches.push((name, values));
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let bytes = msg.encode();
        let back = Message::decode(&bytes).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Message::Hello);
        round_trip(Message::GetInterface);
        round_trip(Message::Interface(vec![
            ("clk".into(), PortDir::Input, 1),
            ("x".into(), PortDir::Input, 8),
            ("y".into(), PortDir::Output, 17),
        ]));
        round_trip(Message::SetInput {
            port: "x".into(),
            value: LogicVec::from_i64(-56, 8),
        });
        round_trip(Message::Cycle { n: 1000 });
        round_trip(Message::Reset);
        round_trip(Message::GetOutput { port: "y".into() });
        round_trip(Message::Value {
            port: "y".into(),
            value: LogicVec::unknown(5),
        });
        round_trip(Message::Ok);
        round_trip(Message::Error {
            message: "no such port".into(),
        });
        round_trip(Message::Bye);
    }

    #[test]
    fn batch_messages_round_trip() {
        round_trip(Message::BatchRun {
            cycles: 3,
            inputs: vec![
                (
                    "x".into(),
                    (0..130).map(|k| LogicVec::from_u64(k, 8)).collect(),
                ),
                ("en".into(), vec![LogicVec::unknown(1); 130]),
            ],
        });
        round_trip(Message::BatchRun {
            cycles: 0,
            inputs: vec![],
        });
        round_trip(Message::BatchResult {
            outputs: vec![("y".into(), vec![LogicVec::from_i64(-3, 12)])],
        });
        round_trip(Message::BatchResult { outputs: vec![] });
    }

    #[test]
    fn endpoints_follow_tags() {
        assert_eq!(Message::Hello.wire_endpoint(), 0);
        assert_eq!(
            Message::BatchRun {
                cycles: 0,
                inputs: vec![]
            }
            .wire_endpoint(),
            11
        );
        assert_eq!(endpoint_name(11), "cosim.batch-run");
        assert_eq!(endpoint_name(999), "cosim.unknown");
    }

    #[test]
    fn truncated_batches_rejected() {
        let msg = Message::BatchRun {
            cycles: 1,
            inputs: vec![("x".into(), vec![LogicVec::from_u64(9, 4); 7])],
        };
        let bytes = msg.encode();
        for len in 1..bytes.len() {
            assert!(Message::decode(&bytes[..len]).is_err(), "prefix {len}");
        }
        // An absurd vector count must fail fast, not allocate.
        let mut bytes = vec![12, 1, 0, 1, 0, b'y'];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Message::decode(&bytes).is_err());
        // An absurd port count, likewise.
        let mut bytes = vec![12];
        bytes.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(Message::decode(&bytes).is_err());
        // And an absurd interface port count.
        let mut bytes = vec![2];
        bytes.extend_from_slice(&u16::MAX.to_le_bytes());
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn four_state_values_survive() {
        let mut v = LogicVec::from_u64(0b1010, 4);
        v.set_bit(1, Logic::X);
        v.set_bit(2, Logic::Z);
        round_trip(Message::Value {
            port: "p".into(),
            value: v,
        });
    }

    #[test]
    fn framing_round_trip_over_a_pipe() {
        let mut buf = Vec::new();
        let msg = Message::SetInput {
            port: "multiplicand".into(),
            value: LogicVec::from_u64(42, 8),
        };
        write_frame(&mut buf, &msg).unwrap();
        write_frame(&mut buf, &Message::Bye).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), msg);
        assert_eq!(read_frame(&mut cursor).unwrap(), Message::Bye);
    }

    #[test]
    fn malformed_input_rejected() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[200]).is_err());
        assert!(Message::decode(&[3, 5, 0]).is_err()); // truncated string
                                                       // Trailing junk.
        let mut bytes = Message::Ok.encode();
        bytes.push(7);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            read_frame(std::io::Cursor::new(buf)),
            Err(CosimError::Protocol { .. })
        ));
    }
}
