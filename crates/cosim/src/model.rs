//! The port-level simulation-model abstraction.
//!
//! A black-box applet exposes *only* this interface: drive inputs,
//! cycle, read outputs. Local circuits, remote applets and behavioral
//! stand-ins all implement it, so a system simulation can mix them
//! freely (the paper's Figure 4).

use ipd_hdl::{Circuit, LogicVec, PortDir};
use ipd_sim::{Simulator, VectorSweep};

use crate::error::CosimError;

/// A port-level simulation model.
pub trait SimModel {
    /// The model's port interface: `(name, dir, width)`.
    fn interface(&mut self) -> Result<Vec<(String, PortDir, u32)>, CosimError>;

    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports or transport failures.
    fn set(&mut self, port: &str, value: LogicVec) -> Result<(), CosimError>;

    /// Advances the model by `n` clock cycles.
    ///
    /// # Errors
    ///
    /// Propagates simulation or transport failures.
    fn cycle(&mut self, n: u32) -> Result<(), CosimError>;

    /// Resets the model to power-on state.
    ///
    /// # Errors
    ///
    /// Propagates simulation or transport failures.
    fn reset(&mut self) -> Result<(), CosimError>;

    /// Reads a port's current value.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports or transport failures.
    fn get(&mut self, port: &str) -> Result<LogicVec, CosimError>;

    /// Runs a batch of independent stimulus vectors and returns every
    /// output port's value per vector.
    ///
    /// Each vector is simulated from power-on: reset, inputs applied,
    /// `cycles` clock edges, outputs sampled. `inputs` holds one value
    /// per vector for each driven input port (all the same length).
    ///
    /// The default implementation replays the vectors one at a time
    /// through [`SimModel::set`]/[`SimModel::cycle`]/[`SimModel::get`];
    /// implementations with a faster path (lane-parallel simulation, a
    /// single network round trip) override it.
    ///
    /// # Errors
    ///
    /// Fails on mismatched vector counts, unknown ports, or
    /// simulation/transport failures.
    fn run_batch(
        &mut self,
        cycles: u32,
        inputs: &[(String, Vec<LogicVec>)],
    ) -> Result<Vec<(String, Vec<LogicVec>)>, CosimError> {
        run_batch_serial(self, cycles, inputs)
    }
}

/// The portable batched-run fallback: one vector at a time through the
/// scalar [`SimModel`] interface. Exposed so overriding models can
/// delegate to it.
///
/// # Errors
///
/// As for [`SimModel::run_batch`].
pub fn run_batch_serial<M: SimModel + ?Sized>(
    model: &mut M,
    cycles: u32,
    inputs: &[(String, Vec<LogicVec>)],
) -> Result<Vec<(String, Vec<LogicVec>)>, CosimError> {
    let vectors = batch_vector_count(inputs)?;
    let out_ports: Vec<String> = model
        .interface()?
        .into_iter()
        .filter(|(_, dir, _)| *dir == PortDir::Output)
        .map(|(name, _, _)| name)
        .collect();
    let mut outputs: Vec<(String, Vec<LogicVec>)> = out_ports
        .iter()
        .map(|p| (p.clone(), Vec::with_capacity(vectors)))
        .collect();
    for k in 0..vectors {
        model.reset()?;
        for (port, values) in inputs {
            model.set(port, values[k].clone())?;
        }
        model.cycle(cycles)?;
        for (slot, port) in outputs.iter_mut().zip(&out_ports) {
            slot.1.push(model.get(port)?);
        }
    }
    Ok(outputs)
}

/// Validates that every port in a batch carries the same number of
/// vectors and returns that count.
///
/// # Errors
///
/// Returns [`CosimError::Wiring`] on a length mismatch.
pub fn batch_vector_count(inputs: &[(String, Vec<LogicVec>)]) -> Result<usize, CosimError> {
    let count = inputs.first().map_or(0, |(_, v)| v.len());
    for (port, values) in inputs {
        if values.len() != count {
            return Err(CosimError::Wiring {
                reason: format!(
                    "batch input {port} carries {} vectors, expected {count}",
                    values.len()
                ),
            });
        }
    }
    Ok(count)
}

impl std::fmt::Debug for dyn SimModel + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("<sim model>")
    }
}

/// A model backed by a local [`Simulator`] — the applet-local case the
/// paper advocates (no network between events).
#[derive(Debug, Clone)]
pub struct LocalSimModel {
    simulator: Simulator,
    sweep: Option<VectorSweep>,
}

impl LocalSimModel {
    /// Compiles a circuit into a local model. The circuit is also
    /// compiled for lane-parallel batch runs, so
    /// [`SimModel::run_batch`] uses the bit-parallel engine.
    ///
    /// # Errors
    ///
    /// Propagates simulator compile errors.
    pub fn new(circuit: &Circuit) -> Result<Self, CosimError> {
        Ok(LocalSimModel {
            simulator: Simulator::new(circuit)?,
            sweep: Some(VectorSweep::new(circuit)?),
        })
    }

    /// Wraps an existing simulator. Batch runs fall back to the serial
    /// path (the compiled circuit is not available for lane packing).
    #[must_use]
    pub fn from_simulator(simulator: Simulator) -> Self {
        LocalSimModel {
            simulator,
            sweep: None,
        }
    }

    /// Access to the underlying simulator (e.g. for waveforms).
    #[must_use]
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.simulator
    }
}

impl SimModel for LocalSimModel {
    fn interface(&mut self) -> Result<Vec<(String, PortDir, u32)>, CosimError> {
        Ok(self.simulator.ports())
    }

    fn set(&mut self, port: &str, value: LogicVec) -> Result<(), CosimError> {
        self.simulator.set(port, value)?;
        Ok(())
    }

    fn cycle(&mut self, n: u32) -> Result<(), CosimError> {
        self.simulator.cycle(u64::from(n))?;
        Ok(())
    }

    fn reset(&mut self) -> Result<(), CosimError> {
        self.simulator.reset();
        Ok(())
    }

    fn get(&mut self, port: &str) -> Result<LogicVec, CosimError> {
        Ok(self.simulator.peek(port)?)
    }

    fn run_batch(
        &mut self,
        cycles: u32,
        inputs: &[(String, Vec<LogicVec>)],
    ) -> Result<Vec<(String, Vec<LogicVec>)>, CosimError> {
        let Some(sweep) = self.sweep.clone() else {
            return run_batch_serial(self, cycles, inputs);
        };
        let vectors = batch_vector_count(inputs)?;
        let stimuli: Vec<Vec<(String, LogicVec)>> = (0..vectors)
            .map(|k| {
                inputs
                    .iter()
                    .map(|(port, values)| (port.clone(), values[k].clone()))
                    .collect()
            })
            .collect();
        let report = sweep.cycles(u64::from(cycles)).run(&stimuli)?;
        // Transpose per-vector output rows into per-port columns.
        let mut outputs: Vec<(String, Vec<LogicVec>)> = self
            .simulator
            .ports()
            .into_iter()
            .filter(|(_, dir, _)| *dir == PortDir::Output)
            .map(|(name, _, _)| (name, Vec::with_capacity(vectors)))
            .collect();
        for row in report.outputs {
            for (port, value) in row {
                if let Some(slot) = outputs.iter_mut().find(|(name, _)| *name == port) {
                    slot.1.push(value);
                }
            }
        }
        Ok(outputs)
    }
}

/// A behavioral stand-in defined by a closure over its input history —
/// the "behavioral models of non-FPGA circuitry" JHDL supports (§2.3).
pub struct BehavioralModel<F>
where
    F: FnMut(&[(String, LogicVec)]) -> Vec<(String, LogicVec)>,
{
    ports: Vec<(String, PortDir, u32)>,
    inputs: Vec<(String, LogicVec)>,
    outputs: Vec<(String, LogicVec)>,
    step: F,
}

impl<F> std::fmt::Debug for BehavioralModel<F>
where
    F: FnMut(&[(String, LogicVec)]) -> Vec<(String, LogicVec)>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BehavioralModel")
            .field("ports", &self.ports.len())
            .finish()
    }
}

impl<F> BehavioralModel<F>
where
    F: FnMut(&[(String, LogicVec)]) -> Vec<(String, LogicVec)>,
{
    /// A behavioral model with the given interface; `step` maps the
    /// current inputs to the next outputs, called once per cycle.
    #[must_use]
    pub fn new(ports: Vec<(String, PortDir, u32)>, step: F) -> Self {
        let inputs = ports
            .iter()
            .filter(|(_, d, _)| *d == PortDir::Input)
            .map(|(n, _, w)| (n.clone(), LogicVec::unknown(*w as usize)))
            .collect();
        let outputs = ports
            .iter()
            .filter(|(_, d, _)| *d == PortDir::Output)
            .map(|(n, _, w)| (n.clone(), LogicVec::unknown(*w as usize)))
            .collect();
        BehavioralModel {
            ports,
            inputs,
            outputs,
            step,
        }
    }
}

impl<F> SimModel for BehavioralModel<F>
where
    F: FnMut(&[(String, LogicVec)]) -> Vec<(String, LogicVec)>,
{
    fn interface(&mut self) -> Result<Vec<(String, PortDir, u32)>, CosimError> {
        Ok(self.ports.clone())
    }

    fn set(&mut self, port: &str, value: LogicVec) -> Result<(), CosimError> {
        match self.inputs.iter_mut().find(|(n, _)| n == port) {
            Some(slot) => {
                slot.1 = value;
                Ok(())
            }
            None => Err(CosimError::UnknownPort {
                port: port.to_owned(),
            }),
        }
    }

    fn cycle(&mut self, n: u32) -> Result<(), CosimError> {
        for _ in 0..n {
            let next = (self.step)(&self.inputs);
            for (name, value) in next {
                if let Some(slot) = self.outputs.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = value;
                }
            }
        }
        Ok(())
    }

    fn reset(&mut self) -> Result<(), CosimError> {
        for (_, v) in &mut self.outputs {
            *v = LogicVec::unknown(v.width());
        }
        Ok(())
    }

    fn get(&mut self, port: &str) -> Result<LogicVec, CosimError> {
        if let Some((_, v)) = self.outputs.iter().find(|(n, _)| n == port) {
            return Ok(v.clone());
        }
        if let Some((_, v)) = self.inputs.iter().find(|(n, _)| n == port) {
            return Ok(v.clone());
        }
        Err(CosimError::UnknownPort {
            port: port.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    #[test]
    fn local_model_wraps_simulator() {
        let mut c = Circuit::new("inv");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, y).unwrap();
        let mut model = LocalSimModel::new(&c).unwrap();
        assert_eq!(model.interface().unwrap().len(), 2);
        model.set("a", LogicVec::from_u64(1, 1)).unwrap();
        assert_eq!(model.get("y").unwrap().to_u64(), Some(0));
    }

    fn xor_adder() -> Circuit {
        let mut c = Circuit::new("xa");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
        let s = ctx.add_port(PortSpec::output("s", 1)).unwrap();
        let co = ctx.add_port(PortSpec::output("co", 1)).unwrap();
        ctx.xor2(a, b, s).unwrap();
        ctx.and2(a, b, co).unwrap();
        c
    }

    #[test]
    fn batched_run_matches_serial_fallback() {
        let circuit = xor_adder();
        let inputs: Vec<(String, Vec<LogicVec>)> = vec![
            (
                "a".into(),
                (0..70u64).map(|k| LogicVec::from_u64(k & 1, 1)).collect(),
            ),
            (
                "b".into(),
                (0..70u64)
                    .map(|k| LogicVec::from_u64((k >> 1) & 1, 1))
                    .collect(),
            ),
        ];
        // Lane-parallel path (LocalSimModel::new).
        let mut fast = LocalSimModel::new(&circuit).unwrap();
        let fast_out = fast.run_batch(0, &inputs).unwrap();
        // Serial fallback path (from_simulator has no compiled batch).
        let mut slow = LocalSimModel::from_simulator(Simulator::new(&circuit).unwrap());
        let slow_out = slow.run_batch(0, &inputs).unwrap();
        assert_eq!(fast_out, slow_out);
        assert_eq!(fast_out.len(), 2);
        for (port, values) in &fast_out {
            assert_eq!(values.len(), 70, "port {port}");
        }
        let s = &fast_out.iter().find(|(p, _)| p == "s").unwrap().1;
        assert_eq!(s[1].to_u64(), Some(1)); // 1 xor 0
        assert_eq!(s[3].to_u64(), Some(0)); // 1 xor 1
    }

    #[test]
    fn batched_run_rejects_ragged_inputs() {
        let mut model = LocalSimModel::new(&xor_adder()).unwrap();
        let ragged = vec![
            ("a".into(), vec![LogicVec::zeros(1); 3]),
            ("b".into(), vec![LogicVec::zeros(1); 2]),
        ];
        assert!(matches!(
            model.run_batch(0, &ragged),
            Err(CosimError::Wiring { .. })
        ));
        // Empty batches are fine: per-port empty columns.
        let out = model.run_batch(0, &[]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(_, v)| v.is_empty()));
    }

    #[test]
    fn behavioral_model_steps() {
        let mut counter = 0u64;
        let mut model = BehavioralModel::new(
            vec![
                ("en".into(), PortDir::Input, 1),
                ("count".into(), PortDir::Output, 8),
            ],
            move |inputs| {
                let en = inputs[0].1.to_u64().unwrap_or(0);
                counter += en;
                vec![("count".into(), LogicVec::from_u64(counter, 8))]
            },
        );
        model.set("en", LogicVec::from_u64(1, 1)).unwrap();
        model.cycle(3).unwrap();
        assert_eq!(model.get("count").unwrap().to_u64(), Some(3));
        assert!(model.set("nope", LogicVec::zeros(1)).is_err());
        assert!(model.get("nope").is_err());
    }
}
