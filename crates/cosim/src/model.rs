//! The port-level simulation-model abstraction.
//!
//! A black-box applet exposes *only* this interface: drive inputs,
//! cycle, read outputs. Local circuits, remote applets and behavioral
//! stand-ins all implement it, so a system simulation can mix them
//! freely (the paper's Figure 4).

use ipd_hdl::{Circuit, LogicVec, PortDir};
use ipd_sim::Simulator;

use crate::error::CosimError;

/// A port-level simulation model.
pub trait SimModel {
    /// The model's port interface: `(name, dir, width)`.
    fn interface(&mut self) -> Result<Vec<(String, PortDir, u32)>, CosimError>;

    /// Drives an input port.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports or transport failures.
    fn set(&mut self, port: &str, value: LogicVec) -> Result<(), CosimError>;

    /// Advances the model by `n` clock cycles.
    ///
    /// # Errors
    ///
    /// Propagates simulation or transport failures.
    fn cycle(&mut self, n: u32) -> Result<(), CosimError>;

    /// Resets the model to power-on state.
    ///
    /// # Errors
    ///
    /// Propagates simulation or transport failures.
    fn reset(&mut self) -> Result<(), CosimError>;

    /// Reads a port's current value.
    ///
    /// # Errors
    ///
    /// Fails for unknown ports or transport failures.
    fn get(&mut self, port: &str) -> Result<LogicVec, CosimError>;
}

impl std::fmt::Debug for dyn SimModel + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("<sim model>")
    }
}

/// A model backed by a local [`Simulator`] — the applet-local case the
/// paper advocates (no network between events).
#[derive(Debug, Clone)]
pub struct LocalSimModel {
    simulator: Simulator,
}

impl LocalSimModel {
    /// Compiles a circuit into a local model.
    ///
    /// # Errors
    ///
    /// Propagates simulator compile errors.
    pub fn new(circuit: &Circuit) -> Result<Self, CosimError> {
        Ok(LocalSimModel {
            simulator: Simulator::new(circuit)?,
        })
    }

    /// Wraps an existing simulator.
    #[must_use]
    pub fn from_simulator(simulator: Simulator) -> Self {
        LocalSimModel { simulator }
    }

    /// Access to the underlying simulator (e.g. for waveforms).
    #[must_use]
    pub fn simulator_mut(&mut self) -> &mut Simulator {
        &mut self.simulator
    }
}

impl SimModel for LocalSimModel {
    fn interface(&mut self) -> Result<Vec<(String, PortDir, u32)>, CosimError> {
        Ok(self.simulator.ports())
    }

    fn set(&mut self, port: &str, value: LogicVec) -> Result<(), CosimError> {
        self.simulator.set(port, value)?;
        Ok(())
    }

    fn cycle(&mut self, n: u32) -> Result<(), CosimError> {
        self.simulator.cycle(u64::from(n))?;
        Ok(())
    }

    fn reset(&mut self) -> Result<(), CosimError> {
        self.simulator.reset();
        Ok(())
    }

    fn get(&mut self, port: &str) -> Result<LogicVec, CosimError> {
        Ok(self.simulator.peek(port)?)
    }
}

/// A behavioral stand-in defined by a closure over its input history —
/// the "behavioral models of non-FPGA circuitry" JHDL supports (§2.3).
pub struct BehavioralModel<F>
where
    F: FnMut(&[(String, LogicVec)]) -> Vec<(String, LogicVec)>,
{
    ports: Vec<(String, PortDir, u32)>,
    inputs: Vec<(String, LogicVec)>,
    outputs: Vec<(String, LogicVec)>,
    step: F,
}

impl<F> std::fmt::Debug for BehavioralModel<F>
where
    F: FnMut(&[(String, LogicVec)]) -> Vec<(String, LogicVec)>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BehavioralModel")
            .field("ports", &self.ports.len())
            .finish()
    }
}

impl<F> BehavioralModel<F>
where
    F: FnMut(&[(String, LogicVec)]) -> Vec<(String, LogicVec)>,
{
    /// A behavioral model with the given interface; `step` maps the
    /// current inputs to the next outputs, called once per cycle.
    #[must_use]
    pub fn new(ports: Vec<(String, PortDir, u32)>, step: F) -> Self {
        let inputs = ports
            .iter()
            .filter(|(_, d, _)| *d == PortDir::Input)
            .map(|(n, _, w)| (n.clone(), LogicVec::unknown(*w as usize)))
            .collect();
        let outputs = ports
            .iter()
            .filter(|(_, d, _)| *d == PortDir::Output)
            .map(|(n, _, w)| (n.clone(), LogicVec::unknown(*w as usize)))
            .collect();
        BehavioralModel {
            ports,
            inputs,
            outputs,
            step,
        }
    }
}

impl<F> SimModel for BehavioralModel<F>
where
    F: FnMut(&[(String, LogicVec)]) -> Vec<(String, LogicVec)>,
{
    fn interface(&mut self) -> Result<Vec<(String, PortDir, u32)>, CosimError> {
        Ok(self.ports.clone())
    }

    fn set(&mut self, port: &str, value: LogicVec) -> Result<(), CosimError> {
        match self.inputs.iter_mut().find(|(n, _)| n == port) {
            Some(slot) => {
                slot.1 = value;
                Ok(())
            }
            None => Err(CosimError::UnknownPort {
                port: port.to_owned(),
            }),
        }
    }

    fn cycle(&mut self, n: u32) -> Result<(), CosimError> {
        for _ in 0..n {
            let next = (self.step)(&self.inputs);
            for (name, value) in next {
                if let Some(slot) = self.outputs.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = value;
                }
            }
        }
        Ok(())
    }

    fn reset(&mut self) -> Result<(), CosimError> {
        for (_, v) in &mut self.outputs {
            *v = LogicVec::unknown(v.width());
        }
        Ok(())
    }

    fn get(&mut self, port: &str) -> Result<LogicVec, CosimError> {
        if let Some((_, v)) = self.outputs.iter().find(|(n, _)| n == port) {
            return Ok(v.clone());
        }
        if let Some((_, v)) = self.inputs.iter().find(|(n, _)| n == port) {
            return Ok(v.clone());
        }
        Err(CosimError::UnknownPort {
            port: port.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::PortSpec;
    use ipd_techlib::LogicCtx;

    #[test]
    fn local_model_wraps_simulator() {
        let mut c = Circuit::new("inv");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, y).unwrap();
        let mut model = LocalSimModel::new(&c).unwrap();
        assert_eq!(model.interface().unwrap().len(), 2);
        model.set("a", LogicVec::from_u64(1, 1)).unwrap();
        assert_eq!(model.get("y").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn behavioral_model_steps() {
        let mut counter = 0u64;
        let mut model = BehavioralModel::new(
            vec![
                ("en".into(), PortDir::Input, 1),
                ("count".into(), PortDir::Output, 8),
            ],
            move |inputs| {
                let en = inputs[0].1.to_u64().unwrap_or(0);
                counter += en;
                vec![("count".into(), LogicVec::from_u64(counter, 8))]
            },
        );
        model.set("en", LogicVec::from_u64(1, 1)).unwrap();
        model.cycle(3).unwrap();
        assert_eq!(model.get("count").unwrap().to_u64(), Some(3));
        assert!(model.set("nope", LogicVec::zeros(1)).is_err());
        assert!(model.get("nope").is_err());
    }
}
