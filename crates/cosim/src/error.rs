//! Co-simulation errors.

use std::fmt;

/// Errors raised by the co-simulation protocol, clients and servers.
#[derive(Debug)]
#[non_exhaustive]
pub enum CosimError {
    /// Malformed protocol bytes.
    Protocol {
        /// What was wrong.
        reason: String,
    },
    /// Socket or pipe failure.
    Io(std::io::Error),
    /// The remote side reported an error.
    Remote {
        /// The remote error message.
        message: String,
    },
    /// An operation referenced an unknown model or port.
    UnknownPort {
        /// The port name.
        port: String,
    },
    /// The underlying simulation failed.
    Sim(ipd_sim::SimError),
    /// The delivery layer refused the operation (capability or
    /// network permission).
    Core(ipd_core::CoreError),
    /// A system-simulation wiring error.
    Wiring {
        /// Description of the mismatch.
        reason: String,
    },
    /// A transport-layer failure (handshake refusal, deadline,
    /// shutdown) that has no more specific mapping.
    Wire(ipd_wire::WireError),
}

impl fmt::Display for CosimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CosimError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            CosimError::Io(e) => write!(f, "i/o error: {e}"),
            CosimError::Remote { message } => write!(f, "remote error: {message}"),
            CosimError::UnknownPort { port } => write!(f, "unknown port {port}"),
            CosimError::Sim(e) => write!(f, "simulation error: {e}"),
            CosimError::Core(e) => write!(f, "delivery error: {e}"),
            CosimError::Wiring { reason } => write!(f, "wiring error: {reason}"),
            CosimError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for CosimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CosimError::Io(e) => Some(e),
            CosimError::Sim(e) => Some(e),
            CosimError::Core(e) => Some(e),
            CosimError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CosimError {
    fn from(e: std::io::Error) -> Self {
        CosimError::Io(e)
    }
}

impl From<ipd_sim::SimError> for CosimError {
    fn from(e: ipd_sim::SimError) -> Self {
        CosimError::Sim(e)
    }
}

impl From<ipd_core::CoreError> for CosimError {
    fn from(e: ipd_core::CoreError) -> Self {
        CosimError::Core(e)
    }
}

impl From<ipd_wire::WireError> for CosimError {
    fn from(e: ipd_wire::WireError) -> Self {
        use ipd_wire::{ErrorCode, WireError};
        match e {
            WireError::Io(io) => CosimError::Io(io),
            WireError::Protocol { reason } => CosimError::Protocol { reason },
            // Typed application error frames are the wire form of the
            // protocol's `Message::Error`.
            WireError::Remote {
                code: ErrorCode::App,
                message,
            } => CosimError::Remote { message },
            other => CosimError::Wire(other),
        }
    }
}
