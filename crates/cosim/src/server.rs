//! The black-box applet server: exposes a protected circuit's
//! port-level simulation over a socket.
//!
//! This is the applet side of the paper's Figure 4. Creating a server
//! requires the applet host's *network permission* — "establishing
//! network connections … violates the default applet security model
//! and requires explicit permission from the user" (§4.2, footnote 1).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;

use ipd_core::AppletHost;

use crate::error::CosimError;
use crate::model::SimModel;
use crate::protocol::{read_frame, write_frame, Message};

/// A socket server wrapping one port-level simulation model.
#[derive(Debug)]
pub struct BlackBoxServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl BlackBoxServer {
    /// Binds a server on a loopback port, after checking the applet
    /// host's network permission.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Core`] when the user has not granted
    /// network permission, or an I/O error when binding fails.
    pub fn bind(host: &AppletHost) -> Result<Self, CosimError> {
        host.check_network()?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        Ok(BlackBoxServer { listener, addr })
    }

    /// The bound address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves exactly one client session on the current thread,
    /// consuming the server.
    ///
    /// # Errors
    ///
    /// Propagates accept/transport failures. A client `Bye` (or
    /// disconnect) ends the session normally.
    pub fn serve_one<M: SimModel>(self, mut model: M) -> Result<(), CosimError> {
        let (stream, _) = self.listener.accept()?;
        serve_stream(stream, &mut model)
    }

    /// Spawns a thread serving one client session.
    #[must_use]
    pub fn spawn<M: SimModel + Send + 'static>(
        self,
        model: M,
    ) -> JoinHandle<Result<(), CosimError>> {
        std::thread::spawn(move || self.serve_one(model))
    }
}

/// Runs the protocol loop over one connection.
fn serve_stream<M: SimModel>(stream: TcpStream, model: &mut M) -> Result<(), CosimError> {
    let mut reader = std::io::BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let request = match read_frame(&mut reader) {
            Ok(msg) => msg,
            // Disconnect ends the session.
            Err(CosimError::Io(_)) => return Ok(()),
            Err(e) => return Err(e),
        };
        let response = handle(model, &request);
        let stop = matches!(request, Message::Bye);
        write_frame(&mut writer, &response)?;
        if stop {
            return Ok(());
        }
    }
}

/// Computes the response to one request; model errors become
/// [`Message::Error`] so the session survives bad requests.
pub(crate) fn handle<M: SimModel>(model: &mut M, request: &Message) -> Message {
    let outcome = match request {
        Message::Hello | Message::GetInterface => model.interface().map(Message::Interface),
        Message::SetInput { port, value } => model.set(port, value.clone()).map(|()| Message::Ok),
        Message::Cycle { n } => model.cycle(*n).map(|()| Message::Ok),
        Message::Reset => model.reset().map(|()| Message::Ok),
        Message::GetOutput { port } => model.get(port).map(|value| Message::Value {
            port: port.clone(),
            value,
        }),
        Message::BatchRun { cycles, inputs } => model
            .run_batch(*cycles, inputs)
            .map(|outputs| Message::BatchResult { outputs }),
        Message::Bye => Ok(Message::Ok),
        other => Err(CosimError::Protocol {
            reason: format!("unexpected client message {other:?}"),
        }),
    };
    match outcome {
        Ok(msg) => msg,
        Err(e) => Message::Error {
            message: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LocalSimModel;
    use ipd_hdl::{Circuit, LogicVec, PortSpec};
    use ipd_techlib::LogicCtx;

    fn inverter_model() -> LocalSimModel {
        let mut c = Circuit::new("inv");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, y).unwrap();
        LocalSimModel::new(&c).unwrap()
    }

    #[test]
    fn binding_requires_network_permission() {
        let host = AppletHost::new();
        assert!(matches!(
            BlackBoxServer::bind(&host),
            Err(CosimError::Core(_))
        ));
        let mut host = AppletHost::new();
        host.grant_network_permission();
        BlackBoxServer::bind(&host).expect("bind with permission");
    }

    #[test]
    fn handle_translates_errors_to_messages() {
        let mut model = inverter_model();
        let resp = handle(&mut model, &Message::GetOutput { port: "zzz".into() });
        assert!(matches!(resp, Message::Error { .. }));
        let resp = handle(
            &mut model,
            &Message::SetInput {
                port: "a".into(),
                value: LogicVec::from_u64(1, 1),
            },
        );
        assert_eq!(resp, Message::Ok);
        let resp = handle(&mut model, &Message::GetOutput { port: "y".into() });
        assert_eq!(
            resp,
            Message::Value {
                port: "y".into(),
                value: LogicVec::from_u64(0, 1)
            }
        );
    }

    #[test]
    fn unexpected_messages_are_protocol_errors() {
        let mut model = inverter_model();
        let resp = handle(&mut model, &Message::Ok);
        assert!(matches!(resp, Message::Error { .. }));
    }
}
