//! The black-box applet server: exposes a protected circuit's
//! port-level simulation over a socket.
//!
//! This is the applet side of the paper's Figure 4, rebuilt on the
//! shared `ipd-wire` transport. Creating a server requires the applet
//! host's *network permission* — "establishing network connections …
//! violates the default applet security model and requires explicit
//! permission from the user" (§4.2, footnote 1).
//!
//! A started server ([`BlackBoxServer::start`]) serves many customers
//! concurrently — thread-per-session or on the wire layer's
//! readiness-driven event loop, whichever
//! [`ipd_wire::ServerMode`] the [`WireConfig`] selects (the
//! `IPD_WIRE_MODE` environment variable picks the default) — each
//! against its own model from the factory;
//! [`RunningBlackBox::shutdown`] stops it gracefully.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ipd_core::AppletHost;
use ipd_wire::{
    Reply, ServerHandle, WireConfig, WireError, WireServer, WireService, WireSession, WireStats,
};

use crate::error::CosimError;
use crate::model::SimModel;
use crate::protocol::{endpoint_name, Message};

/// A socket server wrapping port-level simulation models.
#[derive(Debug)]
pub struct BlackBoxServer {
    server: WireServer,
}

impl BlackBoxServer {
    /// Binds a server on a loopback port with default wire settings,
    /// after checking the applet host's network permission.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Core`] when the user has not granted
    /// network permission, or an I/O error when binding fails.
    pub fn bind(host: &AppletHost) -> Result<Self, CosimError> {
        Self::bind_with(host, WireConfig::default())
    }

    /// Binds with explicit wire settings (frame cap, session cap,
    /// deadlines).
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Core`] when the user has not granted
    /// network permission, or an I/O error when binding fails.
    pub fn bind_with(host: &AppletHost, config: WireConfig) -> Result<Self, CosimError> {
        host.check_network()?;
        Ok(BlackBoxServer {
            server: WireServer::bind(config)?,
        })
    }

    /// The bound address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The per-endpoint traffic counters (shared with the running
    /// server).
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        self.server.stats()
    }

    /// Serves exactly one client session on the current thread; the
    /// server stays usable afterwards.
    ///
    /// # Errors
    ///
    /// Propagates accept/transport failures. A client `Bye` (or
    /// disconnect) ends the session normally.
    pub fn serve_once<M: SimModel + Send + 'static>(&self, model: M) -> Result<(), CosimError> {
        let service = OneShotService {
            model: Mutex::new(Some(model)),
        };
        self.server.serve_next(&service)?;
        Ok(())
    }

    /// Serves exactly one client session, consuming the server.
    ///
    /// # Errors
    ///
    /// Propagates accept/transport failures.
    #[deprecated(
        since = "0.2.0",
        note = "use `serve_once` (non-consuming) or `start` (concurrent multi-session)"
    )]
    pub fn serve_one<M: SimModel + Send + 'static>(self, model: M) -> Result<(), CosimError> {
        self.serve_once(model)
    }

    /// Spawns a thread serving one client session.
    #[must_use]
    pub fn spawn<M: SimModel + Send + 'static>(
        self,
        model: M,
    ) -> JoinHandle<Result<(), CosimError>> {
        std::thread::spawn(move || self.serve_once(model))
    }

    /// Starts the concurrent accept loop: every connecting customer
    /// gets its own session thread and its own model from `factory`.
    #[must_use]
    pub fn start<F>(self, factory: F) -> RunningBlackBox
    where
        F: Fn() -> Result<Box<dyn SimModel + Send>, CosimError> + Send + Sync + 'static,
    {
        let service = CosimService {
            factory: Box::new(factory),
        };
        RunningBlackBox {
            handle: self.server.start(Arc::new(service)),
        }
    }

    /// [`BlackBoxServer::start`] for clonable models: each session
    /// simulates its own copy.
    #[must_use]
    pub fn start_cloning<M: SimModel + Clone + Send + 'static>(self, model: M) -> RunningBlackBox {
        // The prototype sits behind a mutex so `M` needs only `Send`,
        // not `Sync`; sessions clone it on open, then run lock-free.
        let prototype = Mutex::new(model);
        self.start(move || {
            let model = prototype.lock().expect("prototype lock").clone();
            Ok(Box::new(model) as Box<dyn SimModel + Send>)
        })
    }
}

/// Control handle for a started black-box server.
#[derive(Debug)]
pub struct RunningBlackBox {
    handle: ServerHandle,
}

impl RunningBlackBox {
    /// The bound address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.handle.addr()
    }

    /// The per-endpoint traffic counters.
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        self.handle.stats()
    }

    /// Currently connected customer sessions.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.handle.active_sessions()
    }

    /// A formatted per-endpoint traffic report.
    #[must_use]
    pub fn traffic_report(&self) -> String {
        self.handle.stats().report(|e| endpoint_name(e).to_owned())
    }

    /// Stops accepting, interrupts live sessions, joins all threads.
    ///
    /// # Errors
    ///
    /// Propagates shutdown failures from the wire layer.
    pub fn shutdown(self) -> Result<(), CosimError> {
        self.handle.shutdown()?;
        Ok(())
    }
}

/// Multi-session service: one fresh model per connection.
struct CosimService {
    #[allow(clippy::type_complexity)]
    factory: Box<dyn Fn() -> Result<Box<dyn SimModel + Send>, CosimError> + Send + Sync>,
}

impl WireService for CosimService {
    fn open_session(
        &self,
        _peer: SocketAddr,
        _token: Option<&str>,
    ) -> Result<Box<dyn WireSession>, WireError> {
        let model = (self.factory)().map_err(|e| WireError::app(e.to_string()))?;
        Ok(Box::new(CosimSession { model }))
    }

    fn endpoint_name(&self, endpoint: u16) -> String {
        endpoint_name(endpoint).to_owned()
    }
}

/// Single-session service for `serve_once`: hands its model to the
/// first connection.
struct OneShotService<M: SimModel + Send> {
    model: Mutex<Option<M>>,
}

impl<M: SimModel + Send + 'static> WireService for OneShotService<M> {
    fn open_session(
        &self,
        _peer: SocketAddr,
        _token: Option<&str>,
    ) -> Result<Box<dyn WireSession>, WireError> {
        let model = self
            .model
            .lock()
            .expect("one-shot model lock")
            .take()
            .ok_or_else(|| WireError::app("model already claimed by another session"))?;
        Ok(Box::new(CosimSession {
            model: Box::new(model),
        }))
    }

    fn endpoint_name(&self, endpoint: u16) -> String {
        endpoint_name(endpoint).to_owned()
    }
}

/// One customer's protocol session against its own model.
struct CosimSession {
    model: Box<dyn SimModel + Send>,
}

impl WireSession for CosimSession {
    fn handle(&mut self, endpoint: u16, body: &[u8]) -> Result<Reply, WireError> {
        let request = Message::decode(body).map_err(|e| WireError::protocol(e.to_string()))?;
        if request.wire_endpoint() != endpoint {
            return Err(WireError::protocol(format!(
                "endpoint {endpoint} does not match message tag {}",
                request.wire_endpoint()
            )));
        }
        let stop = matches!(request, Message::Bye);
        let response = handle(self.model.as_mut(), &request);
        // Model failures travel as typed error frames; the session
        // survives them.
        if let Message::Error { message } = response {
            return Err(WireError::app(message));
        }
        let body = response.encode();
        Ok(if stop {
            Reply::end(body)
        } else {
            Reply::body(body)
        })
    }
}

/// Computes the response to one request; model errors become
/// [`Message::Error`] so the session survives bad requests.
pub(crate) fn handle<M: SimModel + ?Sized>(model: &mut M, request: &Message) -> Message {
    let outcome = match request {
        Message::Hello | Message::GetInterface => model.interface().map(Message::Interface),
        Message::SetInput { port, value } => model.set(port, value.clone()).map(|()| Message::Ok),
        Message::Cycle { n } => model.cycle(*n).map(|()| Message::Ok),
        Message::Reset => model.reset().map(|()| Message::Ok),
        Message::GetOutput { port } => model.get(port).map(|value| Message::Value {
            port: port.clone(),
            value,
        }),
        Message::BatchRun { cycles, inputs } => model
            .run_batch(*cycles, inputs)
            .map(|outputs| Message::BatchResult { outputs }),
        Message::Bye => Ok(Message::Ok),
        other => Err(CosimError::Protocol {
            reason: format!("unexpected client message {other:?}"),
        }),
    };
    match outcome {
        Ok(msg) => msg,
        Err(e) => Message::Error {
            message: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LocalSimModel;
    use ipd_hdl::{Circuit, LogicVec, PortSpec};
    use ipd_techlib::LogicCtx;

    fn inverter_model() -> LocalSimModel {
        let mut c = Circuit::new("inv");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.inv(a, y).unwrap();
        LocalSimModel::new(&c).unwrap()
    }

    #[test]
    fn binding_requires_network_permission() {
        let host = AppletHost::new();
        assert!(matches!(
            BlackBoxServer::bind(&host),
            Err(CosimError::Core(_))
        ));
        let mut host = AppletHost::new();
        host.grant_network_permission();
        BlackBoxServer::bind(&host).expect("bind with permission");
    }

    #[test]
    fn handle_translates_errors_to_messages() {
        let mut model = inverter_model();
        let resp = handle(&mut model, &Message::GetOutput { port: "zzz".into() });
        assert!(matches!(resp, Message::Error { .. }));
        let resp = handle(
            &mut model,
            &Message::SetInput {
                port: "a".into(),
                value: LogicVec::from_u64(1, 1),
            },
        );
        assert_eq!(resp, Message::Ok);
        let resp = handle(&mut model, &Message::GetOutput { port: "y".into() });
        assert_eq!(
            resp,
            Message::Value {
                port: "y".into(),
                value: LogicVec::from_u64(0, 1)
            }
        );
    }

    #[test]
    fn handle_works_through_dyn_models() {
        let mut model: Box<dyn SimModel + Send> = Box::new(inverter_model());
        let resp = handle(model.as_mut(), &Message::GetInterface);
        assert!(matches!(resp, Message::Interface(_)));
    }

    #[test]
    fn unexpected_messages_are_protocol_errors() {
        let mut model = inverter_model();
        let resp = handle(&mut model, &Message::Ok);
        assert!(matches!(resp, Message::Error { .. }));
    }

    #[test]
    fn deprecated_serve_one_still_serves() {
        let mut host = AppletHost::new();
        host.grant_network_permission();
        let server = BlackBoxServer::bind(&host).unwrap();
        let addr = server.addr();
        let worker = std::thread::spawn(move || {
            #[allow(deprecated)]
            server.serve_one(inverter_model())
        });
        let mut client = crate::BlackBoxClient::connect(addr).unwrap();
        client.set("a", LogicVec::from_u64(0, 1)).unwrap();
        assert_eq!(client.get("y").unwrap().to_u64(), Some(1));
        client.close().unwrap();
        worker.join().expect("no panic").expect("server ok");
    }
}
