//! The customer-side system simulator that stitches black-box applets
//! and local components together (the paper's Figure 4).

use ipd_hdl::{LogicVec, PortDir};

use crate::error::CosimError;
use crate::model::SimModel;

/// Identifies a model inside a [`SystemSimulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelId(usize);

/// A synchronous system simulation over port-level models.
///
/// Each step transfers every connection's source value to its sink,
/// then clocks every model once — the cycle-accurate dataflow
/// semantics of the paper's "entire system … simulated together
/// without exposing the internals of the applet-based IP".
///
/// # Examples
///
/// ```
/// use ipd_cosim::{BehavioralModel, SystemSimulator};
/// use ipd_hdl::{LogicVec, PortDir};
///
/// # fn main() -> Result<(), ipd_cosim::CosimError> {
/// let mut system = SystemSimulator::new();
/// let source = system.add_model(
///     "source",
///     Box::new(BehavioralModel::new(
///         vec![("q".into(), PortDir::Output, 4)],
///         |_| vec![("q".into(), LogicVec::from_u64(7, 4))],
///     )),
/// );
/// let sink = system.add_model(
///     "sink",
///     Box::new(BehavioralModel::new(
///         vec![("d".into(), PortDir::Input, 4), ("o".into(), PortDir::Output, 4)],
///         |inputs| vec![("o".into(), inputs[0].1.clone())],
///     )),
/// );
/// system.connect(source, "q", sink, "d")?;
/// system.step(2)?;
/// assert_eq!(system.probe(sink, "o")?.to_u64(), Some(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SystemSimulator {
    models: Vec<(String, Box<dyn SimModel + Send>)>,
    connections: Vec<Connection>,
    steps: u64,
}

#[derive(Debug, Clone)]
struct Connection {
    src: usize,
    src_port: String,
    dst: usize,
    dst_port: String,
}

impl SystemSimulator {
    /// An empty system.
    #[must_use]
    pub fn new() -> Self {
        SystemSimulator::default()
    }

    /// Adds a model under a name and returns its id.
    pub fn add_model(
        &mut self,
        name: impl Into<String>,
        model: Box<dyn SimModel + Send>,
    ) -> ModelId {
        self.models.push((name.into(), model));
        ModelId(self.models.len() - 1)
    }

    /// Connects `src`'s output port to `dst`'s input port, checking
    /// directions and widths against the models' interfaces.
    ///
    /// # Errors
    ///
    /// Returns [`CosimError::Wiring`] on unknown ports, direction or
    /// width mismatches.
    pub fn connect(
        &mut self,
        src: ModelId,
        src_port: &str,
        dst: ModelId,
        dst_port: &str,
    ) -> Result<(), CosimError> {
        let find = |ports: &[(String, PortDir, u32)], name: &str| {
            ports.iter().find(|(n, _, _)| n == name).cloned()
        };
        let src_ports = self.models[src.0].1.interface()?;
        let dst_ports = self.models[dst.0].1.interface()?;
        let Some((_, sdir, swidth)) = find(&src_ports, src_port) else {
            return Err(CosimError::Wiring {
                reason: format!("{} has no port {src_port}", self.models[src.0].0),
            });
        };
        let Some((_, ddir, dwidth)) = find(&dst_ports, dst_port) else {
            return Err(CosimError::Wiring {
                reason: format!("{} has no port {dst_port}", self.models[dst.0].0),
            });
        };
        if sdir != PortDir::Output {
            return Err(CosimError::Wiring {
                reason: format!("{src_port} is not an output"),
            });
        }
        if ddir != PortDir::Input {
            return Err(CosimError::Wiring {
                reason: format!("{dst_port} is not an input"),
            });
        }
        if swidth != dwidth {
            return Err(CosimError::Wiring {
                reason: format!("width mismatch {src_port}[{swidth}] -> {dst_port}[{dwidth}]"),
            });
        }
        self.connections.push(Connection {
            src: src.0,
            src_port: src_port.to_owned(),
            dst: dst.0,
            dst_port: dst_port.to_owned(),
        });
        Ok(())
    }

    /// Drives an external stimulus into a model's input port.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn drive(&mut self, model: ModelId, port: &str, value: LogicVec) -> Result<(), CosimError> {
        self.models[model.0].1.set(port, value)
    }

    /// Reads any model port.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn probe(&mut self, model: ModelId, port: &str) -> Result<LogicVec, CosimError> {
        self.models[model.0].1.get(port)
    }

    /// Advances the whole system by `n` cycles.
    ///
    /// # Errors
    ///
    /// Propagates model and transport failures.
    pub fn step(&mut self, n: u64) -> Result<(), CosimError> {
        for _ in 0..n {
            // Propagate connections from current outputs.
            for c in &self.connections.clone() {
                let value = self.models[c.src].1.get(&c.src_port)?;
                self.models[c.dst].1.set(&c.dst_port, value)?;
            }
            for (_, model) in &mut self.models {
                model.cycle(1)?;
            }
            self.steps += 1;
        }
        Ok(())
    }

    /// Resets every model.
    ///
    /// # Errors
    ///
    /// Propagates model failures.
    pub fn reset(&mut self) -> Result<(), CosimError> {
        for (_, model) in &mut self.models {
            model.reset()?;
        }
        self.steps = 0;
        Ok(())
    }

    /// Total steps simulated.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of models in the system.
    #[must_use]
    pub fn model_count(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BehavioralModel, LocalSimModel};
    use ipd_hdl::{Circuit, PortSpec};
    use ipd_techlib::LogicCtx;

    fn register_circuit() -> Circuit {
        let mut c = Circuit::new("reg");
        let mut ctx = c.root_ctx();
        let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
        let d = ctx.add_port(PortSpec::input("d", 4)).unwrap();
        let q = ctx.add_port(PortSpec::output("q", 4)).unwrap();
        for b in 0..4 {
            ctx.fd(
                clk,
                ipd_hdl::Signal::bit_of(d, b),
                ipd_hdl::Signal::bit_of(q, b),
            )
            .unwrap();
        }
        c
    }

    #[test]
    fn wiring_validation() {
        let mut system = SystemSimulator::new();
        let reg = system.add_model(
            "reg",
            Box::new(LocalSimModel::new(&register_circuit()).unwrap()),
        );
        let src = system.add_model(
            "src",
            Box::new(BehavioralModel::new(
                vec![("q".into(), PortDir::Output, 3)],
                |_| vec![],
            )),
        );
        // Width mismatch 3 -> 4.
        assert!(matches!(
            system.connect(src, "q", reg, "d"),
            Err(CosimError::Wiring { .. })
        ));
        // Unknown port.
        assert!(system.connect(src, "zzz", reg, "d").is_err());
        // Input as source.
        assert!(system.connect(reg, "d", reg, "d").is_err());
    }

    #[test]
    fn pipeline_of_two_registers() {
        let mut system = SystemSimulator::new();
        let r1 = system.add_model(
            "r1",
            Box::new(LocalSimModel::new(&register_circuit()).unwrap()),
        );
        let r2 = system.add_model(
            "r2",
            Box::new(LocalSimModel::new(&register_circuit()).unwrap()),
        );
        system.connect(r1, "q", r2, "d").unwrap();
        system.drive(r1, "d", LogicVec::from_u64(9, 4)).unwrap();
        system.step(1).unwrap();
        assert_eq!(system.probe(r1, "q").unwrap().to_u64(), Some(9));
        system.step(1).unwrap();
        assert_eq!(system.probe(r2, "q").unwrap().to_u64(), Some(9));
        assert_eq!(system.steps(), 2);
        system.reset().unwrap();
        assert_eq!(system.probe(r2, "q").unwrap().to_u64(), Some(0));
    }
}
