//! # ipd-cosim — black-box co-simulation over sockets
//!
//! The paper's §4.2 and Figure 4: a protected IP applet exposes only a
//! *port-level simulation model*, which the customer wires into their
//! system simulation over a socket protocol — evaluating the IP in
//! context without ever seeing its internals. This crate implements
//! that architecture end to end, plus the remote-simulation baselines
//! the paper compares against:
//!
//! - [`Message`] / [`write_frame`] / [`read_frame`] — the protocol's
//!   payload encoding. Framing, size caps, deadlines and the
//!   handshake live in `ipd-wire`, shared with the delivery stack.
//! - [`BlackBoxServer`] — the applet side; binding requires the applet
//!   host's explicit network permission (§4.2 footnote). Started with
//!   [`BlackBoxServer::start`] it serves many customers concurrently
//!   (thread per session, each with its own model) and reports
//!   per-endpoint traffic; [`RunningBlackBox::shutdown`] stops it
//!   gracefully.
//! - [`BlackBoxClient`] over a [`Transport`]: [`TcpTransport`] (real
//!   sockets), [`InProcTransport`] (protocol without a wire) and
//!   [`LatencyTransport`] (injected WAN round-trip time).
//! - [`SimModel`] / [`LocalSimModel`] / [`BehavioralModel`] — the
//!   port-level model abstraction shared by local and remote parts.
//!   [`SimModel::run_batch`] ships a whole stimulus sweep in one
//!   transaction; [`LocalSimModel`] serves it with the lane-parallel
//!   batch engine, and [`BlackBoxClient`] with a single round trip.
//! - [`SystemSimulator`] — the customer's system simulation mixing
//!   several models (Figure 4 shows two applets plus local logic).
//! - [`DeliveryScenario`] / [`Approach`] — cost models quantifying the
//!   applet-versus-remote-simulation claim against Web-CAD \[2\] and
//!   JavaCAD \[1\].
//!
//! # Example
//!
//! In-process black-box evaluation (swap [`InProcTransport`] for
//! [`TcpTransport`] and a [`BlackBoxServer`] for the real socket
//! deployment):
//!
//! ```
//! use ipd_cosim::{BlackBoxClient, InProcTransport, LocalSimModel, SimModel};
//! use ipd_hdl::Circuit;
//! use ipd_modgen::KcmMultiplier;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let kcm = KcmMultiplier::new(-56, 8, 14).signed(true);
//! let circuit = Circuit::from_generator(&kcm)?;
//! let model = LocalSimModel::new(&circuit)?;
//! let mut client = BlackBoxClient::over(InProcTransport::new(model));
//! client.set("multiplicand", ipd_hdl::LogicVec::from_i64(3, 8))?;
//! assert_eq!(client.get("product")?.to_i64(), Some(-168));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod compare;
mod error;
mod model;
mod protocol;
mod server;
mod system;

pub use client::{BlackBoxClient, InProcTransport, LatencyTransport, TcpTransport, Transport};
pub use compare::{measure_local_event_cost, Approach, DeliveryScenario};
pub use error::CosimError;
pub use model::{batch_vector_count, run_batch_serial, BehavioralModel, LocalSimModel, SimModel};
pub use protocol::{endpoint_name, read_frame, write_frame, Message, MAX_FRAME};
pub use server::{BlackBoxServer, RunningBlackBox};
pub use system::{ModelId, SystemSimulator};
