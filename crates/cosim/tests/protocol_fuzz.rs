//! Protocol robustness: arbitrary bytes never panic the decoder, and
//! arbitrary well-formed messages always round-trip — the properties a
//! network-facing applet server needs against hostile clients.

use proptest::prelude::*;

use ipd_cosim::{read_frame, write_frame, Message};
use ipd_hdl::{Logic, LogicVec, PortDir};

fn logic_vec_strategy() -> impl Strategy<Value = LogicVec> {
    proptest::collection::vec(
        prop_oneof![
            Just(Logic::Zero),
            Just(Logic::One),
            Just(Logic::X),
            Just(Logic::Z)
        ],
        0..64,
    )
    .prop_map(LogicVec::from_bits)
}

fn port_dir_strategy() -> impl Strategy<Value = PortDir> {
    prop_oneof![
        Just(PortDir::Input),
        Just(PortDir::Output),
        Just(PortDir::Inout)
    ]
}

fn message_strategy() -> impl Strategy<Value = Message> {
    let name = "[a-z][a-z0-9_]{0,15}";
    prop_oneof![
        Just(Message::Hello),
        Just(Message::GetInterface),
        proptest::collection::vec((name, port_dir_strategy(), 1u32..64), 0..8)
            .prop_map(|ports| Message::Interface(
                ports.into_iter().collect()
            )),
        (name, logic_vec_strategy())
            .prop_map(|(port, value)| Message::SetInput { port, value }),
        (0u32..1_000_000).prop_map(|n| Message::Cycle { n }),
        Just(Message::Reset),
        name.prop_map(|port| Message::GetOutput { port }),
        (name, logic_vec_strategy())
            .prop_map(|(port, value)| Message::Value { port, value }),
        Just(Message::Ok),
        "[ -~]{0,64}".prop_map(|message| Message::Error { message }),
        Just(Message::Bye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes must decode to Ok or Err — never panic.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes);
    }

    /// Arbitrary frames (length prefix + garbage) never panic the
    /// frame reader either.
    #[test]
    fn read_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = read_frame(std::io::Cursor::new(bytes));
    }

    /// Every well-formed message round-trips through encode/decode.
    #[test]
    fn messages_round_trip(msg in message_strategy()) {
        let bytes = msg.encode();
        prop_assert_eq!(Message::decode(&bytes).expect("decode"), msg);
    }

    /// Every well-formed message round-trips through the framing layer.
    #[test]
    fn frames_round_trip(msgs in proptest::collection::vec(message_strategy(), 1..8)) {
        let mut buf = Vec::new();
        for msg in &msgs {
            write_frame(&mut buf, msg).expect("write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in &msgs {
            prop_assert_eq!(&read_frame(&mut cursor).expect("read"), msg);
        }
    }

    /// Truncating a valid encoding anywhere must produce an error, not
    /// a silently different message.
    #[test]
    fn truncation_is_detected(msg in message_strategy(), cut in any::<prop::sample::Index>()) {
        let bytes = msg.encode();
        if bytes.len() > 1 {
            let cut = 1 + cut.index(bytes.len() - 1);
            if cut < bytes.len() {
                match Message::decode(&bytes[..cut]) {
                    Err(_) => {}
                    Ok(decoded) => prop_assert_ne!(
                        decoded, msg,
                        "truncated decode must not equal the original"
                    ),
                }
            }
        }
    }
}
