//! Protocol robustness: arbitrary bytes never panic the decoder, and
//! arbitrary well-formed messages always round-trip — the properties a
//! network-facing applet server needs against hostile clients.
//!
//! Randomized with the in-repo deterministic RNG (`ipd-testutil`), so
//! the suite runs with zero registry dependencies.

use ipd_cosim::{read_frame, write_frame, Message};
use ipd_hdl::{Logic, LogicVec, PortDir};
use ipd_testutil::{check_n, XorShift64};

fn any_logic_vec(rng: &mut XorShift64, max: usize) -> LogicVec {
    let len = rng.index(max);
    (0..len)
        .map(|_| match rng.below(4) {
            0 => Logic::Zero,
            1 => Logic::One,
            2 => Logic::X,
            _ => Logic::Z,
        })
        .collect()
}

fn any_name(rng: &mut XorShift64) -> String {
    let len = 1 + rng.index(16);
    (0..len)
        .map(|i| {
            let alphabet = if i == 0 {
                b"abcdefghijklmnopqrstuvwxyz".as_slice()
            } else {
                b"abcdefghijklmnopqrstuvwxyz0123456789_".as_slice()
            };
            alphabet[rng.index(alphabet.len())] as char
        })
        .collect()
}

fn any_dir(rng: &mut XorShift64) -> PortDir {
    match rng.below(3) {
        0 => PortDir::Input,
        1 => PortDir::Output,
        _ => PortDir::Inout,
    }
}

fn any_message(rng: &mut XorShift64) -> Message {
    match rng.below(11) {
        0 => Message::Hello,
        1 => Message::GetInterface,
        2 => Message::Interface(
            (0..rng.index(8))
                .map(|_| (any_name(rng), any_dir(rng), 1 + rng.below(63) as u32))
                .collect(),
        ),
        3 => Message::SetInput {
            port: any_name(rng),
            value: any_logic_vec(rng, 64),
        },
        4 => Message::Cycle {
            n: rng.below(1_000_000) as u32,
        },
        5 => Message::Reset,
        6 => Message::GetOutput {
            port: any_name(rng),
        },
        7 => Message::Value {
            port: any_name(rng),
            value: any_logic_vec(rng, 64),
        },
        8 => Message::Ok,
        9 => Message::Error {
            message: (0..rng.index(64))
                .map(|_| (b' ' + (rng.below(95) as u8)) as char)
                .collect(),
        },
        _ => Message::Bye,
    }
}

/// Arbitrary bytes must decode to Ok or Err — never panic.
#[test]
fn decode_never_panics() {
    check_n("decode_never_panics", 128, |rng| {
        let len = rng.index(256);
        let bytes = rng.bytes(len);
        let _ = Message::decode(&bytes);
    });
}

/// Arbitrary frames (length prefix + garbage) never panic the frame
/// reader either.
#[test]
fn read_frame_never_panics() {
    check_n("read_frame_never_panics", 128, |rng| {
        let len = rng.index(64);
        let bytes = rng.bytes(len);
        let _ = read_frame(std::io::Cursor::new(bytes));
    });
}

/// Every well-formed message round-trips through encode/decode.
#[test]
fn messages_round_trip() {
    check_n("messages_round_trip", 128, |rng| {
        let msg = any_message(rng);
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).expect("decode"), msg);
    });
}

/// Every well-formed message round-trips through the framing layer.
#[test]
fn frames_round_trip() {
    check_n("frames_round_trip", 128, |rng| {
        let msgs: Vec<Message> = (0..1 + rng.index(7)).map(|_| any_message(rng)).collect();
        let mut buf = Vec::new();
        for msg in &msgs {
            write_frame(&mut buf, msg).expect("write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for msg in &msgs {
            assert_eq!(&read_frame(&mut cursor).expect("read"), msg);
        }
    });
}

/// Truncating a valid encoding anywhere must produce an error, not a
/// silently different message.
#[test]
fn truncation_is_detected() {
    check_n("truncation_is_detected", 128, |rng| {
        let msg = any_message(rng);
        let bytes = msg.encode();
        if bytes.len() > 1 {
            let cut = 1 + rng.index(bytes.len() - 1);
            if cut < bytes.len() {
                match Message::decode(&bytes[..cut]) {
                    Err(_) => {}
                    Ok(decoded) => {
                        assert_ne!(decoded, msg, "truncated decode must not equal the original")
                    }
                }
            }
        }
    });
}
