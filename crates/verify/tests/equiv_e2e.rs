//! End-to-end equivalence checks: the modgen zoo against itself and
//! its EDIF round-trips, hand-resynthesized pairs, refuted pairs with
//! replay-confirmed counterexamples, and a direct AIG-vs-simulator
//! agreement sweep.

use ipd_hdl::{Circuit, FlatNetlist, PortSpec};
use ipd_sim::graph::NetlistGraph;
use ipd_sim::BatchSimulator;
use ipd_techlib::LogicCtx;
use ipd_testutil::XorShift64;
use ipd_verify::{check_equiv, lower_into, Aig, EquivConfig, EquivVerdict, Lit};
use std::collections::HashMap;

fn flat(c: &Circuit) -> FlatNetlist {
    FlatNetlist::build(c).expect("flatten")
}

#[test]
fn zoo_designs_are_self_equivalent() {
    for (name, circuit) in ipd_modgen::example_zoo() {
        let f = flat(&circuit);
        let report =
            check_equiv(&f, &f, &EquivConfig::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.is_equivalent(), "{name} is not equal to itself");
        // Identical lowerings strash to the same literals: nothing
        // should survive to a final SAT miter.
        assert_eq!(
            report.stats.outputs_by_hash, report.stats.outputs_checked,
            "{name}: identity pair needed SAT"
        );
    }
}

#[test]
fn zoo_edif_round_trips_are_equivalent() {
    for (name, circuit) in ipd_modgen::example_zoo() {
        let mut text = Vec::new();
        ipd_netlist::write_edif(&circuit, &mut text).expect("write edif");
        let text = String::from_utf8(text).expect("edif is utf-8");
        let back = ipd_netlist::read_edif(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = check_equiv(&flat(&circuit), &flat(&back), &EquivConfig::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            report.is_equivalent(),
            "{name} EDIF round-trip changed function"
        );
    }
}

/// Majority-of-three as one LUT3 (INIT=0xE8).
fn majority_lut() -> Circuit {
    let mut c = Circuit::new("maj");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.lut(0xE8, &[a.into(), b.into(), d.into()], y).unwrap();
    c
}

/// The same majority function factored into AND/OR gates:
/// `ab | d(a|b)`.
fn majority_gates() -> Circuit {
    let mut c = Circuit::new("maj");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let ab = ctx.wire("ab", 1);
    let aob = ctx.wire("aob", 1);
    let dab = ctx.wire("dab", 1);
    ctx.and2(a, b, ab).unwrap();
    ctx.or2(a, b, aob).unwrap();
    ctx.and2(d, aob, dab).unwrap();
    ctx.or2(ab, dab, y).unwrap();
    c
}

#[test]
fn resynthesized_majority_proves_equivalent() {
    let report = check_equiv(
        &flat(&majority_lut()),
        &flat(&majority_gates()),
        &EquivConfig::default(),
    )
    .expect("check runs");
    assert!(report.is_equivalent());
}

/// A registered design: `q' = f(d, en)`, `y = q`, where `f` is the
/// caller's gate.
fn registered(and_gate: bool) -> Circuit {
    let mut c = Circuit::new("reg");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
    let en = ctx.add_port(PortSpec::input("en", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let g = ctx.wire("g", 1);
    if and_gate {
        ctx.and2(d, en, g).unwrap();
    } else {
        ctx.or2(d, en, g).unwrap();
    }
    ctx.fd(clk, g, y).unwrap();
    c
}

#[test]
fn differing_next_state_functions_are_refuted_with_replayed_cex() {
    let golden = flat(&registered(true));
    let revised = flat(&registered(false));
    let report = check_equiv(&golden, &revised, &EquivConfig::default()).expect("check runs");
    let EquivVerdict::NotEquivalent(cex) = report.verdict else {
        panic!("AND-FF vs OR-FF proved equivalent");
    };
    // d=0,en=1 (or d=1,en=0) distinguishes; d must differ from en.
    // The counterexample was already replayed through both simulators
    // inside check_equiv; sanity-check its shape here.
    assert!(cex.function.starts_with("next(") || cex.function.starts_with('y'));
    let d = cex.inputs.iter().find(|(p, _)| p == "d").unwrap();
    let en = cex.inputs.iter().find(|(p, _)| p == "en").unwrap();
    assert_ne!(d.1.bit(0), en.1.bit(0), "cex must split AND from OR");
    assert_ne!(cex.golden_value, cex.revised_value);
}

/// Random loop-free LUT/gate network over 4 primary inputs.
fn random_comb(rng: &mut XorShift64) -> Circuit {
    let mut c = Circuit::new("rand");
    let mut ctx = c.root_ctx();
    let mut sigs: Vec<ipd_hdl::Signal> = (0..4)
        .map(|i| {
            ctx.add_port(PortSpec::input(format!("in{i}"), 1))
                .unwrap()
                .into()
        })
        .collect();
    let gates = 4 + rng.index(10);
    for g in 0..gates {
        let out = ctx.wire(&format!("w{g}"), 1);
        let x = sigs[rng.index(sigs.len())].clone();
        let y = sigs[rng.index(sigs.len())].clone();
        let z = sigs[rng.index(sigs.len())].clone();
        match rng.index(4) {
            0 => ctx.and2(x, y, out).unwrap(),
            1 => ctx.xor2(x, y, out).unwrap(),
            2 => ctx.mux2(x, y, z, out).unwrap(),
            _ => {
                let init = (rng.next_u64() & 0xFF) as u16;
                ctx.lut(init, &[x, y, z], out).unwrap()
            }
        };
        sigs.push(out.into());
    }
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.buffer(sigs.last().unwrap().clone(), y).unwrap();
    c
}

/// The AIG lowering must agree with the batch simulator bit-for-bit
/// over the full input space of small random designs.
#[test]
fn aig_lowering_agrees_with_simulator_exhaustively() {
    ipd_testutil::check_n("aig vs simulator", 24, |rng| {
        let circuit = random_comb(rng);
        let f = flat(&circuit);
        let graph = NetlistGraph::build(&f, None).expect("graph");
        let mut aig = Aig::new();
        let mut port_lit: HashMap<(String, usize), Lit> = HashMap::new();
        for i in 0..4 {
            let lit = aig.input();
            port_lit.insert((format!("in{i}"), 0), lit);
        }
        let outs = lower_into(&mut aig, &graph, "rand", &port_lit, &HashMap::new()).expect("lower");
        assert_eq!(outs.len(), 1);

        let lanes = 16;
        let mut sim = BatchSimulator::from_flat(&f, None, lanes).expect("sim");
        for v in 0..16u64 {
            for i in 0..4 {
                sim.set_u64_lane(&format!("in{i}"), v as usize, (v >> i) & 1)
                    .unwrap();
            }
        }
        for v in 0..16u64 {
            let inputs: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            let aig_val = aig.eval(outs[0].lit, &inputs);
            let sim_val = sim.peek_lane("y", v as usize).unwrap().bit(0);
            assert_eq!(
                ipd_hdl::Logic::from_bool(aig_val),
                sim_val,
                "input {v:04b}: AIG={aig_val}, simulator={sim_val:?}"
            );
        }
    });
}
