//! Oracle differential suite: every semantic verdict is pinned
//! against both simulation engines, every refutation ships a witness
//! that replays, and budget exhaustion degrades to `Unknown`, never
//! to a wrong verdict.

use ipd_hdl::{Circuit, FlatNetlist, Logic, LogicVec, NetId, PortDir, PortSpec, Signal};
use ipd_sim::{BatchSimulator, CompiledSimulator};
use ipd_techlib::LogicCtx;
use ipd_testutil::XorShift64;
use ipd_verify::{Oracle, OracleOptions, Verdict, WitnessCheck};

fn flat(c: &Circuit) -> FlatNetlist {
    FlatNetlist::build(c).expect("flatten")
}

fn net_id(f: &FlatNetlist, name: &str) -> NetId {
    let suffix = format!("/{name}");
    let idx = f
        .nets()
        .iter()
        .position(|n| n.name == name || n.name.ends_with(&suffix))
        .unwrap_or_else(|| panic!("no net named {name}"));
    NetId::from_index(idx)
}

/// `y = s ? a : b`, plus an input `u` nothing reads.
fn mux_with_unused() -> Circuit {
    let mut c = Circuit::new("muxu");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let s = ctx.add_port(PortSpec::input("s", 1)).unwrap();
    let _u = ctx.add_port(PortSpec::input("u", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    ctx.mux2(b, a, s, y).unwrap();
    c
}

#[test]
fn independence_proved_and_refuted() {
    let c = mux_with_unused();
    let f = flat(&c);
    let y = net_id(&f, "y");
    let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
    assert!(
        oracle.prove_independent(y, "u", 0).unwrap().is_proved(),
        "unused input must be proved independent"
    );
    let v = oracle.prove_independent(y, "a", 0).unwrap();
    let Verdict::Refuted(w) = v else {
        panic!("mux output must depend on a, got {v:?}");
    };
    let WitnessCheck::NetToggles {
        port, low, high, ..
    } = &w.check
    else {
        panic!("independence refutation must be a toggle witness");
    };
    assert_eq!(port, "a");
    assert_ne!(low, high);
}

/// `y = (a & b) | (a & !b)` — semantically just `a`; `dead = a & !a`
/// — semantically constant zero. Built from LUTs so structural
/// cofactor propagation cannot see either fact.
fn semantic_consts() -> Circuit {
    let mut c = Circuit::new("semconst");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let z = ctx.add_port(PortSpec::output("z", 1)).unwrap();
    let t1 = ctx.wire("t1", 1);
    let t2 = ctx.wire("t2", 1);
    let dead = ctx.wire("dead", 1);
    ctx.and2(a, b, t1).unwrap();
    // t2 = a & !b via LUT2 (init 0b0010: only a=1,b=0).
    ctx.lut(0b0010, &[a.into(), b.into()], t2).unwrap();
    ctx.or2(t1, t2, y).unwrap();
    // dead = a & !a via LUT1 pair is folded; use LUT2(a, b) with an
    // init that ignores b and contradicts a: 0b0000.
    ctx.lut(0b0000, &[a.into(), b.into()], dead).unwrap();
    ctx.or2(dead, t1, z).unwrap();
    c
}

#[test]
fn constants_proved_and_refuted_with_replayed_witness() {
    let c = semantic_consts();
    let f = flat(&c);
    let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
    let dead = net_id(&f, "dead");
    assert!(
        oracle.prove_constant(dead, false).unwrap().is_proved(),
        "dead = const-0 LUT must be proved constant"
    );
    // y is NOT constant: refutation must carry a witness that both
    // engines already replayed inside the oracle. Triple-check it
    // here with a third, hand-rolled replay.
    let y = net_id(&f, "y");
    let v = oracle.prove_constant(y, false).unwrap();
    let Verdict::Refuted(w) = v else {
        panic!("y is not constant, got {v:?}");
    };
    let WitnessCheck::NetEquals { value } = w.check else {
        panic!("constant refutation must be a net-equals witness");
    };
    assert_eq!(value, Logic::One);
    let mut sim = BatchSimulator::from_flat(&f, None, 1).unwrap();
    for (port, val) in &w.inputs {
        sim.set_lane(port, 0, val).unwrap();
    }
    let y_name = &f.nets()[y.index()].name;
    assert_eq!(sim.peek_net_lane(y_name, 0).unwrap(), Logic::One);
    assert!(oracle.stats().replays >= 1);
}

#[test]
fn equality_proved_across_structures() {
    // Majority as a LUT3 vs. factored gates inside one design.
    let mut c = Circuit::new("maj2");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
    let y1 = ctx.add_port(PortSpec::output("y1", 1)).unwrap();
    let y2 = ctx.add_port(PortSpec::output("y2", 1)).unwrap();
    ctx.lut(0xE8, &[a.into(), b.into(), d.into()], y1).unwrap();
    let ab = ctx.wire("ab", 1);
    let aob = ctx.wire("aob", 1);
    let dab = ctx.wire("dab", 1);
    ctx.and2(a, b, ab).unwrap();
    ctx.or2(a, b, aob).unwrap();
    ctx.and2(d, aob, dab).unwrap();
    ctx.or2(ab, dab, y2).unwrap();
    let f = flat(&c);
    let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
    let n1 = net_id(&f, "y1");
    let n2 = net_id(&f, "y2");
    assert!(oracle.prove_equal(n1, n2, false).unwrap().is_proved());
    // And the complemented claim is refuted with a two-net witness.
    let v = oracle.prove_equal(n1, n2, true).unwrap();
    let Verdict::Refuted(w) = v else {
        panic!("y1 == !y2 must be refuted, got {v:?}");
    };
    let WitnessCheck::NetsDiffer {
        value, other_value, ..
    } = &w.check
    else {
        panic!("equality refutation must be a nets-differ witness");
    };
    assert_eq!(value, other_value, "y1 == y2 under the witness");
}

/// Parity of 6 inputs, once as a chain and once as a tree: equal, but
/// XOR equivalence is expensive for resolution, so a one-conflict
/// budget must answer `Unknown`, never `Refuted`.
fn parity_pair() -> Circuit {
    let mut c = Circuit::new("par6");
    let mut ctx = c.root_ctx();
    let x = ctx.add_port(PortSpec::input("x", 6)).unwrap();
    let yc = ctx.add_port(PortSpec::output("yc", 1)).unwrap();
    let yt = ctx.add_port(PortSpec::output("yt", 1)).unwrap();
    let xs: Vec<Signal> = (0..6).map(|i| Signal::bit_of(x, i)).collect();
    let mut acc = xs[0].clone();
    for (i, xi) in xs.iter().enumerate().skip(1) {
        let next: Signal = if i == 5 {
            yc.into()
        } else {
            ctx.wire(&format!("c{i}"), 1).into()
        };
        ctx.xor2(acc.clone(), xi.clone(), next.clone()).unwrap();
        acc = next;
    }
    let t0 = ctx.wire("t0", 1);
    let t1 = ctx.wire("t1", 1);
    let t2 = ctx.wire("t2", 1);
    ctx.xor2(xs[0].clone(), xs[3].clone(), t0).unwrap();
    ctx.xor2(xs[1].clone(), xs[4].clone(), t1).unwrap();
    ctx.xor2(xs[2].clone(), xs[5].clone(), t2).unwrap();
    ctx.xor3(t0, t1, t2, yt).unwrap();
    c
}

#[test]
fn budget_exhaustion_is_unknown_never_wrong() {
    let c = parity_pair();
    let f = flat(&c);
    let n1 = net_id(&f, "yc");
    let n2 = net_id(&f, "yt");
    // Unlimited budget proves the pair equal.
    let mut oracle = Oracle::new(
        &f,
        OracleOptions {
            conflict_budget: 0,
            ..OracleOptions::default()
        },
    )
    .unwrap();
    assert!(oracle.prove_equal(n1, n2, false).unwrap().is_proved());
    // A one-conflict budget answers Proved (cheap strash luck) or
    // Unknown — anything but a refutation of a true fact.
    let mut tight = Oracle::new(
        &f,
        OracleOptions {
            conflict_budget: 1,
            ..OracleOptions::default()
        },
    )
    .unwrap();
    match tight.prove_equal(n1, n2, false).unwrap() {
        Verdict::Refuted(_) => panic!("budget exhaustion refuted a true equality"),
        Verdict::Proved | Verdict::Unknown { .. } => {}
    }
    // Same discipline across the whole zoo: with a one-conflict
    // budget, no net that the default budget proves constant may be
    // refuted, and vice versa.
    for (name, circuit) in ipd_modgen::example_zoo() {
        let f = flat(&circuit);
        let mut full = match Oracle::new(&f, OracleOptions::default()) {
            Ok(o) => o,
            Err(_) => continue,
        };
        if !full.has_model() {
            continue;
        }
        let mut tight = Oracle::new(
            &f,
            OracleOptions {
                conflict_budget: 1,
                ..OracleOptions::default()
            },
        )
        .unwrap();
        let nets: Vec<NetId> = (0..f.nets().len().min(40)).map(NetId::from_index).collect();
        for net in nets {
            let a = full.prove_constant(net, false).unwrap();
            let b = tight.prove_constant(net, false).unwrap();
            match (&a, &b) {
                (Verdict::Proved, Verdict::Refuted(_)) | (Verdict::Refuted(_), Verdict::Proved) => {
                    panic!("{name}: budgets disagree on net {net:?}: {a:?} vs {b:?}")
                }
                _ => {}
            }
        }
    }
}

/// Random driven stimulus for every non-clock input port.
fn randomize_inputs<F>(f: &FlatNetlist, rng: &mut XorShift64, mut set: F)
where
    F: FnMut(&str, &LogicVec),
{
    for port in f.ports() {
        if port.dir != PortDir::Input || port.name == "clk" {
            continue;
        }
        let width = port.nets.len();
        let mut v = LogicVec::zeros(width);
        for bit in 0..width {
            v.set_bit(bit, Logic::from_bool(rng.next_u64() & 1 == 1));
        }
        set(&port.name, &v);
    }
}

/// The core differential claim: every net the oracle proves constant
/// stays at that constant in both engines under random driven
/// stimulus, across the whole zoo. Zero disagreements allowed.
#[test]
fn zoo_proved_constants_hold_in_both_engines() {
    let mut rng = XorShift64::new(0x1d0c_5eed);
    for (name, circuit) in ipd_modgen::example_zoo() {
        let f = flat(&circuit);
        let mut oracle = match Oracle::new(&f, OracleOptions::default()) {
            Ok(o) => o,
            Err(_) => continue,
        };
        if !oracle.has_model() {
            continue;
        }
        // Mine candidates by signature, then prove.
        let sigs = oracle.net_signatures().to_vec();
        let mut proved: Vec<(NetId, bool)> = Vec::new();
        for (i, sig) in sigs.iter().enumerate() {
            let Some(sig) = sig else { continue };
            let value = if sig.iter().all(|&w| w == 0) {
                false
            } else if sig.iter().all(|&w| w == u64::MAX) {
                true
            } else {
                continue;
            };
            let net = NetId::from_index(i);
            if oracle.prove_constant(net, value).unwrap().is_proved() {
                proved.push((net, value));
            }
        }
        let mut batch = BatchSimulator::from_flat(&f, None, 4).unwrap();
        let mut compiled = CompiledSimulator::from_flat(&f, None, 4).unwrap();
        for _round in 0..4 {
            for lane in 0..4 {
                randomize_inputs(&f, &mut rng, |p, v| {
                    batch.set_lane(p, lane, v).unwrap();
                    compiled.set_lane(p, lane, v).unwrap();
                });
            }
            batch.cycle(1).unwrap();
            compiled.cycle(1).unwrap();
            for &(net, value) in &proved {
                let net_name = &f.nets()[net.index()].name;
                for lane in 0..4 {
                    for (engine, got) in [
                        ("batch", batch.peek_net_lane(net_name, lane).unwrap()),
                        ("compiled", compiled.peek_net_lane(net_name, lane).unwrap()),
                    ] {
                        if got.is_driven() {
                            assert_eq!(
                                got,
                                Logic::from_bool(value),
                                "{name}: oracle/{engine} disagree on proved-constant {net_name}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Never-X verdicts pinned against both engines: a proved net never
/// reads X under driven inputs from power-on, across the zoo.
#[test]
fn zoo_proved_never_x_holds_in_both_engines() {
    let mut rng = XorShift64::new(0xace1_ace1);
    for (name, circuit) in ipd_modgen::example_zoo() {
        let f = flat(&circuit);
        let mut oracle = match Oracle::new(&f, OracleOptions::default()) {
            Ok(o) => o,
            Err(_) => continue,
        };
        // Check output port nets (the lint client's use).
        let mut proved_nets: Vec<String> = Vec::new();
        for port in f.ports() {
            if port.dir == PortDir::Input {
                continue;
            }
            for &net in &port.nets {
                if oracle.prove_never_x(net).unwrap().is_proved() {
                    proved_nets.push(f.nets()[net.index()].name.clone());
                }
            }
        }
        if proved_nets.is_empty() {
            continue;
        }
        let mut batch = BatchSimulator::from_flat(&f, None, 2).unwrap();
        let mut compiled = CompiledSimulator::from_flat(&f, None, 2).unwrap();
        for _round in 0..6 {
            for lane in 0..2 {
                randomize_inputs(&f, &mut rng, |p, v| {
                    batch.set_lane(p, lane, v).unwrap();
                    compiled.set_lane(p, lane, v).unwrap();
                });
            }
            for net in &proved_nets {
                for lane in 0..2 {
                    assert!(
                        batch.peek_net_lane(net, lane).unwrap().is_driven(),
                        "{name}: batch saw X on proved-never-X net {net}"
                    );
                    assert!(
                        compiled.peek_net_lane(net, lane).unwrap().is_driven(),
                        "{name}: compiled saw X on proved-never-X net {net}"
                    );
                }
            }
            batch.cycle(1).unwrap();
            compiled.cycle(1).unwrap();
        }
    }
}

#[test]
fn never_x_refuted_on_undriven_cone() {
    // y = a OR floating; the floating leg makes y X whenever a=0.
    let mut c = Circuit::new("floaty");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let dangle = ctx.wire("dangle", 1);
    ctx.or2(a, dangle, y).unwrap();
    let f = flat(&c);
    let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
    assert!(
        !oracle.has_model(),
        "undriven read net must suppress the two-valued model"
    );
    let y_net = net_id(&f, "y");
    let v = oracle.prove_never_x(y_net).unwrap();
    assert!(
        matches!(v, Verdict::Refuted(_)),
        "floating cone must refute never-X, got {v:?}"
    );
    // But a net the float cannot poison is still proved.
    let mut c2 = Circuit::new("masked");
    let mut ctx = c2.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let dangle = ctx.wire("dangle", 1);
    let z = ctx.wire("z", 1);
    ctx.gnd(z).unwrap();
    let m = ctx.wire("m", 1);
    ctx.and2(z, dangle, m).unwrap();
    ctx.or2(a, m, y).unwrap();
    let f2 = flat(&c2);
    let mut oracle2 = Oracle::new(&f2, OracleOptions::default()).unwrap();
    let y2 = net_id(&f2, "y");
    assert!(
        oracle2.prove_never_x(y2).unwrap().is_proved(),
        "0 & X = 0 masks the float"
    );
}

#[test]
fn stateful_never_x_tracks_register_init() {
    // q feeds y; FD powers on to a known value, so y is never X.
    let mut c = Circuit::new("ffy");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let d = ctx.add_port(PortSpec::input("d", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let q = ctx.wire("q", 1);
    ctx.fd(clk, d, q).unwrap();
    ctx.buffer(q, y).unwrap();
    let f = flat(&c);
    let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
    let y_net = net_id(&f, "y");
    let v = oracle.prove_never_x(y_net).unwrap();
    assert!(v.is_proved(), "known-init FF output must be never-X: {v:?}");
}

#[test]
fn sdc_and_odc_cubes() {
    // w1 = a&b, w2 = a|b, g = w1&w2: the minterm w1=1,w2=0 is
    // unproducible — an SDC.
    let mut c = Circuit::new("dc");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let w1 = ctx.wire("w1", 1);
    let w2 = ctx.wire("w2", 1);
    ctx.and2(a, b, w1).unwrap();
    ctx.or2(a, b, w2).unwrap();
    ctx.and2(w1, w2, y).unwrap();
    let f = flat(&c);
    let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
    let y_net = net_id(&f, "y");
    let cubes = oracle.sdc(y_net).unwrap().expect("y has a producer node");
    assert!(cubes.complete);
    let w1_bit = cubes
        .inputs
        .iter()
        .position(|n| n.ends_with("/w1"))
        .unwrap();
    let w2_bit = cubes
        .inputs
        .iter()
        .position(|n| n.ends_with("/w2"))
        .unwrap();
    let impossible = (1 << w1_bit) as u16;
    assert!(
        cubes.minterms.contains(&impossible),
        "w1=1,w2=0 must be an SDC: {cubes:?}"
    );
    assert!(
        !cubes.minterms.contains(&((1 << w2_bit) as u16)),
        "w1=0,w2=1 is producible (a^b)"
    );

    // n = b|k, y = b & n: with b=0 the AND masks n — an ODC. (The
    // second input is named `k`, not `c`: a port named `c` would be
    // auto-detected as the clock.)
    let mut c2 = Circuit::new("odc");
    let mut ctx = c2.root_ctx();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let k = ctx.add_port(PortSpec::input("k", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let n = ctx.wire("n", 1);
    ctx.or2(b, k, n).unwrap();
    ctx.and2(b, n, y).unwrap();
    let f2 = flat(&c2);
    let mut oracle2 = Oracle::new(&f2, OracleOptions::default()).unwrap();
    let n_net = net_id(&f2, "n");
    let cubes = oracle2.odc(n_net).unwrap().expect("n has a producer node");
    assert!(cubes.complete);
    let b_bit = cubes.inputs.iter().position(|x| x.ends_with("/b")).unwrap();
    for m in 0u16..4 {
        let b_is_zero = (m >> b_bit) & 1 == 0;
        assert_eq!(
            cubes.minterms.contains(&m),
            b_is_zero,
            "ODC set must be exactly the b=0 minterms: {cubes:?}"
        );
    }
}

#[test]
fn unobservable_net_is_proved() {
    // m = a & dangle-free logic that y ignores: y = a, m unused
    // downstream except through a 0-AND.
    let mut c = Circuit::new("unobs");
    let mut ctx = c.root_ctx();
    let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
    let b = ctx.add_port(PortSpec::input("b", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let z = ctx.wire("z", 1);
    ctx.gnd(z).unwrap();
    let m = ctx.wire("m", 1);
    let k = ctx.wire("k", 1);
    ctx.xor2(a, b, m).unwrap();
    ctx.and2(m, z, k).unwrap();
    ctx.or2(a, k, y).unwrap();
    let f = flat(&c);
    let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
    let m_net = net_id(&f, "m");
    assert!(
        oracle.prove_unobservable(m_net).unwrap().is_proved(),
        "a net ANDed with 0 is unobservable"
    );
    let a_net = net_id(&f, "a");
    let v = oracle.prove_unobservable(a_net).unwrap();
    assert!(
        !v.is_proved(),
        "a drives y directly; flipping it must be observable"
    );
}

#[test]
fn reachable_states_enumerate_counters() {
    for (name, circuit) in ipd_modgen::example_zoo() {
        if !name.contains("gray") {
            continue;
        }
        let f = flat(&circuit);
        let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
        let reach = oracle
            .reachable_states()
            .unwrap()
            .expect("gray counter is within state caps");
        assert!(reach.complete, "{name}: enumeration must close");
        assert_eq!(
            reach.states.len(),
            64,
            "{name}: a 6-bit gray counter visits all 64 states"
        );
        assert!(reach.stuck_bits().is_empty());
    }
}

#[test]
fn reachability_finds_dead_onehot_state() {
    // Two FFs ping-ponging (01 -> 10 -> 01) plus a third one-hot leg
    // that can never fire: its bit is stuck at 0.
    let mut c = Circuit::new("onehot");
    let mut ctx = c.root_ctx();
    let clk = ctx.add_port(PortSpec::input("clk", 1)).unwrap();
    let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
    let q0 = ctx.wire("q0", 1);
    let q1 = ctx.wire("q1", 1);
    let q2 = ctx.wire("q2", 1);
    let nq0 = ctx.wire("nq0", 1);
    ctx.inv(q0, nq0).unwrap();
    // q0 <= !q0; q1 <= q0; q2 <= q1 & q0 (never true in the cycle).
    ctx.fd(clk, nq0, q0).unwrap();
    ctx.fd(clk, q0, q1).unwrap();
    let both = ctx.wire("both", 1);
    ctx.and2(q0, q1, both).unwrap();
    ctx.fd(clk, both, q2).unwrap();
    ctx.buffer(q2, y).unwrap();
    let f = flat(&c);
    let mut oracle = Oracle::new(&f, OracleOptions::default()).unwrap();
    let reach = oracle.reachable_states().unwrap().expect("3 FFs fit");
    assert!(reach.complete);
    // From 000 the machine cycles 100 -> 010 -> 100; q0 and q1 are
    // never both 1, so q2 can never load a 1: a dead one-hot leg.
    let expected: std::collections::HashSet<Vec<bool>> = {
        let mut seen = std::collections::HashSet::new();
        let mut s = (false, false, false);
        for _ in 0..16 {
            seen.insert(vec![s.0, s.1, s.2]);
            s = (!s.0, s.0, s.0 && s.1);
        }
        seen
    };
    let got: std::collections::HashSet<Vec<bool>> = reach.states.iter().cloned().collect();
    // Bit order in `reach` follows seq order; the three `fd` cells
    // were instantiated q0-first, so their auto paths map in order.
    let pos: Vec<usize> = ["/fd", "/fd_2", "/fd_3"]
        .iter()
        .map(|n| {
            reach
                .bits
                .iter()
                .position(|(p, _)| p.ends_with(n))
                .unwrap_or_else(|| panic!("no state bit for {n} in {:?}", reach.bits))
        })
        .collect();
    let got_mapped: std::collections::HashSet<Vec<bool>> = got
        .iter()
        .map(|s| pos.iter().map(|&i| s[i]).collect())
        .collect();
    assert_eq!(got_mapped, expected, "exact reachable set");
    let stuck = reach.stuck_bits();
    assert!(
        stuck
            .iter()
            .any(|(path, _, value)| path.ends_with("/fd_3") && !*value),
        "q2 (fd_3) must be proved stuck at 0: {stuck:?}"
    );
    assert!(
        !stuck.iter().any(|(path, _, _)| path.ends_with("/fd")),
        "q0 (fd) toggles"
    );
}

#[test]
fn structural_consts_and_model_presence_across_zoo() {
    for (name, circuit) in ipd_modgen::example_zoo() {
        let f = flat(&circuit);
        let oracle = Oracle::new(&f, OracleOptions::default())
            .unwrap_or_else(|e| panic!("{name}: oracle build failed: {e}"));
        assert!(
            oracle.has_model(),
            "{name}: zoo designs are clean, the two-valued model must exist"
        );
    }
}
