//! Mutation coverage: single-gate faults injected into flattened
//! designs must be caught whenever they change function, and must NOT
//! be reported when they provably do not (equivalent mutants).
//!
//! Ground truth comes from the batch simulator — an engine whose
//! code path shares nothing with the AIG/SAT pipeline above the
//! levelizer — so a verdict mismatch in either direction is a real
//! engine bug, not a flaky oracle.

use ipd_hdl::{Circuit, FlatKind, FlatNetlist, PortDir, PortSpec};
use ipd_sim::BatchSimulator;
use ipd_techlib::LogicCtx;
use ipd_testutil::XorShift64;
use ipd_verify::{check_equiv, EquivConfig, EquivVerdict};

/// One single-gate mutation applied to a flattened design.
#[derive(Debug, Clone)]
enum Mutation {
    /// Flip one truth-table bit of the LUT at leaf `leaf`.
    LutFlip { leaf: usize, bit: usize },
    /// Swap the nets of two single-bit input connections of one leaf.
    InputSwap { leaf: usize, a: usize, b: usize },
    /// Tie LUT input `input` to constant zero (rewrites the truth
    /// table to its zero-cofactor along that variable).
    ConstTie { leaf: usize, input: usize },
}

/// LUT input count from the primitive name (`lut1`..`lut4`).
fn lut_inputs(name: &str) -> Option<usize> {
    name.strip_prefix("lut")
        .and_then(|k| k.parse::<usize>().ok())
        .filter(|k| (1..=4).contains(k))
}

/// Enumerates every applicable mutation site of a flattened design.
fn mutation_sites(flat: &FlatNetlist) -> Vec<Mutation> {
    let mut out = Vec::new();
    for (li, leaf) in flat.leaves().iter().enumerate() {
        let FlatKind::Primitive(prim) = &leaf.kind else {
            continue;
        };
        if let (Some(k), Some(_)) = (lut_inputs(&prim.name), prim.init) {
            for bit in 0..(1usize << k) {
                out.push(Mutation::LutFlip { leaf: li, bit });
            }
            for input in 0..k {
                out.push(Mutation::ConstTie { leaf: li, input });
            }
        }
        // Swappable connections: single-bit inputs that are not the
        // clock (reclocking would not flatten to the same cut).
        let swappable: Vec<usize> = leaf
            .conns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dir == PortDir::Input && c.nets.len() == 1 && c.port != "c")
            .map(|(i, _)| i)
            .collect();
        for i in 0..swappable.len() {
            for j in (i + 1)..swappable.len() {
                out.push(Mutation::InputSwap {
                    leaf: li,
                    a: swappable[i],
                    b: swappable[j],
                });
            }
        }
    }
    out
}

/// Applies one mutation to a clone of `flat`.
fn mutate(flat: &FlatNetlist, m: &Mutation) -> FlatNetlist {
    let mut out = flat.clone();
    match *m {
        Mutation::LutFlip { leaf, bit } => {
            let FlatKind::Primitive(prim) = &mut out.leaves_mut()[leaf].kind else {
                unreachable!("site enumeration only picks primitives");
            };
            let init = prim.init.expect("LUT has INIT");
            prim.init = Some(init ^ (1 << bit));
        }
        Mutation::InputSwap { leaf, a, b } => {
            let conns = &mut out.leaves_mut()[leaf].conns;
            let net_a = conns[a].nets[0];
            let net_b = conns[b].nets[0];
            conns[a].nets[0] = net_b;
            conns[b].nets[0] = net_a;
        }
        Mutation::ConstTie { leaf, input } => {
            let FlatKind::Primitive(prim) = &mut out.leaves_mut()[leaf].kind else {
                unreachable!("site enumeration only picks primitives");
            };
            let k = lut_inputs(&prim.name).expect("LUT leaf");
            let init = prim.init.expect("LUT has INIT");
            let mut tied = 0u64;
            for row in 0..(1usize << k) {
                let src = row & !(1usize << input);
                tied |= ((init >> src) & 1) << row;
            }
            prim.init = Some(tied);
        }
    }
    out
}

/// Random loop-free network over `pis` single-bit inputs, rich in
/// LUTs so every mutation operator has sites.
fn random_design(rng: &mut XorShift64, pis: usize) -> Circuit {
    let mut c = Circuit::new("mut");
    let mut ctx = c.root_ctx();
    let mut sigs: Vec<ipd_hdl::Signal> = (0..pis)
        .map(|i| {
            ctx.add_port(PortSpec::input(format!("in{i}"), 1))
                .unwrap()
                .into()
        })
        .collect();
    let gates = 5 + rng.index(10);
    for g in 0..gates {
        let out = ctx.wire(&format!("w{g}"), 1);
        let x = sigs[rng.index(sigs.len())].clone();
        let y = sigs[rng.index(sigs.len())].clone();
        let z = sigs[rng.index(sigs.len())].clone();
        match rng.index(3) {
            0 => {
                let init = (rng.next_u64() & 0xF) as u16;
                ctx.lut(init, &[x, y], out).unwrap()
            }
            1 => {
                let init = (rng.next_u64() & 0xFF) as u16;
                ctx.lut(init, &[x, y, z], out).unwrap()
            }
            _ => ctx.mux2(x, y, z, out).unwrap(),
        };
        sigs.push(out.into());
    }
    // Tap the last two signals so faults near the top stay observable.
    let y0 = ctx.add_port(PortSpec::output("y0", 1)).unwrap();
    let y1 = ctx.add_port(PortSpec::output("y1", 1)).unwrap();
    ctx.buffer(sigs[sigs.len() - 1].clone(), y0).unwrap();
    ctx.buffer(sigs[sigs.len() - 2].clone(), y1).unwrap();
    c
}

/// Exhaustive output comparison of two combinational designs over all
/// `2^pis` input vectors; `true` means they differ somewhere.
fn differ_exhaustively(a: &FlatNetlist, b: &FlatNetlist, pis: usize) -> bool {
    let total = 1usize << pis;
    let lanes = total.min(64);
    let out_ports: Vec<String> = a
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Output)
        .map(|p| p.name.clone())
        .collect();
    for base in (0..total).step_by(lanes) {
        let mut sa = BatchSimulator::from_flat(a, None, lanes).expect("sim a");
        let mut sb = BatchSimulator::from_flat(b, None, lanes).expect("sim b");
        for lane in 0..lanes {
            let v = (base + lane) as u64;
            for i in 0..pis {
                sa.set_u64_lane(&format!("in{i}"), lane, (v >> i) & 1)
                    .unwrap();
                sb.set_u64_lane(&format!("in{i}"), lane, (v >> i) & 1)
                    .unwrap();
            }
        }
        for port in &out_ports {
            for lane in 0..lanes {
                if sa.peek_lane(port, lane).unwrap() != sb.peek_lane(port, lane).unwrap() {
                    return true;
                }
            }
        }
    }
    false
}

/// Every mutation of a small random design is classified exhaustively
/// and the engine's verdict must match in BOTH directions: catch all
/// real faults, report no false ones.
#[test]
fn random_design_mutations_match_exhaustive_ground_truth() {
    let caught = std::cell::Cell::new(0usize);
    ipd_testutil::check_n("mutation ground truth", 12, |rng| {
        let pis = 4 + rng.index(3); // 4..=6 inputs, exhaustible
        let circuit = random_design(rng, pis);
        let golden = FlatNetlist::build(&circuit).expect("flatten");
        let sites = mutation_sites(&golden);
        assert!(!sites.is_empty(), "design has mutation sites");
        // A bounded random sample keeps the suite fast while the site
        // choice still varies per case.
        for _ in 0..6 {
            let m = &sites[rng.index(sites.len())];
            let mutant = mutate(&golden, m);
            let truly_different = differ_exhaustively(&golden, &mutant, pis);
            let report =
                check_equiv(&golden, &mutant, &EquivConfig::default()).expect("check runs");
            match (truly_different, &report.verdict) {
                (true, EquivVerdict::Equivalent) => {
                    panic!("MISSED mutation {m:?}: designs differ but engine proved equal")
                }
                (false, EquivVerdict::NotEquivalent(cex)) => {
                    panic!("FALSE ALARM on {m:?}: equivalent mutant refuted with {cex:?}")
                }
                (true, EquivVerdict::NotEquivalent(_)) => caught.set(caught.get() + 1),
                (false, EquivVerdict::Equivalent) => {}
            }
        }
    });
    // The sample must actually have exercised the catching path.
    assert!(
        caught.get() >= 20,
        "only {} real mutants in the sample",
        caught.get()
    );
}

/// Zoo designs: inject mutations and cross-check against randomized
/// simulation. Any mutant the simulator can distinguish, the engine
/// must refute; anything the engine refutes was already
/// replay-confirmed inside `check_equiv`.
#[test]
fn zoo_mutations_are_caught() {
    let mut rng = XorShift64::new(0x5eed_0001);
    let mut sim_different = 0usize;
    for (name, circuit) in ipd_modgen::example_zoo() {
        let golden = FlatNetlist::build(&circuit).expect("flatten");
        let sites = mutation_sites(&golden);
        if sites.is_empty() {
            continue;
        }
        for _ in 0..4 {
            let m = &sites[rng.index(sites.len())];
            let mutant = mutate(&golden, m);
            let Some(differs) = differ_randomly(&golden, &mutant, &mut rng) else {
                continue; // mutant broke clocking; not a fair fault
            };
            let report = match check_equiv(&golden, &mutant, &EquivConfig::default()) {
                Ok(r) => r,
                Err(e) => panic!("{name} mutation {m:?}: {e}"),
            };
            if differs {
                sim_different += 1;
                assert!(
                    !report.is_equivalent(),
                    "{name}: MISSED mutation {m:?} (simulation distinguishes the designs)"
                );
            }
        }
    }
    assert!(
        sim_different >= 10,
        "sample too weak: {sim_different} distinguishable mutants"
    );
}

/// Randomized differential run over both designs: same stimulus,
/// several cycles, all outputs compared every cycle. `None` when the
/// mutant cannot even be simulated (e.g. a swap broke clocking).
fn differ_randomly(a: &FlatNetlist, b: &FlatNetlist, rng: &mut XorShift64) -> Option<bool> {
    let lanes = 32;
    let clock = a.port("clk").map(|_| "clk");
    let mut sa = BatchSimulator::from_flat(a, clock, lanes).ok()?;
    let mut sb = BatchSimulator::from_flat(b, clock, lanes).ok()?;
    let in_ports: Vec<(String, usize)> = a
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Input && Some(p.name.as_str()) != clock)
        .map(|p| (p.name.clone(), p.nets.len()))
        .collect();
    let out_ports: Vec<String> = a
        .ports()
        .iter()
        .filter(|p| p.dir == PortDir::Output)
        .map(|p| p.name.clone())
        .collect();
    for _cycle in 0..6 {
        for (port, width) in &in_ports {
            for lane in 0..lanes {
                let mask = if *width >= 64 {
                    u64::MAX
                } else {
                    (1u64 << *width) - 1
                };
                let v = ipd_hdl::LogicVec::from_u64(rng.next_u64() & mask, *width);
                sa.set_lane(port, lane, &v).ok()?;
                sb.set_lane(port, lane, &v).ok()?;
            }
        }
        for port in &out_ports {
            for lane in 0..lanes {
                let va = sa.peek_lane(port, lane).ok()?;
                let vb = sb.peek_lane(port, lane).ok()?;
                if va != vb {
                    return Some(true);
                }
            }
        }
        if clock.is_some() {
            sa.cycle(1).ok()?;
            sb.cycle(1).ok()?;
        }
    }
    Some(false)
}
