//! Formal equivalence engine for delivered IP.
//!
//! Delivery pipelines transform netlists — module generators
//! re-emit them, optimizers restructure them, tools round-trip them
//! through EDIF. This crate proves, rather than spot-checks, that a
//! revised netlist still computes the same function as its golden
//! reference:
//!
//! 1. **AIG lowering** ([`aig`], [`lower`]) — combinational cones
//!    compile into a shared and-inverter graph with structural
//!    hashing, constant folding, and two-level rewriting. Sequential
//!    designs reduce to per-cone CEC across the register cut.
//! 2. **SAT core** ([`sat`]) — a self-contained CDCL solver (watched
//!    literals, first-UIP learning, VSIDS, Luby restarts) answers the
//!    miter queries; a simulation-guided sweep ([`cec`]) buckets
//!    candidate-equivalent nodes by 256-lane random signatures and
//!    merges proved pairs so most outputs never reach SAT.
//! 3. **Equivalence checking** ([`equiv`]) — [`check_equiv`] matches
//!    primary I/O and state boundaries between two designs and
//!    returns [`EquivVerdict::Equivalent`] or a distinguishing input
//!    vector. Every counterexample is replayed through both
//!    simulation engines ([`replay`]) before it is reported.
//!
//! The engine is deliberately two-valued: designs with combinational
//! loops, black boxes, or undriven nets are refused up front, because
//! a two-valued proof would be unsound against the simulators'
//! four-state semantics there.

#![warn(missing_docs)]

pub mod aig;
pub mod cec;
pub mod equiv;
mod error;
pub mod lower;
pub mod oracle;
pub mod replay;
pub mod sat;

pub use aig::{Aig, Lit, FALSE, TRUE};
pub use cec::{CecOptions, CecResult, CecStats};
pub use equiv::{
    check_equiv, Counterexample, EquivConfig, EquivReport, EquivVerdict, StateAssign, StateMatch,
};
pub use error::VerifyError;
pub use lower::{lower_design, lower_into, LoweredDesign, OutId, OutputFn};
pub use oracle::{
    CubeList, Oracle, OracleOptions, OracleStats, ReachSet, Verdict, Witness, WitnessCheck,
};
pub use sat::{SatLit, SatResult, Solver};
