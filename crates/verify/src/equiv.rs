//! The public equivalence-checking entry point.
//!
//! [`check_equiv`] matches two designs' primary I/O and sequential
//! boundaries, lowers both into one shared AIG over the matched
//! register cut, runs the simulation-guided SAT sweep, and returns
//! either a proof of equivalence or a counterexample — an input and
//! state assignment, cross-checked against both simulation engines
//! before it is ever reported.

use std::collections::HashMap;

use ipd_hdl::{FlatNetlist, LogicVec, PortDir};
use ipd_sim::graph::{NetlistGraph, SeqKind};

use crate::aig::{Aig, Lit};
use crate::cec::{check_pairs, CecOptions, CecResult, CecStats};
use crate::error::VerifyError;
use crate::lower::{lower_into, OutId};
use crate::replay;

/// How sequential elements are paired between the designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateMatch {
    /// Pair by hierarchical instance path (robust to reordering;
    /// requires stable names, which EDIF round-trips preserve).
    #[default]
    ByName,
    /// Pair by leaf order (robust to renaming; requires stable
    /// ordering).
    ByPosition,
}

/// Configuration for one equivalence check.
#[derive(Debug, Clone)]
pub struct EquivConfig {
    /// Explicit clock port; `None` auto-detects (`clk`, `c`,
    /// `clock`).
    pub clock: Option<String>,
    /// Sequential boundary pairing.
    pub state_match: StateMatch,
    /// PRNG seed for signature simulation.
    pub seed: u64,
    /// 256-pattern random simulation words per signature.
    pub sim_rounds: usize,
    /// Run the fraig sweep before the output miters.
    pub sweep: bool,
    /// Conflict budget per sweep query (0 = unlimited).
    pub sweep_conflict_limit: u64,
    /// Conflict budget per final output miter (0 = unlimited).
    pub final_conflict_limit: u64,
    /// Replay every counterexample through the batch *and* compiled
    /// simulators before reporting (the differential honesty oracle).
    pub replay: bool,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            clock: None,
            state_match: StateMatch::ByName,
            seed: 0x51c3_a9e4_0b7d_2f18,
            sim_rounds: 2,
            sweep: true,
            sweep_conflict_limit: 2_000,
            final_conflict_limit: 0,
            replay: true,
        }
    }
}

/// One matched state element in a counterexample: the value the cut
/// assigns to it, under both designs' names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateAssign {
    /// Path in the golden design.
    pub golden_path: String,
    /// Path in the revised design (equal to `golden_path` under
    /// [`StateMatch::ByName`]).
    pub revised_path: String,
    /// Assigned state value (width 1 for FFs, 16 for memories).
    pub value: LogicVec,
}

/// A distinguishing assignment over the matched cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The differing output function (golden-side naming), e.g.
    /// `y[3]` or `next(top/acc/ff0)[0]`.
    pub function: String,
    /// Input port assignments (clock excluded).
    pub inputs: Vec<(String, LogicVec)>,
    /// State assignments across the register cut.
    pub state: Vec<StateAssign>,
    /// The function's value in the golden design.
    pub golden_value: bool,
    /// The function's value in the revised design.
    pub revised_value: bool,
}

/// The verdict of a completed check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivVerdict {
    /// All output and next-state functions proved equal over the
    /// matched cut.
    Equivalent,
    /// A distinguishing assignment exists (replay-confirmed when
    /// replay is enabled).
    NotEquivalent(Box<Counterexample>),
}

/// A completed equivalence check with engine statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// Proved equivalent, or the counterexample.
    pub verdict: EquivVerdict,
    /// How the proof was discharged.
    pub stats: CecStats,
}

impl EquivReport {
    /// `true` when the designs proved equivalent.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        matches!(self.verdict, EquivVerdict::Equivalent)
    }
}

/// What one shared AIG input feeds.
enum CutIn {
    Port { port: usize, bit: usize },
    State { pair: usize, bit: usize },
}

/// Checks two flattened designs for equivalence over their matched
/// primary I/O and register cut.
///
/// # Errors
///
/// Boundary mismatches, combinational loops, black boxes, undriven
/// nets, SAT resource exhaustion, and replay-oracle disagreements all
/// refuse the check; see [`VerifyError`]. A *completed* check that
/// finds the designs different returns
/// [`EquivVerdict::NotEquivalent`], not an error.
pub fn check_equiv(
    golden: &FlatNetlist,
    revised: &FlatNetlist,
    cfg: &EquivConfig,
) -> Result<EquivReport, VerifyError> {
    let clock = cfg.clock.as_deref();
    let g_graph = NetlistGraph::build(golden, clock)?;
    let r_graph = NetlistGraph::build(revised, clock)?;

    match_ports(&g_graph, &r_graph)?;
    let pairs = match_state(&g_graph, &r_graph, cfg.state_match)?;

    // Shared cut inputs: primary-input bits (clock excluded), then
    // state bits pair by pair.
    let mut aig = Aig::new();
    let mut cut_ins: Vec<CutIn> = Vec::new();
    let mut port_lit: HashMap<(String, usize), Lit> = HashMap::new();
    let input_ports: Vec<(usize, String, usize)> = g_graph
        .ports
        .iter()
        .enumerate()
        .filter(|(_, p)| p.dir == PortDir::Input)
        .filter(|(_, p)| !p.nets.iter().all(|&n| g_graph.is_clock_net(n)))
        .map(|(i, p)| (i, p.name.clone(), p.nets.len()))
        .collect();
    for (pi, name, width) in &input_ports {
        for bit in 0..*width {
            let lit = aig.input();
            port_lit.insert((name.clone(), bit), lit);
            cut_ins.push(CutIn::Port { port: *pi, bit });
        }
    }
    let mut g_state_lit: HashMap<(String, usize), Lit> = HashMap::new();
    let mut r_state_lit: HashMap<(String, usize), Lit> = HashMap::new();
    for (pair_idx, (g_elem, r_elem)) in pairs.iter().enumerate() {
        let bits = g_graph.seq[*g_elem].kind.state_bits();
        for bit in 0..bits {
            let lit = aig.input();
            g_state_lit.insert((g_graph.seq[*g_elem].path.clone(), bit), lit);
            r_state_lit.insert((r_graph.seq[*r_elem].path.clone(), bit), lit);
            cut_ins.push(CutIn::State {
                pair: pair_idx,
                bit,
            });
        }
    }

    // Lower both designs over the shared cut.
    let g_outs = lower_into(
        &mut aig,
        &g_graph,
        golden.design_name(),
        &port_lit,
        &g_state_lit,
    )?;
    let r_outs = lower_into(
        &mut aig,
        &r_graph,
        revised.design_name(),
        &port_lit,
        &r_state_lit,
    )?;

    // Join output functions under golden-side naming: revised state
    // paths translate through the pairing.
    let r_path_to_g: HashMap<&str, &str> = pairs
        .iter()
        .map(|(g, r)| (r_graph.seq[*r].path.as_str(), g_graph.seq[*g].path.as_str()))
        .collect();
    let mut r_by_id: HashMap<OutId, Lit> = HashMap::new();
    for out in &r_outs {
        let id = match &out.id {
            OutId::Port { port, bit } => OutId::Port {
                port: port.clone(),
                bit: *bit,
            },
            OutId::NextState { path, bit } => OutId::NextState {
                path: (*r_path_to_g.get(path.as_str()).expect("paired state path")).to_owned(),
                bit: *bit,
            },
        };
        r_by_id.insert(id, out.lit);
    }
    let mut miter_pairs: Vec<(Lit, Lit)> = Vec::with_capacity(g_outs.len());
    let mut labels: Vec<String> = Vec::with_capacity(g_outs.len());
    let mut ids: Vec<OutId> = Vec::with_capacity(g_outs.len());
    for out in &g_outs {
        let r_lit = r_by_id
            .get(&out.id)
            .copied()
            .ok_or_else(|| VerifyError::StateMismatch {
                detail: format!("revised design lacks function {}", out.id.display()),
            })?;
        miter_pairs.push((out.lit, r_lit));
        labels.push(out.id.display());
        ids.push(out.id.clone());
    }

    let cec_opts = CecOptions {
        seed: cfg.seed,
        sim_rounds: cfg.sim_rounds,
        sweep: cfg.sweep,
        sweep_conflict_limit: cfg.sweep_conflict_limit,
        final_conflict_limit: cfg.final_conflict_limit,
    };
    let (result, stats) = check_pairs(&aig, &miter_pairs, &labels, &cec_opts)?;

    let verdict = match result {
        CecResult::Equivalent => EquivVerdict::Equivalent,
        CecResult::Counterexample(raw) => {
            // Decode the flat input pattern into port/state values.
            let mut port_vals: Vec<LogicVec> = input_ports
                .iter()
                .map(|(_, _, w)| LogicVec::zeros(*w))
                .collect();
            let mut state_vals: Vec<LogicVec> = pairs
                .iter()
                .map(|(g, _)| LogicVec::zeros(g_graph.seq[*g].kind.state_bits()))
                .collect();
            for (k, cut) in cut_ins.iter().enumerate() {
                let v = ipd_hdl::Logic::from_bool(raw.inputs[k]);
                match cut {
                    CutIn::Port { port, bit } => {
                        let pos = input_ports
                            .iter()
                            .position(|(pi, _, _)| pi == port)
                            .expect("input port recorded");
                        port_vals[pos].set_bit(*bit, v);
                    }
                    CutIn::State { pair, bit } => state_vals[*pair].set_bit(*bit, v),
                }
            }
            let inputs: Vec<(String, LogicVec)> = input_ports
                .iter()
                .zip(&port_vals)
                .map(|((_, name, _), v)| (name.clone(), v.clone()))
                .collect();
            let state: Vec<StateAssign> = pairs
                .iter()
                .zip(&state_vals)
                .map(|((g, r), v)| StateAssign {
                    golden_path: g_graph.seq[*g].path.clone(),
                    revised_path: r_graph.seq[*r].path.clone(),
                    value: v.clone(),
                })
                .collect();
            let cex = Counterexample {
                function: labels[raw.pair].clone(),
                inputs,
                state,
                golden_value: raw.golden_value,
                revised_value: raw.revised_value,
            };
            if cfg.replay {
                replay::confirm(golden, revised, cfg, &cex, &ids[raw.pair])?;
            }
            EquivVerdict::NotEquivalent(Box::new(cex))
        }
    };
    Ok(EquivReport { verdict, stats })
}

/// Validates that the primary port boundaries agree.
fn match_ports(g: &NetlistGraph, r: &NetlistGraph) -> Result<(), VerifyError> {
    let shape = |graph: &NetlistGraph| -> Vec<(String, PortDir, usize)> {
        let mut v: Vec<_> = graph
            .ports
            .iter()
            .map(|p| (p.name.clone(), p.dir, p.nets.len()))
            .collect();
        v.sort();
        v
    };
    let gs = shape(g);
    let rs = shape(r);
    if gs != rs {
        for (a, b) in gs.iter().zip(rs.iter()) {
            if a != b {
                return Err(VerifyError::PortMismatch {
                    detail: format!(
                        "golden has {} {:?}[{}], revised has {} {:?}[{}]",
                        a.0, a.1, a.2, b.0, b.1, b.2
                    ),
                });
            }
        }
        return Err(VerifyError::PortMismatch {
            detail: format!("golden has {} ports, revised {}", gs.len(), rs.len()),
        });
    }
    Ok(())
}

/// Shape of one sequential element for boundary comparison.
fn seq_shape(kind: &SeqKind) -> (usize, String) {
    match kind {
        SeqKind::Ff { init, .. } => (1, format!("ff init={init:?}")),
        SeqKind::Srl16 { init, .. } => (16, format!("srl16 init={init:#06x}")),
        SeqKind::Ram16 { init, .. } => (16, format!("ram16 init={init:#06x}")),
    }
}

/// Pairs sequential elements between the designs; returns index pairs
/// (golden, revised) into the respective `seq` lists.
fn match_state(
    g: &NetlistGraph,
    r: &NetlistGraph,
    mode: StateMatch,
) -> Result<Vec<(usize, usize)>, VerifyError> {
    if g.seq.len() != r.seq.len() {
        return Err(VerifyError::StateMismatch {
            detail: format!(
                "golden has {} sequential elements, revised {}",
                g.seq.len(),
                r.seq.len()
            ),
        });
    }
    let pairs: Vec<(usize, usize)> = match mode {
        StateMatch::ByPosition => (0..g.seq.len()).map(|i| (i, i)).collect(),
        StateMatch::ByName => {
            let mut gi: Vec<usize> = (0..g.seq.len()).collect();
            let mut ri: Vec<usize> = (0..r.seq.len()).collect();
            gi.sort_by(|&a, &b| g.seq[a].path.cmp(&g.seq[b].path));
            ri.sort_by(|&a, &b| r.seq[a].path.cmp(&r.seq[b].path));
            for (&a, &b) in gi.iter().zip(ri.iter()) {
                if g.seq[a].path != r.seq[b].path {
                    return Err(VerifyError::StateMismatch {
                        detail: format!(
                            "no match for state element '{}' vs '{}'",
                            g.seq[a].path, r.seq[b].path
                        ),
                    });
                }
            }
            gi.into_iter().zip(ri).collect()
        }
    };
    for &(a, b) in &pairs {
        let sa = seq_shape(&g.seq[a].kind);
        let sb = seq_shape(&r.seq[b].kind);
        if sa != sb {
            return Err(VerifyError::StateMismatch {
                detail: format!(
                    "'{}' is {} but '{}' is {}",
                    g.seq[a].path, sa.1, r.seq[b].path, sb.1
                ),
            });
        }
    }
    Ok(pairs)
}
