//! Error type for the equivalence engine.

use std::fmt;

use ipd_sim::SimError;

/// Why an equivalence check could not be carried out.
///
/// Note that a *completed* check that finds the designs different is
/// not an error — that is [`EquivVerdict::NotEquivalent`]
/// (crate::EquivVerdict::NotEquivalent) with a counterexample. These
/// variants cover designs the engine cannot soundly compare at all,
/// resource exhaustion, and internal-consistency failures.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The two designs' primary ports differ.
    PortMismatch {
        /// Human-readable description of the first difference.
        detail: String,
    },
    /// The two designs' sequential boundaries (register cut) differ.
    StateMismatch {
        /// Human-readable description of the first difference.
        detail: String,
    },
    /// A design contains a combinational cycle; cones cannot be
    /// lowered to an acyclic AIG.
    CombLoop {
        /// Design name.
        design: String,
    },
    /// A design contains protected black boxes with unknown function.
    BlackBox {
        /// Design name.
        design: String,
    },
    /// A net read by logic has no driver (would simulate as `X`; a
    /// two-valued proof over it would be unsound).
    UndrivenNet {
        /// Design name.
        design: String,
        /// Hierarchical net name.
        net: String,
    },
    /// The SAT solver exhausted its conflict budget before deciding a
    /// miter; the check is inconclusive, not a verdict.
    ResourceLimit {
        /// Which output function timed out.
        function: String,
        /// Conflicts spent.
        conflicts: u64,
    },
    /// A SAT counterexample disagreed with a simulator replay — an
    /// internal soundness bug in the engine itself, reported loudly
    /// rather than papered over.
    OracleDisagreement {
        /// Which oracle disagreed (`batch` or `compiled`).
        oracle: String,
        /// Which output function was replayed.
        function: String,
        /// What the AIG/SAT side predicted.
        expected: String,
        /// What the simulator observed.
        observed: String,
    },
    /// Simulator construction or replay failed.
    Sim(SimError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::PortMismatch { detail } => {
                write!(f, "primary port boundaries differ: {detail}")
            }
            VerifyError::StateMismatch { detail } => {
                write!(f, "sequential boundaries differ: {detail}")
            }
            VerifyError::CombLoop { design } => {
                write!(
                    f,
                    "design '{design}' has a combinational cycle; cannot lower to AIG"
                )
            }
            VerifyError::BlackBox { design } => {
                write!(
                    f,
                    "design '{design}' has protected black boxes with unknown function"
                )
            }
            VerifyError::UndrivenNet { design, net } => {
                write!(f, "design '{design}' reads undriven net '{net}'")
            }
            VerifyError::ResourceLimit {
                function,
                conflicts,
            } => {
                write!(
                    f,
                    "SAT budget exhausted proving '{function}' ({conflicts} conflicts); inconclusive"
                )
            }
            VerifyError::OracleDisagreement {
                oracle,
                function,
                expected,
                observed,
            } => {
                write!(
                    f,
                    "INTERNAL: {oracle} simulator replay of counterexample for '{function}' \
                     observed {observed}, SAT model predicted {expected}"
                )
            }
            VerifyError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for VerifyError {
    fn from(e: SimError) -> Self {
        VerifyError::Sim(e)
    }
}
