//! Counterexample honesty: differential replay through both
//! simulation engines.
//!
//! A SAT counterexample is a claim about a design's behaviour, and
//! the claim is only as good as the lowering that produced it. Before
//! any counterexample leaves this crate, it is replayed — inputs set,
//! register cut forced through the state back doors, outputs peeked
//! (or one clock edge stepped for next-state functions) — through the
//! interpreted [`BatchSimulator`] *and* the bytecode
//! [`CompiledSimulator`], on both designs. Any disagreement between
//! the SAT model and either engine is reported as a loud
//! [`VerifyError::OracleDisagreement`] internal error rather than a
//! bogus verdict.

use ipd_hdl::{FlatNetlist, Logic, LogicVec};
use ipd_sim::{BatchSimulator, CompiledSimulator, SimError};

use crate::equiv::{Counterexample, EquivConfig, StateAssign};
use crate::error::VerifyError;
use crate::lower::OutId;

/// The simulator surface replay needs, so both engines run the exact
/// same script.
trait ReplaySim {
    fn set_lane(&mut self, port: &str, lane: usize, value: &LogicVec) -> Result<(), SimError>;
    fn peek_lane(&mut self, port: &str, lane: usize) -> Result<LogicVec, SimError>;
    fn cycle(&mut self, n: u64) -> Result<(), SimError>;
    fn ff_state_lane(&self, path: &str, lane: usize) -> Option<Logic>;
    fn memory_lane(&self, path: &str, lane: usize) -> Option<LogicVec>;
    fn set_ff_lane(&mut self, path: &str, lane: usize, value: Logic) -> bool;
    fn set_memory_lane(&mut self, path: &str, lane: usize, value: &LogicVec) -> bool;
}

macro_rules! impl_replay_sim {
    ($t:ty) => {
        impl ReplaySim for $t {
            fn set_lane(
                &mut self,
                port: &str,
                lane: usize,
                value: &LogicVec,
            ) -> Result<(), SimError> {
                <$t>::set_lane(self, port, lane, value)
            }
            fn peek_lane(&mut self, port: &str, lane: usize) -> Result<LogicVec, SimError> {
                <$t>::peek_lane(self, port, lane)
            }
            fn cycle(&mut self, n: u64) -> Result<(), SimError> {
                <$t>::cycle(self, n)
            }
            fn ff_state_lane(&self, path: &str, lane: usize) -> Option<Logic> {
                <$t>::ff_state_lane(self, path, lane)
            }
            fn memory_lane(&self, path: &str, lane: usize) -> Option<LogicVec> {
                <$t>::memory_lane(self, path, lane)
            }
            fn set_ff_lane(&mut self, path: &str, lane: usize, value: Logic) -> bool {
                <$t>::set_ff_lane(self, path, lane, value)
            }
            fn set_memory_lane(&mut self, path: &str, lane: usize, value: &LogicVec) -> bool {
                <$t>::set_memory_lane(self, path, lane, value)
            }
        }
    };
}

impl_replay_sim!(BatchSimulator);
impl_replay_sim!(CompiledSimulator);

/// Confirms a counterexample against both engines on both designs.
///
/// # Errors
///
/// [`VerifyError::OracleDisagreement`] when any engine observes a
/// value other than the SAT model's prediction; [`VerifyError::Sim`]
/// when replay itself cannot run.
pub fn confirm(
    golden: &FlatNetlist,
    revised: &FlatNetlist,
    cfg: &EquivConfig,
    cex: &Counterexample,
    id: &OutId,
) -> Result<(), VerifyError> {
    // The revised design addresses its own state paths.
    let revised_id = match id {
        OutId::Port { .. } => id.clone(),
        OutId::NextState { path, bit } => {
            let sa = cex
                .state
                .iter()
                .find(|s| &s.golden_path == path)
                .expect("counterexample covers the matched cut");
            OutId::NextState {
                path: sa.revised_path.clone(),
                bit: *bit,
            }
        }
    };
    for (flat, target, expected, side, by_golden_path) in [
        (golden, id, cex.golden_value, "golden", true),
        (revised, &revised_id, cex.revised_value, "revised", false),
    ] {
        let clock = cfg.clock.as_deref();
        let mut batch = BatchSimulator::from_flat(flat, clock, 1)?;
        replay_one(
            &mut batch,
            "batch",
            cex,
            target,
            expected,
            side,
            by_golden_path,
        )?;
        let mut compiled = CompiledSimulator::from_flat(flat, clock, 1)?;
        replay_one(
            &mut compiled,
            "compiled",
            cex,
            target,
            expected,
            side,
            by_golden_path,
        )?;
    }
    Ok(())
}

fn state_path(sa: &StateAssign, by_golden_path: bool) -> &str {
    if by_golden_path {
        &sa.golden_path
    } else {
        &sa.revised_path
    }
}

fn replay_one(
    sim: &mut dyn ReplaySim,
    oracle: &str,
    cex: &Counterexample,
    target: &OutId,
    expected: bool,
    side: &str,
    by_golden_path: bool,
) -> Result<(), VerifyError> {
    let function = format!("{side}:{}", target.display());
    let disagree = |observed: String| VerifyError::OracleDisagreement {
        oracle: oracle.to_owned(),
        function: function.clone(),
        expected: if expected { "1".into() } else { "0".into() },
        observed,
    };
    for (port, value) in &cex.inputs {
        sim.set_lane(port, 0, value)?;
    }
    for sa in &cex.state {
        let path = state_path(sa, by_golden_path);
        let forced = if sa.value.width() == 1 {
            sim.set_ff_lane(path, 0, sa.value.bit(0))
        } else {
            sim.set_memory_lane(path, 0, &sa.value)
        };
        if !forced {
            return Err(disagree(format!("state back door refused '{path}'")));
        }
    }
    let observed = match target {
        OutId::Port { port, bit } => sim.peek_lane(port, 0)?.bit(*bit),
        OutId::NextState { path, bit } => {
            sim.cycle(1)?;
            if *bit == 0 {
                if let Some(v) = sim.ff_state_lane(path, 0) {
                    v
                } else if let Some(word) = sim.memory_lane(path, 0) {
                    word.bit(*bit)
                } else {
                    return Err(disagree(format!("state element '{path}' not found")));
                }
            } else if let Some(word) = sim.memory_lane(path, 0) {
                word.bit(*bit)
            } else {
                return Err(disagree(format!("state element '{path}' not found")));
            }
        }
    };
    if observed != Logic::from_bool(expected) {
        return Err(disagree(format!("{observed:?}")));
    }
    Ok(())
}
