//! Counterexample honesty: differential replay through both
//! simulation engines.
//!
//! A SAT counterexample is a claim about a design's behaviour, and
//! the claim is only as good as the lowering that produced it. Before
//! any counterexample leaves this crate, it is replayed — inputs set,
//! register cut forced through the state back doors, outputs peeked
//! (or one clock edge stepped for next-state functions) — through the
//! interpreted [`BatchSimulator`] *and* the bytecode
//! [`CompiledSimulator`], on both designs. Any disagreement between
//! the SAT model and either engine is reported as a loud
//! [`VerifyError::OracleDisagreement`] internal error rather than a
//! bogus verdict.

use ipd_hdl::{FlatNetlist, Logic, LogicVec};
use ipd_sim::{BatchSimulator, CompiledSimulator, SimError};

use crate::equiv::{Counterexample, EquivConfig, StateAssign};
use crate::error::VerifyError;
use crate::lower::OutId;
use crate::oracle::{Witness, WitnessCheck};

/// The simulator surface replay needs, so both engines run the exact
/// same script.
trait ReplaySim {
    fn set_lane(&mut self, port: &str, lane: usize, value: &LogicVec) -> Result<(), SimError>;
    fn peek_lane(&mut self, port: &str, lane: usize) -> Result<LogicVec, SimError>;
    fn cycle(&mut self, n: u64) -> Result<(), SimError>;
    fn ff_state_lane(&self, path: &str, lane: usize) -> Option<Logic>;
    fn memory_lane(&self, path: &str, lane: usize) -> Option<LogicVec>;
    fn set_ff_lane(&mut self, path: &str, lane: usize, value: Logic) -> bool;
    fn set_memory_lane(&mut self, path: &str, lane: usize, value: &LogicVec) -> bool;
    fn peek_net_lane(&mut self, net: &str, lane: usize) -> Result<Logic, SimError>;
}

macro_rules! impl_replay_sim {
    ($t:ty) => {
        impl ReplaySim for $t {
            fn set_lane(
                &mut self,
                port: &str,
                lane: usize,
                value: &LogicVec,
            ) -> Result<(), SimError> {
                <$t>::set_lane(self, port, lane, value)
            }
            fn peek_lane(&mut self, port: &str, lane: usize) -> Result<LogicVec, SimError> {
                <$t>::peek_lane(self, port, lane)
            }
            fn cycle(&mut self, n: u64) -> Result<(), SimError> {
                <$t>::cycle(self, n)
            }
            fn ff_state_lane(&self, path: &str, lane: usize) -> Option<Logic> {
                <$t>::ff_state_lane(self, path, lane)
            }
            fn memory_lane(&self, path: &str, lane: usize) -> Option<LogicVec> {
                <$t>::memory_lane(self, path, lane)
            }
            fn set_ff_lane(&mut self, path: &str, lane: usize, value: Logic) -> bool {
                <$t>::set_ff_lane(self, path, lane, value)
            }
            fn set_memory_lane(&mut self, path: &str, lane: usize, value: &LogicVec) -> bool {
                <$t>::set_memory_lane(self, path, lane, value)
            }
            fn peek_net_lane(&mut self, net: &str, lane: usize) -> Result<Logic, SimError> {
                <$t>::peek_net_lane(self, net, lane)
            }
        }
    };
}

impl_replay_sim!(BatchSimulator);
impl_replay_sim!(CompiledSimulator);

/// Confirms a counterexample against both engines on both designs.
///
/// # Errors
///
/// [`VerifyError::OracleDisagreement`] when any engine observes a
/// value other than the SAT model's prediction; [`VerifyError::Sim`]
/// when replay itself cannot run.
pub fn confirm(
    golden: &FlatNetlist,
    revised: &FlatNetlist,
    cfg: &EquivConfig,
    cex: &Counterexample,
    id: &OutId,
) -> Result<(), VerifyError> {
    // The revised design addresses its own state paths.
    let revised_id = match id {
        OutId::Port { .. } => id.clone(),
        OutId::NextState { path, bit } => {
            let sa = cex
                .state
                .iter()
                .find(|s| &s.golden_path == path)
                .expect("counterexample covers the matched cut");
            OutId::NextState {
                path: sa.revised_path.clone(),
                bit: *bit,
            }
        }
    };
    for (flat, target, expected, side, by_golden_path) in [
        (golden, id, cex.golden_value, "golden", true),
        (revised, &revised_id, cex.revised_value, "revised", false),
    ] {
        let clock = cfg.clock.as_deref();
        let mut batch = BatchSimulator::from_flat(flat, clock, 1)?;
        replay_one(
            &mut batch,
            "batch",
            cex,
            target,
            expected,
            side,
            by_golden_path,
        )?;
        let mut compiled = CompiledSimulator::from_flat(flat, clock, 1)?;
        replay_one(
            &mut compiled,
            "compiled",
            cex,
            target,
            expected,
            side,
            by_golden_path,
        )?;
    }
    Ok(())
}

fn state_path(sa: &StateAssign, by_golden_path: bool) -> &str {
    if by_golden_path {
        &sa.golden_path
    } else {
        &sa.revised_path
    }
}

fn replay_one(
    sim: &mut dyn ReplaySim,
    oracle: &str,
    cex: &Counterexample,
    target: &OutId,
    expected: bool,
    side: &str,
    by_golden_path: bool,
) -> Result<(), VerifyError> {
    let function = format!("{side}:{}", target.display());
    let disagree = |observed: String| VerifyError::OracleDisagreement {
        oracle: oracle.to_owned(),
        function: function.clone(),
        expected: if expected { "1".into() } else { "0".into() },
        observed,
    };
    for (port, value) in &cex.inputs {
        sim.set_lane(port, 0, value)?;
    }
    for sa in &cex.state {
        let path = state_path(sa, by_golden_path);
        let forced = if sa.value.width() == 1 {
            sim.set_ff_lane(path, 0, sa.value.bit(0))
        } else {
            sim.set_memory_lane(path, 0, &sa.value)
        };
        if !forced {
            return Err(disagree(format!("state back door refused '{path}'")));
        }
    }
    let observed = match target {
        OutId::Port { port, bit } => sim.peek_lane(port, 0)?.bit(*bit),
        OutId::NextState { path, bit } => {
            sim.cycle(1)?;
            if *bit == 0 {
                if let Some(v) = sim.ff_state_lane(path, 0) {
                    v
                } else if let Some(word) = sim.memory_lane(path, 0) {
                    word.bit(*bit)
                } else {
                    return Err(disagree(format!("state element '{path}' not found")));
                }
            } else if let Some(word) = sim.memory_lane(path, 0) {
                word.bit(*bit)
            } else {
                return Err(disagree(format!("state element '{path}' not found")));
            }
        }
    };
    if observed != Logic::from_bool(expected) {
        return Err(disagree(format!("{observed:?}")));
    }
    Ok(())
}

/// Confirms an [`Oracle`](crate::Oracle) witness against both engines
/// on the same design: inputs set, state forced, the claimed net (and
/// its partner, for equality refutations) peeked.
///
/// # Errors
///
/// [`VerifyError::OracleDisagreement`] when either engine observes a
/// value other than the witness's prediction; [`VerifyError::Sim`]
/// when replay itself cannot run.
pub(crate) fn confirm_witness(
    flat: &FlatNetlist,
    clock: Option<&str>,
    w: &Witness,
) -> Result<(), VerifyError> {
    let mut batch = BatchSimulator::from_flat(flat, clock, 1)?;
    replay_witness(&mut batch, "batch", w)?;
    let mut compiled = CompiledSimulator::from_flat(flat, clock, 1)?;
    replay_witness(&mut compiled, "compiled", w)?;
    Ok(())
}

/// Two observations agree when equal — or when an expected `X`
/// meets any undriven value (the engines distinguish `X`/`Z`, the
/// dual-rail encoding only tracks known/unknown).
fn witness_agrees(expected: Logic, observed: Logic) -> bool {
    if expected.is_driven() {
        observed == expected
    } else {
        !observed.is_driven()
    }
}

fn apply_witness(sim: &mut dyn ReplaySim, w: &Witness) -> Result<(), VerifyError> {
    for (port, value) in &w.inputs {
        sim.set_lane(port, 0, value)?;
    }
    for (path, value) in &w.state {
        let forced = if value.width() == 1 {
            sim.set_ff_lane(path, 0, value.bit(0))
        } else {
            sim.set_memory_lane(path, 0, value)
        };
        if !forced {
            return Err(VerifyError::OracleDisagreement {
                oracle: "replay".into(),
                function: w.net.clone(),
                expected: "forcible state".into(),
                observed: format!("state back door refused '{path}'"),
            });
        }
    }
    Ok(())
}

fn replay_witness(sim: &mut dyn ReplaySim, oracle: &str, w: &Witness) -> Result<(), VerifyError> {
    let disagree = |expected: String, observed: String| VerifyError::OracleDisagreement {
        oracle: oracle.to_owned(),
        function: w.net.clone(),
        expected,
        observed,
    };
    match &w.check {
        WitnessCheck::NetEquals { value } => {
            apply_witness(sim, w)?;
            let observed = sim.peek_net_lane(&w.net, 0)?;
            if !witness_agrees(*value, observed) {
                return Err(disagree(format!("{value:?}"), format!("{observed:?}")));
            }
        }
        WitnessCheck::NetToggles {
            port,
            bit,
            low,
            high,
        } => {
            for (phase, expected) in [(Logic::Zero, *low), (Logic::One, *high)] {
                apply_witness(sim, w)?;
                let mut v = w
                    .inputs
                    .iter()
                    .find(|(p, _)| p == port)
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| {
                        disagree(
                            format!("input port '{port}'"),
                            "missing from witness".into(),
                        )
                    })?;
                v.set_bit(*bit, phase);
                sim.set_lane(port, 0, &v)?;
                let observed = sim.peek_net_lane(&w.net, 0)?;
                if !witness_agrees(expected, observed) {
                    return Err(disagree(
                        format!("{expected:?} with {port}[{bit}]={phase:?}"),
                        format!("{observed:?}"),
                    ));
                }
            }
        }
        WitnessCheck::NetsDiffer {
            other,
            value,
            other_value,
        } => {
            apply_witness(sim, w)?;
            let observed = sim.peek_net_lane(&w.net, 0)?;
            if !witness_agrees(*value, observed) {
                return Err(disagree(format!("{value:?}"), format!("{observed:?}")));
            }
            let observed_other = sim.peek_net_lane(other, 0)?;
            if !witness_agrees(*other_value, observed_other) {
                return Err(disagree(
                    format!("{other_value:?} on '{other}'"),
                    format!("{observed_other:?}"),
                ));
            }
        }
    }
    Ok(())
}
