//! Simulation-guided SAT sweeping and miter proving.
//!
//! Both designs lower into ONE shared AIG over the same cut inputs,
//! so structural hashing alone already merges identical cones. What
//! remains is fraig-style sweeping: 256-lane random simulation
//! buckets nodes by signature, candidate-equal pairs are proved (or
//! refuted) with incremental miter SAT calls, and proven pairs merge
//! — rebuilding a reduced AIG bottom-up in which most output pairs
//! collapse to the same literal before the final miters ever run.
//! Counterexamples from failed proofs are stamped back into the
//! signatures so later buckets are refined by everything the solver
//! has learnt.

use std::collections::HashMap;

use crate::aig::{Aig, Lit, Node, FALSE, SIG_WORDS};
use crate::error::VerifyError;
use crate::sat::{SatLit, SatResult, Solver, Var};

/// Tuning knobs for one CEC run.
#[derive(Debug, Clone)]
pub struct CecOptions {
    /// PRNG seed for the random signature patterns.
    pub seed: u64,
    /// Number of 256-pattern random simulation words.
    pub sim_rounds: usize,
    /// Run the fraig sweep (merging internal equivalences) before the
    /// output miters. Disabling falls back to structural hashing plus
    /// output-level SAT only.
    pub sweep: bool,
    /// Conflict budget per sweep-phase SAT query (0 = unlimited). An
    /// exhausted budget just skips the merge — never unsound.
    pub sweep_conflict_limit: u64,
    /// Conflict budget per final output miter (0 = unlimited). An
    /// exhausted budget aborts with `ResourceLimit`.
    pub final_conflict_limit: u64,
}

impl Default for CecOptions {
    fn default() -> Self {
        CecOptions {
            seed: 0x1bd5_41f8_9c3a_7e62,
            sim_rounds: 2,
            sweep: true,
            sweep_conflict_limit: 2_000,
            final_conflict_limit: 0,
        }
    }
}

/// Counters describing how a check was discharged.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CecStats {
    /// AND nodes in the shared (pre-sweep) AIG.
    pub aig_ands: usize,
    /// AND nodes in the reduced AIG after sweeping.
    pub reduced_ands: usize,
    /// Random simulation patterns applied.
    pub sim_patterns: usize,
    /// Node pairs merged by sweep-phase SAT proofs.
    pub merged: usize,
    /// Total SAT queries (each up to two solver calls).
    pub sat_queries: u64,
    /// Total solver conflicts across all queries.
    pub sat_conflicts: u64,
    /// Output pairs already identical after sweeping (no final miter
    /// SAT needed).
    pub outputs_by_hash: usize,
    /// Output pairs checked.
    pub outputs_checked: usize,
}

/// A distinguishing input assignment over the shared cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawCounterexample {
    /// Index of the failing pair in the caller's list.
    pub pair: usize,
    /// One bit per shared AIG input, in input-creation order.
    pub inputs: Vec<bool>,
    /// Value of the first design's function under `inputs`.
    pub golden_value: bool,
    /// Value of the second design's function under `inputs`.
    pub revised_value: bool,
}

/// Outcome of a CEC run: proved equivalent, or a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecResult {
    /// Every output pair proved equal.
    Equivalent,
    /// A distinguishing assignment was found (already verified against
    /// the AIG itself; simulator replay happens one level up).
    Counterexample(RawCounterexample),
}

/// Checks the given `(golden, revised)` literal pairs for functional
/// equality over all shared inputs. `labels[i]` names pair `i` for
/// resource-limit errors.
///
/// # Errors
///
/// [`VerifyError::ResourceLimit`] when a final miter exhausts its
/// conflict budget — inconclusive, never a verdict.
pub fn check_pairs(
    aig: &Aig,
    pairs: &[(Lit, Lit)],
    labels: &[String],
    opts: &CecOptions,
) -> Result<(CecResult, CecStats), VerifyError> {
    let mut stats = CecStats {
        aig_ands: aig.num_ands(),
        outputs_checked: pairs.len(),
        ..CecStats::default()
    };
    // Structural hashing is itself a proof: when every miter pair
    // strashed to the same literal (identity checks, EDIF round
    // trips, any resynthesis the two-level rewriter normalizes away),
    // the check is complete before any simulation or SAT.
    if pairs.iter().all(|&(g, r)| g == r) {
        stats.reduced_ands = stats.aig_ands;
        stats.outputs_by_hash = pairs.len();
        return Ok((CecResult::Equivalent, stats));
    }
    let mut sweeper = Sweeper::new(aig, opts);
    sweeper.run(opts.sweep, &mut stats);
    stats.reduced_ands = sweeper.red.num_ands();
    stats.sim_patterns = sweeper.sig_len * 64;

    // Final miters over the reduced literals.
    for (i, &(g, r)) in pairs.iter().enumerate() {
        let rg = sweeper.repr_lit(g);
        let rr = sweeper.repr_lit(r);
        if rg == rr {
            stats.outputs_by_hash += 1;
            continue;
        }
        stats.sat_queries += 1;
        match sweeper.prove_eq(rg, rr, opts.final_conflict_limit) {
            Proof::Equal => {}
            Proof::Unknown => {
                return Err(VerifyError::ResourceLimit {
                    function: labels[i].clone(),
                    conflicts: opts.final_conflict_limit,
                });
            }
            Proof::Diff(pattern) => {
                stats.sat_conflicts = sweeper.solver.total_conflicts();
                // Cross-check against the reduced AIG itself before
                // reporting (the SAT model must reproduce there).
                let gv = sweeper.red.eval(rg, &pattern);
                let rv = sweeper.red.eval(rr, &pattern);
                debug_assert_ne!(gv, rv, "SAT model does not distinguish the miter");
                return Ok((
                    CecResult::Counterexample(RawCounterexample {
                        pair: i,
                        inputs: pattern,
                        golden_value: gv,
                        revised_value: rv,
                    }),
                    stats,
                ));
            }
        }
    }
    stats.sat_conflicts = sweeper.solver.total_conflicts();
    Ok((CecResult::Equivalent, stats))
}

enum Proof {
    Equal,
    Diff(Vec<bool>),
    Unknown,
}

/// The sweep state: a reduced AIG rebuilt bottom-up, signatures, the
/// candidate classes, and the lazy Tseitin encoding into one
/// incremental solver.
struct Sweeper<'a> {
    orig: &'a Aig,
    red: Aig,
    /// Original node → representative literal in `red`.
    repr: Vec<Lit>,
    /// `red` input literals in creation order.
    red_inputs: Vec<Lit>,
    /// Per-`red`-node signature words.
    sigs: Vec<Vec<u64>>,
    /// Current signature length in u64 words.
    sig_len: usize,
    /// Random input patterns for `red` inputs (parallel to
    /// `red_inputs`), extended when counterexamples are stamped in.
    input_sigs: Vec<Vec<u64>>,
    /// Members eligible for candidate matching (reduced literals).
    class_members: Vec<Lit>,
    /// Normalized signature → members, rebuilt after stamping.
    classes: HashMap<Vec<u64>, Vec<Lit>>,
    /// Counterexample patterns awaiting a stamp-in flush.
    pending: Vec<Vec<bool>>,
    /// Lazy Tseitin: `red` node → solver var.
    sat_var: Vec<Option<Var>>,
    solver: Solver,
    sweep_budget: u64,
}

impl<'a> Sweeper<'a> {
    fn new(orig: &'a Aig, opts: &CecOptions) -> Self {
        let mut rng = XorShift(opts.seed | 1);
        let sig_len = opts.sim_rounds.max(1) * SIG_WORDS;
        let input_sigs: Vec<Vec<u64>> = (0..orig.num_inputs())
            .map(|_| (0..sig_len).map(|_| rng.next()).collect())
            .collect();
        Sweeper {
            orig,
            red: Aig::new(),
            repr: Vec::with_capacity(orig.len()),
            red_inputs: Vec::new(),
            sigs: vec![vec![0; sig_len]], // node 0: constant false
            sig_len,
            input_sigs,
            class_members: vec![FALSE],
            classes: HashMap::new(),
            pending: Vec::new(),
            sat_var: vec![None],
            solver: Solver::new(),
            sweep_budget: opts.sweep_conflict_limit,
        }
    }

    /// A literal's representative in the reduced AIG.
    fn repr_lit(&self, l: Lit) -> Lit {
        let r = self.repr[l.node()];
        if l.negated() {
            !r
        } else {
            r
        }
    }

    fn run(&mut self, sweep: bool, stats: &mut CecStats) {
        if sweep {
            self.rebuild_classes();
        }
        for idx in 0..self.orig.len() {
            let lit = match self.orig.node(Lit::new(idx, false)) {
                Node::Const => FALSE,
                Node::Input(_) => {
                    let l = self.red.input();
                    self.red_inputs.push(l);
                    l
                }
                Node::And(a, b) => {
                    let ra = self.repr_lit(a);
                    let rb = self.repr_lit(b);
                    let m = self.red.and(ra, rb);
                    if sweep {
                        self.try_merge(m, stats)
                    } else {
                        m
                    }
                }
            };
            self.repr.push(lit);
        }
    }

    /// Attempts to merge `m` with a candidate-equal class member;
    /// returns the representative to use downstream.
    fn try_merge(&mut self, m: Lit, stats: &mut CecStats) -> Lit {
        self.ensure_sigs();
        if m.node() >= self.sigs.len() {
            // Shouldn't happen after ensure_sigs; defensive.
            return m;
        }
        let (key, inv_m) = normalize(&self.sigs[m.node()]);
        let candidates = self.classes.get(&key).cloned().unwrap_or_default();
        for c in candidates {
            // Signatures agree up to phase: node(m)^inv_m ≈ node(c)^inv_c,
            // so the conjectured literal equal to `m` is node(c) with
            // the relative phase folded in.
            let (_, inv_c) = normalize(&self.sigs[c.node()]);
            let conj = Lit::new(c.node(), inv_m ^ inv_c ^ m.negated());
            if conj.node() == m.node() {
                continue; // same node: nothing to merge
            }
            stats.sat_queries += 1;
            match self.prove_eq(m, conj, self.sweep_budget) {
                Proof::Equal => {
                    stats.merged += 1;
                    return conj;
                }
                Proof::Diff(pattern) => {
                    self.pending.push(pattern);
                    if self.pending.len() >= 64 {
                        self.stamp_pending();
                        // Classes refined: re-bucket this node.
                        return self.try_merge(m, stats);
                    }
                }
                Proof::Unknown => {}
            }
        }
        self.classes.entry(key).or_default().push(m);
        self.class_members.push(m);
        m
    }

    /// Extends `sigs` to cover every node currently in `red`.
    fn ensure_sigs(&mut self) {
        while self.sigs.len() < self.red.len() {
            let idx = self.sigs.len();
            let sig = match self.red.node(Lit::new(idx, false)) {
                Node::Const => vec![0; self.sig_len],
                Node::Input(k) => self.input_sigs[k as usize].clone(),
                Node::And(a, b) => {
                    let mut w = Vec::with_capacity(self.sig_len);
                    for i in 0..self.sig_len {
                        let wa = self.sig_word(a, i);
                        let wb = self.sig_word(b, i);
                        w.push(wa & wb);
                    }
                    w
                }
            };
            self.sigs.push(sig);
        }
    }

    fn sig_word(&self, l: Lit, i: usize) -> u64 {
        let w = self.sigs[l.node()][i];
        if l.negated() {
            !w
        } else {
            w
        }
    }

    /// Folds pending counterexample patterns into one new signature
    /// word per node and rebuilds the candidate classes.
    fn stamp_pending(&mut self) {
        let patterns = std::mem::take(&mut self.pending);
        // New input words from the patterns (missing high lanes = 0).
        for (k, sig) in self.input_sigs.iter_mut().enumerate() {
            let mut w = 0u64;
            for (lane, p) in patterns.iter().enumerate() {
                if p.get(k).copied().unwrap_or(false) {
                    w |= 1u64 << lane;
                }
            }
            sig.push(w);
        }
        self.sig_len += 1;
        // Re-simulate the whole reduced graph for the new word.
        for idx in 0..self.sigs.len() {
            let w = match self.red.node(Lit::new(idx, false)) {
                Node::Const => 0,
                Node::Input(k) => self.input_sigs[k as usize][self.sig_len - 1],
                Node::And(a, b) => {
                    self.sig_word(a, self.sig_len - 1) & self.sig_word(b, self.sig_len - 1)
                }
            };
            self.sigs[idx].push(w);
        }
        self.rebuild_classes();
    }

    fn rebuild_classes(&mut self) {
        self.ensure_sigs();
        self.classes.clear();
        let members = self.class_members.clone();
        for m in members {
            let (key, _) = normalize(&self.sigs[m.node()]);
            self.classes.entry(key).or_default().push(m);
        }
    }

    /// Tseitin-encodes a `red` cone into the solver on demand.
    fn encode(&mut self, root: Lit) -> Var {
        while self.sat_var.len() < self.red.len() {
            self.sat_var.push(None);
        }
        let mut stack = vec![root.node()];
        while let Some(n) = stack.pop() {
            if self.sat_var[n].is_some() {
                continue;
            }
            match self.red.node(Lit::new(n, false)) {
                Node::Const => {
                    let v = self.solver.new_var();
                    self.sat_var[n] = Some(v);
                    self.solver.add_clause(&[SatLit::neg(v)]);
                }
                Node::Input(_) => {
                    self.sat_var[n] = Some(self.solver.new_var());
                }
                Node::And(a, b) => {
                    let (na, nb) = (a.node(), b.node());
                    if self.sat_var[na].is_none() || self.sat_var[nb].is_none() {
                        stack.push(n);
                        if self.sat_var[na].is_none() {
                            stack.push(na);
                        }
                        if self.sat_var[nb].is_none() {
                            stack.push(nb);
                        }
                        continue;
                    }
                    let v = self.solver.new_var();
                    self.sat_var[n] = Some(v);
                    let o = SatLit::pos(v);
                    let sa = self.sat_lit_of(a);
                    let sb = self.sat_lit_of(b);
                    // o ↔ a ∧ b.
                    self.solver.add_clause(&[!o, sa]);
                    self.solver.add_clause(&[!o, sb]);
                    self.solver.add_clause(&[o, !sa, !sb]);
                }
            }
        }
        self.sat_var[root.node()].expect("encoded")
    }

    fn sat_lit_of(&self, l: Lit) -> SatLit {
        let v = self.sat_var[l.node()].expect("fanin encoded");
        if l.negated() {
            SatLit::neg(v)
        } else {
            SatLit::pos(v)
        }
    }

    /// Proves or refutes `a == b` with two assumption-based solver
    /// calls (`a ∧ ¬b` unsat and `¬a ∧ b` unsat ⇒ equal).
    fn prove_eq(&mut self, a: Lit, b: Lit, budget: u64) -> Proof {
        self.encode(a);
        self.encode(b);
        let sa = self.sat_lit_of(a);
        let sb = self.sat_lit_of(b);
        for (x, y) in [(sa, !sb), (!sa, sb)] {
            match self.solver.solve(&[x, y], budget) {
                SatResult::Unsat => {}
                SatResult::Unknown => return Proof::Unknown,
                SatResult::Sat => {
                    let pattern = self.extract_model();
                    self.solver.retract();
                    return Proof::Diff(pattern);
                }
            }
        }
        Proof::Equal
    }

    /// Reads the input assignment out of the current SAT model.
    /// Inputs outside the encoded cone default to `false`.
    fn extract_model(&self) -> Vec<bool> {
        self.red_inputs
            .iter()
            .map(|&l| match self.sat_var[l.node()] {
                Some(v) => self.solver.model_value(SatLit::pos(v)),
                None => false,
            })
            .collect()
    }
}

/// Phase-normalizes a signature: complemented when pattern 0 would
/// read true, so a node and its complement share a class key.
fn normalize(sig: &[u64]) -> (Vec<u64>, bool) {
    if sig.first().copied().unwrap_or(0) & 1 == 1 {
        (sig.iter().map(|w| !w).collect(), true)
    } else {
        (sig.to_vec(), false)
    }
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::TRUE;

    fn opts() -> CecOptions {
        CecOptions::default()
    }

    #[test]
    fn identical_functions_prove_by_hash() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.xor(a, b);
        let y = g.xor(b, a);
        let (res, stats) = check_pairs(&g, &[(x, y)], &["y".into()], &opts()).expect("conclusive");
        assert_eq!(res, CecResult::Equivalent);
        assert_eq!(stats.outputs_by_hash, 1, "no SAT needed");
    }

    #[test]
    fn different_structure_same_function_proves() {
        let mut g = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| g.input()).collect();
        // Majority via two different factorings.
        let ab = g.and(ins[0], ins[1]);
        let cd = g.and(ins[2], ins[3]);
        let f1 = g.or(ab, cd);
        // f2 = !( !(a&b) & !(c&d) ) built through lut on same vars.
        // lut init for (i0&i1)|(i2&i3) over 4 inputs:
        let mut init = 0u64;
        for pat in 0..16u64 {
            let a = pat & 1 == 1;
            let b = pat & 2 != 0;
            let c = pat & 4 != 0;
            let d = pat & 8 != 0;
            if (a && b) || (c && d) {
                init |= 1 << pat;
            }
        }
        let f2 = g.lut(init, &ins);
        let (res, _) = check_pairs(&g, &[(f1, f2)], &["f".into()], &opts()).expect("conclusive");
        assert_eq!(res, CecResult::Equivalent);
    }

    #[test]
    fn inequivalent_yields_checked_counterexample() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let and = g.and(a, b);
        let or = g.or(a, b);
        let (res, _) = check_pairs(&g, &[(and, or)], &["f".into()], &opts()).expect("conclusive");
        let CecResult::Counterexample(cex) = res else {
            panic!("and vs or must differ");
        };
        assert_ne!(cex.golden_value, cex.revised_value);
        // The distinguishing pattern: exactly one of a,b set.
        assert_ne!(cex.inputs[0], cex.inputs[1]);
    }

    #[test]
    fn constant_collapse() {
        let mut g = Aig::new();
        let a = g.input();
        let t = g.or(a, !a); // tautology
        let (res, _) = check_pairs(&g, &[(t, TRUE)], &["t".into()], &opts()).expect("conclusive");
        assert_eq!(res, CecResult::Equivalent);
    }

    #[test]
    fn sweep_merges_hidden_equivalences() {
        // Build two structurally different adders' carry chains and
        // confirm merged > 0 on at least the output level.
        let mut g = Aig::new();
        let xs: Vec<Lit> = (0..6).map(|_| g.input()).collect();
        // sum via xor tree (balanced) vs chain.
        let t1 = g.xor(xs[0], xs[1]);
        let t2 = g.xor(xs[2], xs[3]);
        let t3 = g.xor(xs[4], xs[5]);
        let t12 = g.xor(t1, t2);
        let balanced = g.xor(t12, t3);
        let mut chain = xs[0];
        for &x in &xs[1..] {
            chain = g.xor(chain, x);
        }
        let (res, stats) =
            check_pairs(&g, &[(balanced, chain)], &["p".into()], &opts()).expect("conclusive");
        assert_eq!(res, CecResult::Equivalent);
        assert!(
            stats.outputs_by_hash == 1 || stats.merged > 0 || stats.sat_queries > 0,
            "equivalence must be discharged somewhere: {stats:?}"
        );
    }
}
