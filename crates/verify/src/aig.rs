//! And-Inverter Graphs with structural hashing, constant folding and
//! two-level rewriting.
//!
//! The AIG is the engine's normal form: every combinational cone —
//! LUT truth tables via Shannon cofactor expansion, carry/mux/memory
//! primitives via their two-valued semantics — lowers to two-input
//! AND nodes plus edge inverters. Node 0 is the constant-false
//! source; inputs follow; AND nodes are appended in topological
//! order, so a single forward pass evaluates the whole graph.
//!
//! Literals pack a node index and an inversion bit (`node << 1 |
//! neg`), mirroring the AIGER convention. Structural hashing
//! guarantees at most one AND node per unordered fanin pair, and the
//! constructor applies constant folding plus the classic two-level
//! rewrites (contradiction, containment, substitution) so trivially
//! equal cones collapse before SAT ever runs.

use std::collections::HashMap;

/// The number of 64-bit words in one simulation signature: 256
/// parallel random patterns per pass, matching the compiled
/// simulator's plane width.
pub const SIG_WORDS: usize = 4;

/// One 256-pattern simulation word.
pub type SigWord = [u64; SIG_WORDS];

/// An AIG literal: node index shifted left once, low bit set when the
/// edge is inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

/// The constant-false literal (node 0, plain).
pub const FALSE: Lit = Lit(0);
/// The constant-true literal (node 0, inverted).
pub const TRUE: Lit = Lit(1);

impl Lit {
    /// The node this literal points at.
    #[must_use]
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// `true` when the edge is inverted.
    #[must_use]
    pub fn negated(self) -> bool {
        self.0 & 1 == 1
    }

    /// Builds a literal from a node index and inversion flag.
    #[must_use]
    pub fn new(node: usize, negated: bool) -> Self {
        Lit(((node as u32) << 1) | u32::from(negated))
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// One AIG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// The constant-false source (always node 0).
    Const,
    /// A free input, numbered in creation order.
    Input(u32),
    /// Two-input AND of the fanin literals (`a <= b` canonically).
    And(Lit, Lit),
}

/// An And-Inverter Graph under construction.
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    /// Structural hash: canonical fanin pair → existing AND literal.
    strash: HashMap<(Lit, Lit), Lit>,
    num_inputs: u32,
}

impl Aig {
    /// An empty graph holding only the constant node.
    #[must_use]
    pub fn new() -> Self {
        Aig {
            nodes: vec![Node::Const],
            strash: HashMap::new(),
            num_inputs: 0,
        }
    }

    /// Total node count (constant + inputs + AND nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph holds only the constant node.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of free inputs created so far.
    #[must_use]
    pub fn num_inputs(&self) -> u32 {
        self.num_inputs
    }

    /// Number of AND nodes.
    #[must_use]
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::And(..)))
            .count()
    }

    /// The node a literal points at.
    #[must_use]
    pub fn node(&self, lit: Lit) -> Node {
        self.nodes[lit.node()]
    }

    /// Creates a fresh free input and returns its plain literal.
    pub fn input(&mut self) -> Lit {
        let id = self.nodes.len();
        self.nodes.push(Node::Input(self.num_inputs));
        self.num_inputs += 1;
        Lit::new(id, false)
    }

    /// AND of two literals with constant folding, two-level rewriting
    /// and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding and trivial cases.
        if a == FALSE || b == FALSE || a == !b {
            return FALSE;
        }
        if a == TRUE {
            return b;
        }
        if b == TRUE || a == b {
            return a;
        }
        if let Some(lit) = self.rewrite(a, b) {
            return lit;
        }
        // Canonical order for the structural hash.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&lit) = self.strash.get(&(a, b)) {
            return lit;
        }
        let id = self.nodes.len();
        self.nodes.push(Node::And(a, b));
        let lit = Lit::new(id, false);
        self.strash.insert((a, b), lit);
        lit
    }

    /// Two-level rewriting: inspects one structural level below the
    /// new node's fanins for contradiction, containment and
    /// substitution patterns. Returns the simplified literal when a
    /// rule fires.
    fn rewrite(&mut self, a: Lit, b: Lit) -> Option<Lit> {
        if let Some(lit) = self.rewrite_one(a, b) {
            return Some(lit);
        }
        self.rewrite_one(b, a)
    }

    /// Rules keyed on `f`'s fanin structure against the sibling `g`.
    fn rewrite_one(&mut self, f: Lit, g: Lit) -> Option<Lit> {
        let Node::And(x, y) = self.nodes[f.node()] else {
            return None;
        };
        if !f.negated() {
            // f = x & y.
            if g == !x || g == !y {
                // Contradiction: (x & y) & !x = 0.
                return Some(FALSE);
            }
            if g == x || g == y {
                // Containment: (x & y) & x = x & y.
                return Some(f);
            }
            // Cross-level contradiction/containment against g's fanins.
            if let Node::And(u, v) = self.nodes[g.node()] {
                if !g.negated() {
                    if x == !u || x == !v || y == !u || y == !v {
                        // (x & y) & (u & v) with clashing fanins.
                        return Some(FALSE);
                    }
                } else if (x == u && y == v) || (x == v && y == u) {
                    // (x & y) & !(x & y) = 0.
                    return Some(FALSE);
                }
            }
        } else {
            // f = !(x & y).
            if g == !x || g == !y {
                // !(x & y) is implied by !x: !(x&y) & !x = !x.
                return Some(g);
            }
            if g == x {
                // Substitution: x & !(x & y) = x & !y.
                let ny = !y;
                return Some(self.and(g, ny));
            }
            if g == y {
                let nx = !x;
                return Some(self.and(g, nx));
            }
        }
        None
    }

    /// OR via De Morgan.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// XOR as two-level AND/OR.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let l = self.and(a, !b);
        let r = self.and(!a, b);
        self.or(l, r)
    }

    /// 2:1 mux: `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let hi = self.and(sel, t);
        let lo = self.and(!sel, e);
        self.or(hi, lo)
    }

    /// AND over a slice (TRUE for the empty slice).
    pub fn and_all(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// OR over a slice (FALSE for the empty slice).
    pub fn or_all(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// XOR over a slice (FALSE for the empty slice).
    pub fn xor_all(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = FALSE;
        for &l in lits {
            acc = self.xor(acc, l);
        }
        acc
    }

    /// A `k`-input LUT via Shannon cofactor expansion on the highest
    /// input: bit `i` of `init` is the output for input pattern `i`
    /// (input 0 is the least-significant address bit).
    pub fn lut(&mut self, init: u64, inputs: &[Lit]) -> Lit {
        let k = inputs.len();
        debug_assert!(k <= 6, "LUT wider than 6 inputs");
        if k == 0 {
            return if init & 1 == 1 { TRUE } else { FALSE };
        }
        // Each cofactor table holds 2^(k-1) bits.
        let half = 1u32 << (k - 1);
        let mask = if half == 64 {
            u64::MAX
        } else {
            (1u64 << half) - 1
        };
        let lo = init & mask;
        let hi = (init >> half) & mask;
        if lo == hi {
            // The top input is a don't-care.
            return self.lut(lo, &inputs[..k - 1]);
        }
        let e = self.lut(lo, &inputs[..k - 1]);
        let t = self.lut(hi, &inputs[..k - 1]);
        self.mux(inputs[k - 1], t, e)
    }

    /// Evaluates every node over 256 parallel input patterns.
    /// `input_words[i]` supplies the patterns for input `i`; the
    /// returned vector holds one [`SigWord`] per node.
    #[must_use]
    pub fn simulate(&self, input_words: &[SigWord]) -> Vec<SigWord> {
        debug_assert_eq!(input_words.len(), self.num_inputs as usize);
        let mut sig = vec![[0u64; SIG_WORDS]; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            match *node {
                Node::Const => {} // stays all-zero (false)
                Node::Input(k) => sig[i] = input_words[k as usize],
                Node::And(a, b) => {
                    let wa = word_of(&sig, a);
                    let wb = word_of(&sig, b);
                    for w in 0..SIG_WORDS {
                        sig[i][w] = wa[w] & wb[w];
                    }
                }
            }
        }
        sig
    }

    /// Evaluates a single literal over one two-valued input
    /// assignment (`inputs[i]` is the value of input `i`).
    #[must_use]
    pub fn eval(&self, lit: Lit, inputs: &[bool]) -> bool {
        let mut vals = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            vals[i] = match *node {
                Node::Const => false,
                Node::Input(k) => inputs[k as usize],
                Node::And(a, b) => (vals[a.node()] ^ a.negated()) && (vals[b.node()] ^ b.negated()),
            };
        }
        vals[lit.node()] ^ lit.negated()
    }
}

/// A node's signature word adjusted for the literal's inversion.
#[must_use]
pub fn word_of(sig: &[SigWord], lit: Lit) -> SigWord {
    let mut w = sig[lit.node()];
    if lit.negated() {
        for x in &mut w {
            *x = !*x;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.input();
        assert_eq!(g.and(a, FALSE), FALSE);
        assert_eq!(g.and(FALSE, a), FALSE);
        assert_eq!(g.and(a, TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_is_commutative() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let ab = g.and(a, b);
        let ba = g.and(b, a);
        assert_eq!(ab, ba);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn two_level_rules() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let ab = g.and(a, b);
        // Containment: (a&b) & a = a&b.
        assert_eq!(g.and(ab, a), ab);
        // Contradiction: (a&b) & !a = 0.
        assert_eq!(g.and(ab, !a), FALSE);
        // Complement of shared structure: (a&b) & !(a&b) handled by a==!b.
        assert_eq!(g.and(ab, !ab), FALSE);
        // Implication: !(a&b) & !a = !a.
        assert_eq!(g.and(!ab, !a), !a);
        // Substitution: a & !(a&b) = a & !b.
        let sub = g.and(a, !ab);
        let direct = g.and(a, !b);
        assert_eq!(sub, direct);
    }

    #[test]
    fn cross_level_contradiction() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let c = g.input();
        let ab = g.and(a, b);
        let nac = g.and(!a, c);
        assert_eq!(g.and(ab, nac), FALSE, "(a&b) & (!a&c) = 0");
    }

    #[test]
    fn xor_and_mux_truth_tables() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let s = g.input();
        let x = g.xor(a, b);
        let m = g.mux(s, a, b);
        for bits in 0..8u32 {
            let ins = [bits & 1 == 1, bits & 2 != 0, bits & 4 != 0];
            assert_eq!(g.eval(x, &ins), ins[0] ^ ins[1]);
            assert_eq!(g.eval(m, &ins), if ins[2] { ins[0] } else { ins[1] });
        }
    }

    #[test]
    fn lut_matches_truth_table_exhaustively() {
        // Every 3-input truth table, every input pattern.
        for init in 0..256u64 {
            let mut g = Aig::new();
            let ins: Vec<Lit> = (0..3).map(|_| g.input()).collect();
            let f = g.lut(init, &ins);
            for pat in 0..8u64 {
                let vals = [pat & 1 == 1, pat & 2 != 0, pat & 4 != 0];
                let want = (init >> pat) & 1 == 1;
                assert_eq!(g.eval(f, &vals), want, "init={init:#x} pat={pat}");
            }
        }
    }

    #[test]
    fn simulate_agrees_with_eval() {
        let mut g = Aig::new();
        let ins: Vec<Lit> = (0..4).map(|_| g.input()).collect();
        let f = g.lut(0xbeef, &ins);
        // Drive the 16 exhaustive patterns in the low 16 lanes.
        let mut words = vec![[0u64; SIG_WORDS]; 4];
        for pat in 0..16u64 {
            for (i, w) in words.iter_mut().enumerate() {
                w[0] |= ((pat >> i) & 1) << pat;
            }
        }
        let sig = g.simulate(&words);
        let w = word_of(&sig, f);
        for pat in 0..16u64 {
            let vals = [pat & 1 == 1, pat & 2 != 0, pat & 4 != 0, pat & 8 != 0];
            assert_eq!((w[0] >> pat) & 1 == 1, g.eval(f, &vals));
        }
    }
}
