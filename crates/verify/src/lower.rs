//! Lowering flattened netlists into the shared AIG.
//!
//! A design lowers over its *register cut*: the free variables are
//! the primary-input bits plus every sequential element's state bits
//! (one per flip-flop, sixteen per SRL16/RAM16), and the checked
//! functions are the primary-output bits plus every state bit's
//! next-state function. Two sequential designs are equivalent across
//! matched cuts exactly when all these combinational functions agree
//! — the classic reduction of sequential equivalence to per-cone CEC.
//!
//! Each primitive lowers through the two-valued restriction of the
//! same four-state semantics the simulators execute (LUTs by Shannon
//! cofactor expansion, memory reads as 16:1 mux trees, flip-flops as
//! `!ctl & (ce ? d : q)`), and the graph comes from the simulators'
//! own levelizer, so the AIG and the simulators cannot disagree about
//! structure — only about the engine's own arithmetic, which the
//! counterexample replay oracle cross-checks.

use std::collections::HashMap;

use ipd_hdl::{Logic, NetId, PortDir};
use ipd_sim::graph::{CombKind, NetlistGraph, SeqKind};
use ipd_techlib::PrimKind;

use crate::aig::{Aig, Lit, FALSE, TRUE};
use crate::error::VerifyError;

/// Identity of one checked output function.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OutId {
    /// Bit `bit` of primary output `port`.
    Port {
        /// Port name.
        port: String,
        /// Bit index, LSB first.
        bit: usize,
    },
    /// Next-state function of state bit `bit` of the element at
    /// `path` (the design's own hierarchical path).
    NextState {
        /// Hierarchical instance path.
        path: String,
        /// State bit index.
        bit: usize,
    },
}

impl OutId {
    /// Render for reports: `y[3]` or `next(top/acc/ff0)[0]`.
    #[must_use]
    pub fn display(&self) -> String {
        match self {
            OutId::Port { port, bit } => format!("{port}[{bit}]"),
            OutId::NextState { path, bit } => format!("next({path})[{bit}]"),
        }
    }
}

/// One lowered output function.
#[derive(Debug, Clone)]
pub struct OutputFn {
    /// Which boundary function this is.
    pub id: OutId,
    /// Its literal in the shared AIG.
    pub lit: Lit,
}

/// A fully lowered design: the checked boundary functions plus the
/// literal of every internal net, so per-net analyses (the semantic
/// lint oracle) can query arbitrary cones, not just the boundary.
#[derive(Debug, Clone)]
pub struct LoweredDesign {
    /// Primary outputs, then next-state functions in leaf order.
    pub outputs: Vec<OutputFn>,
    /// Per-net AIG literal, indexed by `NetId::index`. `None` for
    /// nets nothing drives (legal as long as nothing reads them).
    pub net_lit: Vec<Option<Lit>>,
}

/// Lowers one design into `aig`. `port_lit` maps non-clock input
/// port bits to shared input literals; `state_lit` maps this design's
/// own state paths (bit by bit) to shared input literals. Returns the
/// design's checked output functions (primary outputs, then
/// next-state functions in leaf order).
///
/// # Errors
///
/// Refuses combinational loops, black boxes, and nets read by logic
/// without a driver — all cases where a two-valued proof would be
/// unsound against the four-state simulators.
pub fn lower_into(
    aig: &mut Aig,
    graph: &NetlistGraph,
    design: &str,
    port_lit: &HashMap<(String, usize), Lit>,
    state_lit: &HashMap<(String, usize), Lit>,
) -> Result<Vec<OutputFn>, VerifyError> {
    Ok(lower_design(aig, graph, design, port_lit, state_lit)?.outputs)
}

/// As [`lower_into`], but also returns the full per-net literal map.
///
/// # Errors
///
/// As [`lower_into`].
pub fn lower_design(
    aig: &mut Aig,
    graph: &NetlistGraph,
    design: &str,
    port_lit: &HashMap<(String, usize), Lit>,
    state_lit: &HashMap<(String, usize), Lit>,
) -> Result<LoweredDesign, VerifyError> {
    lower_impl(aig, graph, design, port_lit, state_lit, None)
}

/// Re-lowers a design with one net's value complemented at its
/// driving point — the observability transform: an output function
/// changes between this lowering and the original exactly when the
/// flipped net is observable at that output. Returns the boundary
/// function literals in the same order as [`lower_design`].
///
/// # Errors
///
/// As [`lower_into`].
pub(crate) fn lower_flipped(
    aig: &mut Aig,
    graph: &NetlistGraph,
    design: &str,
    port_lit: &HashMap<(String, usize), Lit>,
    state_lit: &HashMap<(String, usize), Lit>,
    flip: NetId,
) -> Result<Vec<OutputFn>, VerifyError> {
    Ok(lower_impl(aig, graph, design, port_lit, state_lit, Some(flip))?.outputs)
}

fn lower_impl(
    aig: &mut Aig,
    graph: &NetlistGraph,
    design: &str,
    port_lit: &HashMap<(String, usize), Lit>,
    state_lit: &HashMap<(String, usize), Lit>,
    flip: Option<NetId>,
) -> Result<LoweredDesign, VerifyError> {
    let place = |net: NetId, lit: Lit| {
        if flip == Some(net) {
            !lit
        } else {
            lit
        }
    };
    if !graph.levelized() {
        return Err(VerifyError::CombLoop {
            design: design.to_owned(),
        });
    }
    if !graph.black_box_outputs.is_empty() {
        return Err(VerifyError::BlackBox {
            design: design.to_owned(),
        });
    }
    let mut net_lit: Vec<Option<Lit>> = vec![None; graph.net_count];
    // Constant rails.
    for &(net, v) in &graph.const_drives {
        net_lit[net.index()] = Some(place(
            net,
            match v {
                Logic::One => TRUE,
                _ => FALSE,
            },
        ));
    }
    // Clock nets are held at 0 between active edges in every engine.
    for &net in &graph.clock_nets {
        net_lit[net.index()] = Some(place(net, FALSE));
    }
    // Primary-input bits.
    for port in &graph.ports {
        if port.dir != PortDir::Input {
            continue;
        }
        for (bit, &net) in port.nets.iter().enumerate() {
            if net_lit[net.index()].is_some() {
                continue; // clock port (or a rail): already pinned
            }
            let lit = port_lit
                .get(&(port.name.clone(), bit))
                .copied()
                .ok_or_else(|| VerifyError::PortMismatch {
                    detail: format!("no shared input for {}[{}]", port.name, bit),
                })?;
            net_lit[net.index()] = Some(place(net, lit));
        }
    }
    // Flip-flop outputs read the state variable.
    for elem in &graph.seq {
        if let SeqKind::Ff { q, .. } = elem.kind {
            let lit = state_bit(state_lit, &elem.path, 0)?;
            net_lit[q.index()] = Some(place(q, lit));
        }
    }
    // Combinational cones in levelized order.
    for node in &graph.eval_order {
        let ins = gather(graph, design, &net_lit, &node.inputs)?;
        let out = match &node.kind {
            CombKind::Prim(kind) => lower_prim(aig, kind, &ins),
            CombKind::SrlRead { seq } | CombKind::RamRead { seq } => {
                let word = state_word(state_lit, &graph.seq[*seq].path)?;
                mux_word(aig, &ins, &word)
            }
        };
        net_lit[node.output.index()] = Some(place(node.output, out));
    }
    // Checked functions: primary outputs first…
    let mut outputs = Vec::new();
    for port in &graph.ports {
        if port.dir != PortDir::Output {
            continue;
        }
        for (bit, &net) in port.nets.iter().enumerate() {
            let lit = net_lit[net.index()].ok_or_else(|| VerifyError::UndrivenNet {
                design: design.to_owned(),
                net: graph.net_names[net.index()].clone(),
            })?;
            outputs.push(OutputFn {
                id: OutId::Port {
                    port: port.name.clone(),
                    bit,
                },
                lit,
            });
        }
    }
    // …then next-state functions.
    for elem in &graph.seq {
        match &elem.kind {
            SeqKind::Ff { d, ce, control, .. } => {
                let d = fetch(graph, design, &net_lit, *d)?;
                let q = state_bit(state_lit, &elem.path, 0)?;
                let held = match ce {
                    Some(ce) => {
                        let ce = fetch(graph, design, &net_lit, *ce)?;
                        aig.mux(ce, d, q)
                    }
                    None => d,
                };
                let next = match control {
                    Some((_, ctl)) => {
                        let ctl = fetch(graph, design, &net_lit, *ctl)?;
                        aig.and(!ctl, held)
                    }
                    None => held,
                };
                outputs.push(OutputFn {
                    id: OutId::NextState {
                        path: elem.path.clone(),
                        bit: 0,
                    },
                    lit: next,
                });
            }
            SeqKind::Srl16 { d, ce, .. } => {
                let d = fetch(graph, design, &net_lit, *d)?;
                let ce = fetch(graph, design, &net_lit, *ce)?;
                let word = state_word(state_lit, &elem.path)?;
                for bit in 0..16 {
                    let src = if bit == 0 { d } else { word[bit - 1] };
                    let next = aig.mux(ce, src, word[bit]);
                    outputs.push(OutputFn {
                        id: OutId::NextState {
                            path: elem.path.clone(),
                            bit,
                        },
                        lit: next,
                    });
                }
            }
            SeqKind::Ram16 { d, we, addr, .. } => {
                let d = fetch(graph, design, &net_lit, *d)?;
                let we = fetch(graph, design, &net_lit, *we)?;
                let addr = gather(graph, design, &net_lit, addr)?;
                let word = state_word(state_lit, &elem.path)?;
                for (bit, &held) in word.iter().enumerate() {
                    // Address decode: every addr bit matches this slot.
                    let mut sel = we;
                    for (i, &a) in addr.iter().enumerate() {
                        let want = (bit >> i) & 1 == 1;
                        sel = aig.and(sel, if want { a } else { !a });
                    }
                    let next = aig.mux(sel, d, held);
                    outputs.push(OutputFn {
                        id: OutId::NextState {
                            path: elem.path.clone(),
                            bit,
                        },
                        lit: next,
                    });
                }
            }
        }
    }
    Ok(LoweredDesign { outputs, net_lit })
}

fn state_bit(
    state_lit: &HashMap<(String, usize), Lit>,
    path: &str,
    bit: usize,
) -> Result<Lit, VerifyError> {
    state_lit
        .get(&(path.to_owned(), bit))
        .copied()
        .ok_or_else(|| VerifyError::StateMismatch {
            detail: format!("no shared input for state bit {path}[{bit}]"),
        })
}

fn state_word(
    state_lit: &HashMap<(String, usize), Lit>,
    path: &str,
) -> Result<[Lit; 16], VerifyError> {
    let mut word = [FALSE; 16];
    for (bit, slot) in word.iter_mut().enumerate() {
        *slot = state_bit(state_lit, path, bit)?;
    }
    Ok(word)
}

fn fetch(
    graph: &NetlistGraph,
    design: &str,
    net_lit: &[Option<Lit>],
    net: NetId,
) -> Result<Lit, VerifyError> {
    net_lit[net.index()].ok_or_else(|| VerifyError::UndrivenNet {
        design: design.to_owned(),
        net: graph.net_names[net.index()].clone(),
    })
}

fn gather(
    graph: &NetlistGraph,
    design: &str,
    net_lit: &[Option<Lit>],
    nets: &[NetId],
) -> Result<Vec<Lit>, VerifyError> {
    nets.iter()
        .map(|&n| fetch(graph, design, net_lit, n))
        .collect()
}

/// One combinational primitive through its two-valued semantics.
fn lower_prim(aig: &mut Aig, kind: &PrimKind, ins: &[Lit]) -> Lit {
    match kind {
        PrimKind::Inv => !ins[0],
        PrimKind::Buf | PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => ins[0],
        PrimKind::And(_) => aig.and_all(ins),
        PrimKind::Nand(_) => !aig.and_all(ins),
        PrimKind::Or(_) => aig.or_all(ins),
        PrimKind::Nor(_) => !aig.or_all(ins),
        PrimKind::Xor(_) => aig.xor_all(ins),
        PrimKind::Xnor2 => !aig.xor(ins[0], ins[1]),
        // mux2: [i0, i1, sel]; sel=1 selects i1.
        PrimKind::Mux2 => aig.mux(ins[2], ins[1], ins[0]),
        PrimKind::Lut { init, .. } => aig.lut(u64::from(*init), ins),
        // muxcy: [ci, di, s]; s=1 selects the carry-in.
        PrimKind::Muxcy => aig.mux(ins[2], ins[0], ins[1]),
        PrimKind::Xorcy => aig.xor(ins[0], ins[1]),
        PrimKind::MultAnd => aig.and(ins[0], ins[1]),
        PrimKind::Rom16x1 { init } => aig.lut(u64::from(*init), ins),
        PrimKind::Gnd => FALSE,
        PrimKind::Vcc => TRUE,
        PrimKind::Ff { .. } | PrimKind::Srl16 { .. } | PrimKind::Ram16x1 { .. } => {
            unreachable!("sequential primitives are not evaluation nodes")
        }
    }
}

/// 16:1 read mux: `addr` LSB first selects among `slots`.
fn mux_word(aig: &mut Aig, addr: &[Lit], slots: &[Lit; 16]) -> Lit {
    debug_assert_eq!(addr.len(), 4);
    let mut cur: Vec<Lit> = slots.to_vec();
    for &a in addr {
        let mut next = Vec::with_capacity(cur.len() / 2);
        for pair in cur.chunks(2) {
            next.push(aig.mux(a, pair[1], pair[0]));
        }
        cur = next;
    }
    cur[0]
}
