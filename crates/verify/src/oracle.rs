//! The semantic query oracle: incremental SAT over one lowered design.
//!
//! Where [`check_equiv`](crate::check_equiv) answers a single question
//! (are two designs equal over the register cut?), the [`Oracle`]
//! answers many small ones about *one* design: is this net provably
//! constant, is this output independent of that input, can this net
//! ever carry `X`, which input minterms are satisfiability or
//! observability don't-cares. Every verdict is three-valued —
//! [`Verdict::Proved`], [`Verdict::Refuted`] with a concrete witness,
//! or [`Verdict::Unknown`] when the conflict budget runs out — so a
//! query can *never* hang and can never silently convert "ran out of
//! budget" into a claim.
//!
//! Two lowered models back the queries. The **two-valued** model is
//! the same AIG lowering the equivalence checker uses (so proofs and
//! the simulators cannot disagree about structure); it exists only
//! when the design is loop-free with no black boxes and no read
//! undriven nets. The **dual-rail** model encodes the simulators'
//! four-state kernels exactly — each net becomes a `(value, unknown)`
//! literal pair mirroring the batch engine's bit-planes — so
//! `prove_never_x` reasons about `X` propagation with the same
//! pessimism the engines execute, including the may-go-X register
//! fixpoint across clock edges.
//!
//! Every [`Verdict::Refuted`] carries a [`Witness`] that has already
//! been replayed through the interpreted [`BatchSimulator`] *and* the
//! bytecode [`CompiledSimulator`] (when replay is enabled): inputs
//! set, registers forced through the state back doors, the net peeked.
//! A witness that does not reproduce is a loud
//! [`VerifyError::OracleDisagreement`], never a returned verdict.
//!
//! [`BatchSimulator`]: ipd_sim::BatchSimulator
//! [`CompiledSimulator`]: ipd_sim::CompiledSimulator

use std::collections::{HashMap, HashSet, VecDeque};

use ipd_hdl::{FlatNetlist, Logic, LogicVec, NetId, PortDir};
use ipd_sim::graph::{CombKind, NetlistGraph, SeqKind};
use ipd_techlib::PrimKind;

use crate::aig::{word_of, Aig, Lit, Node, SigWord, FALSE, SIG_WORDS, TRUE};
use crate::error::VerifyError;
use crate::lower::{lower_design, lower_flipped, OutId, OutputFn};
use crate::replay;
use crate::sat::{SatLit, SatResult, Solver, Var};

/// Signature words per net: two 256-pattern rounds.
pub const ORACLE_SIG_WORDS: usize = 2 * SIG_WORDS;

/// Tuning knobs for one oracle instance.
#[derive(Debug, Clone)]
pub struct OracleOptions {
    /// Explicit clock port; `None` auto-detects (`clk`, `c`, `clock`).
    pub clock: Option<String>,
    /// Conflict budget per SAT query (0 = unlimited). An exhausted
    /// budget yields [`Verdict::Unknown`], never a wrong answer.
    pub conflict_budget: u64,
    /// PRNG seed for signature simulation.
    pub seed: u64,
    /// Replay every witness through both simulation engines before it
    /// is returned (the differential honesty oracle).
    pub replay: bool,
    /// Reachability: give up beyond this many distinct states.
    pub max_states: usize,
    /// Reachability: give up beyond this many enumerated transitions.
    pub max_transitions: usize,
    /// Reachability: skip designs with more state bits than this.
    pub max_state_bits: usize,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            clock: None,
            conflict_budget: 20_000,
            seed: 0x7e3d_91ab_44c6_5f02,
            replay: true,
            max_states: 512,
            max_transitions: 4_096,
            max_state_bits: 24,
        }
    }
}

/// Counters describing how the oracle discharged its queries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Queries answered (any verdict).
    pub queries: u64,
    /// Queries answered `Proved`.
    pub proved: u64,
    /// Queries answered `Refuted`.
    pub refuted: u64,
    /// Queries answered `Unknown`.
    pub unknown: u64,
    /// Witnesses replayed through both engines.
    pub replays: u64,
}

/// How a refuting witness is checked against the simulators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessCheck {
    /// Under the witness assignment, the net reads `value`. An
    /// expected `X` accepts any undriven observation.
    NetEquals {
        /// Expected value.
        value: Logic,
    },
    /// Toggling input `port[bit]` toggles the net: `low` with the bit
    /// at 0, `high` with the bit at 1 (`low != high`).
    NetToggles {
        /// Input port name.
        port: String,
        /// Bit index, LSB first.
        bit: usize,
        /// Net value with the bit driven 0.
        low: Logic,
        /// Net value with the bit driven 1.
        high: Logic,
    },
    /// Under the witness assignment, the net reads `value` while
    /// `other` reads `other_value` — refuting (or, complemented,
    /// confirming) a claimed equivalence.
    NetsDiffer {
        /// The other net.
        other: String,
        /// This net's value.
        value: Logic,
        /// The other net's value.
        other_value: Logic,
    },
}

/// A concrete, simulator-checkable refutation: a full input and state
/// assignment plus the observation that contradicts the claim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// The net the claim was about.
    pub net: String,
    /// Every non-clock input port's assigned value.
    pub inputs: Vec<(String, LogicVec)>,
    /// Every state element's forced value (width 1 for FFs, 16 for
    /// memories); `X` bits force an unknown through the back door.
    pub state: Vec<(String, LogicVec)>,
    /// The observation refuting the claim.
    pub check: WitnessCheck,
}

/// A three-valued query verdict. `Unknown` is always sound: it means
/// the conflict budget ran out, never that the claim is false.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The claim holds for every input and cut-state assignment.
    Proved,
    /// The claim is false; the witness has been replay-confirmed
    /// against both simulation engines (when replay is enabled).
    Refuted(Box<Witness>),
    /// The conflict budget was exhausted before a proof either way.
    Unknown {
        /// The per-query budget that ran out.
        conflicts: u64,
    },
}

impl Verdict {
    /// `true` for [`Verdict::Proved`].
    #[must_use]
    pub fn is_proved(&self) -> bool {
        matches!(self, Verdict::Proved)
    }
}

/// A don't-care cube list over one combinational node's input space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeList {
    /// The node's input net names, LSB of the minterm index first.
    pub inputs: Vec<String>,
    /// Don't-care minterms (bit `i` of the minterm = value of
    /// `inputs[i]`).
    pub minterms: Vec<u16>,
    /// `false` when some minterms were skipped on budget exhaustion
    /// (the listed minterms are still proved don't-cares).
    pub complete: bool,
}

/// The proved reachable-state set of a design's register cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachSet {
    /// State bit order: `(element path, bit)`.
    pub bits: Vec<(String, usize)>,
    /// The power-on state.
    pub init: Vec<bool>,
    /// Every reachable state (including `init`), in discovery order.
    pub states: Vec<Vec<bool>>,
    /// `true` when the enumeration closed; findings may only be
    /// derived from complete sets.
    pub complete: bool,
}

impl ReachSet {
    /// State bits stuck at their power-on value across every
    /// reachable state: `(path, bit, stuck value)`.
    #[must_use]
    pub fn stuck_bits(&self) -> Vec<(String, usize, bool)> {
        if !self.complete {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, (path, bit)) in self.bits.iter().enumerate() {
            let v = self.init[i];
            if self.states.iter().all(|s| s[i] == v) {
                out.push((path.clone(), *bit, v));
            }
        }
        out
    }
}

/// Lazy Tseitin encoding of one AIG into one incremental solver.
/// Queries use assumptions only, so learnt clauses stay sound across
/// queries. (Reachability, which adds non-tautological blocking
/// clauses, builds its own private `Enc`.)
struct Enc {
    solver: Solver,
    sat_var: Vec<Option<Var>>,
}

impl Enc {
    fn new() -> Self {
        Enc {
            solver: Solver::new(),
            sat_var: vec![None],
        }
    }

    /// Tseitin-encodes a cone into the solver on demand.
    fn encode(&mut self, aig: &Aig, root: Lit) -> Var {
        while self.sat_var.len() < aig.len() {
            self.sat_var.push(None);
        }
        let mut stack = vec![root.node()];
        while let Some(n) = stack.pop() {
            if self.sat_var[n].is_some() {
                continue;
            }
            match aig.node(Lit::new(n, false)) {
                Node::Const => {
                    let v = self.solver.new_var();
                    self.sat_var[n] = Some(v);
                    self.solver.add_clause(&[SatLit::neg(v)]);
                }
                Node::Input(_) => {
                    self.sat_var[n] = Some(self.solver.new_var());
                }
                Node::And(a, b) => {
                    let (na, nb) = (a.node(), b.node());
                    if self.sat_var[na].is_none() || self.sat_var[nb].is_none() {
                        stack.push(n);
                        if self.sat_var[na].is_none() {
                            stack.push(na);
                        }
                        if self.sat_var[nb].is_none() {
                            stack.push(nb);
                        }
                        continue;
                    }
                    let v = self.solver.new_var();
                    self.sat_var[n] = Some(v);
                    let o = SatLit::pos(v);
                    let sa = self.lit_of(a);
                    let sb = self.lit_of(b);
                    // o ↔ a ∧ b.
                    self.solver.add_clause(&[!o, sa]);
                    self.solver.add_clause(&[!o, sb]);
                    self.solver.add_clause(&[o, !sa, !sb]);
                }
            }
        }
        self.sat_var[root.node()].expect("encoded")
    }

    fn lit_of(&self, l: Lit) -> SatLit {
        let v = self.sat_var[l.node()].expect("fanin encoded");
        if l.negated() {
            SatLit::neg(v)
        } else {
            SatLit::pos(v)
        }
    }

    /// A literal's value in the current model; cones outside the
    /// encoding default to input-false.
    fn model_lit(&self, l: Lit) -> bool {
        let base = self
            .sat_var
            .get(l.node())
            .copied()
            .flatten()
            .map(|v| self.solver.model_value(SatLit::pos(v)))
            .unwrap_or(false);
        base ^ l.negated()
    }
}

/// What one two-valued AIG input feeds.
#[derive(Debug, Clone, Copy)]
enum CutRef {
    /// Bit `bit` of `graph.ports[port]`.
    Port { port: usize, bit: usize },
    /// Bit `bit` of `graph.seq[seq]`.
    State { seq: usize, bit: usize },
}

/// The two-valued model: the equivalence checker's lowering plus a
/// lazy Tseitin encoding.
struct TwoValued {
    aig: Aig,
    net_lit: Vec<Option<Lit>>,
    outputs: Vec<OutputFn>,
    inputs: Vec<Lit>,
    cut: Vec<CutRef>,
    port_lit: HashMap<(String, usize), Lit>,
    state_lit: HashMap<(String, usize), Lit>,
    enc: Enc,
    /// Cached flipped-boundary lowering per net.
    flipped: HashMap<u32, Vec<Lit>>,
    /// Cached per-net random-simulation signatures.
    sigs: Option<Vec<Option<[u64; ORACLE_SIG_WORDS]>>>,
    /// Random input words backing the lazy per-node simulation cache.
    sim_in: Vec<SigWord>,
    /// Per-node 256-pattern values over `sim_in`, extended on demand
    /// (the AIG is append-only and topologically ordered, so each new
    /// node is evaluated exactly once).
    sim_vals: Vec<SigWord>,
}

impl TwoValued {
    /// The literal's 256-pattern random-simulation word. Used to
    /// prefilter observability miters: a pattern that sets the miter
    /// already witnesses observability, so the SAT query — and the
    /// Tseitin encoding of the flipped cone — can be skipped.
    fn sim_word(&mut self, lit: Lit) -> SigWord {
        for i in self.sim_vals.len()..self.aig.len() {
            let w = match self.aig.node(Lit::new(i, false)) {
                Node::Const => [0u64; SIG_WORDS],
                Node::Input(k) => self.sim_in[k as usize],
                Node::And(a, b) => {
                    let wa = word_of(&self.sim_vals, a);
                    let wb = word_of(&self.sim_vals, b);
                    std::array::from_fn(|j| wa[j] & wb[j])
                }
            };
            self.sim_vals.push(w);
        }
        word_of(&self.sim_vals, lit)
    }
}

/// One net's dual-rail pair: `(value, unknown)` literals mirroring the
/// batch simulator's bit-planes.
#[derive(Debug, Clone, Copy)]
struct Rail {
    v: Lit,
    u: Lit,
}

const X_RAIL: Rail = Rail { v: FALSE, u: TRUE };
const ZERO_RAIL: Rail = Rail { v: FALSE, u: FALSE };

fn const_rail(b: bool) -> Rail {
    Rail {
        v: if b { TRUE } else { FALSE },
        u: FALSE,
    }
}

/// What one dual-rail AIG input feeds.
#[derive(Debug, Clone, Copy)]
enum XCutRef {
    /// Value of bit `bit` of input port `graph.ports[port]`.
    PortVal { port: usize, bit: usize },
    /// Value rail of state bit `bit` of `graph.seq[seq]`.
    StateVal { seq: usize, bit: usize },
    /// Unknown rail of state bit `bit` of `graph.seq[seq]`.
    StateUnk { seq: usize, bit: usize },
}

/// The dual-rail four-state model for `prove_never_x`.
struct DualRail {
    aig: Aig,
    rail: Vec<Option<Rail>>,
    inputs: Vec<Lit>,
    cut: Vec<XCutRef>,
    /// Per `(seq, bit)`: the unknown-rail input literal.
    state_unk: HashMap<(usize, usize), Lit>,
    /// Per `(seq, bit)`: may this state bit ever go unknown? The
    /// fixpoint result; bits outside the set are pinned known.
    may_x: HashSet<(usize, usize)>,
    enc: Enc,
}

/// The semantic query oracle over one flattened design.
pub struct Oracle<'a> {
    flat: &'a FlatNetlist,
    graph: NetlistGraph,
    opts: OracleOptions,
    two: Option<TwoValued>,
    xrail: Option<Option<Box<DualRail>>>,
    stats: OracleStats,
}

impl<'a> Oracle<'a> {
    /// Builds the oracle. The two-valued model is constructed eagerly
    /// (absent when the design has loops, black boxes or read
    /// undriven nets — affected queries then answer `Unknown`); the
    /// dual-rail model is built lazily on the first `prove_never_x`.
    ///
    /// # Errors
    ///
    /// Only structural failures the simulators themselves would
    /// refuse (multiple drivers, unknown primitives, gated clocks);
    /// everything else degrades to `Unknown` verdicts instead.
    pub fn new(flat: &'a FlatNetlist, opts: OracleOptions) -> Result<Self, VerifyError> {
        let graph = NetlistGraph::build(flat, opts.clock.as_deref())?;
        let two = build_two_valued(&graph, flat.design_name(), opts.seed);
        Ok(Oracle {
            flat,
            graph,
            opts,
            two,
            xrail: None,
            stats: OracleStats::default(),
        })
    }

    /// The levelized structural view backing the oracle.
    #[must_use]
    pub fn graph(&self) -> &NetlistGraph {
        &self.graph
    }

    /// Query counters so far.
    #[must_use]
    pub fn stats(&self) -> &OracleStats {
        &self.stats
    }

    /// `true` when the two-valued model exists (loop-free, no black
    /// boxes, no read undriven nets).
    #[must_use]
    pub fn has_model(&self) -> bool {
        self.two.is_some()
    }

    /// Per-net random-simulation signatures over the two-valued model
    /// (512 patterns). Empty when the model is absent. Candidates with
    /// all-zero/all-one signatures are worth a `prove_constant`;
    /// equal signatures are worth a `prove_equal`.
    pub fn net_signatures(&mut self) -> &[Option<[u64; ORACLE_SIG_WORDS]>] {
        let seed = self.opts.seed;
        let Some(two) = self.two.as_mut() else {
            return &[];
        };
        if two.sigs.is_none() {
            let mut rng = XorShift(seed | 1);
            let words: Vec<SigWord> = (0..two.aig.num_inputs())
                .map(|_| std::array::from_fn(|_| rng.next()))
                .collect();
            let sig_a = two.aig.simulate(&words);
            let words: Vec<SigWord> = (0..two.aig.num_inputs())
                .map(|_| std::array::from_fn(|_| rng.next()))
                .collect();
            let sig_b = two.aig.simulate(&words);
            let per_net = two
                .net_lit
                .iter()
                .map(|lit| {
                    lit.map(|l| {
                        let a = word_of(&sig_a, l);
                        let b = word_of(&sig_b, l);
                        std::array::from_fn(|i| {
                            if i < SIG_WORDS {
                                a[i]
                            } else {
                                b[i - SIG_WORDS]
                            }
                        })
                    })
                })
                .collect();
            two.sigs = Some(per_net);
        }
        two.sigs.as_ref().expect("just built")
    }

    /// The net's two-valued literal collapsed to a constant by
    /// lowering alone (structural proof, no SAT).
    #[must_use]
    pub fn structurally_const(&self, net: NetId) -> Option<bool> {
        let lit = self.two.as_ref()?.net_lit[net.index()]?;
        if lit == TRUE {
            Some(true)
        } else if lit == FALSE {
            Some(false)
        } else {
            None
        }
    }

    /// Proves `net == value` over all inputs and cut states.
    ///
    /// # Errors
    ///
    /// Witness replay failures only.
    pub fn prove_constant(&mut self, net: NetId, value: bool) -> Result<Verdict, VerifyError> {
        self.stats.queries += 1;
        let budget = self.opts.conflict_budget;
        let Some(two) = self.two.as_mut() else {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        };
        let Some(lit) = two.net_lit[net.index()] else {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        };
        // SAT(net != value): assume the literal at the opposite phase.
        two.enc.encode(&two.aig, lit);
        let assum = if value {
            !two.enc.lit_of(lit)
        } else {
            two.enc.lit_of(lit)
        };
        let verdict = match two.enc.solver.solve(&[assum], budget) {
            SatResult::Unsat => Verdict::Proved,
            SatResult::Unknown => Verdict::Unknown { conflicts: budget },
            SatResult::Sat => {
                let w = witness_from_model(
                    two,
                    &self.graph,
                    self.graph.net_names[net.index()].clone(),
                    WitnessCheck::NetEquals {
                        value: Logic::from_bool(!value),
                    },
                );
                two.enc.solver.retract();
                self.confirm(&w)?;
                Verdict::Refuted(Box::new(w))
            }
        };
        Ok(self.tally(verdict))
    }

    /// Proves `net` functionally independent of input `port[bit]`.
    ///
    /// # Errors
    ///
    /// [`VerifyError::PortMismatch`] for an unknown input bit;
    /// witness replay failures.
    pub fn prove_independent(
        &mut self,
        net: NetId,
        port: &str,
        bit: usize,
    ) -> Result<Verdict, VerifyError> {
        self.stats.queries += 1;
        let budget = self.opts.conflict_budget;
        let Some(two) = self.two.as_mut() else {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        };
        let Some(lit) = two.net_lit[net.index()] else {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        };
        let input = two
            .cut
            .iter()
            .zip(&two.inputs)
            .find_map(|(c, &l)| match c {
                CutRef::Port { port: pi, bit: b } if *b == bit => {
                    (self.graph.ports[*pi].name == port).then_some(l)
                }
                _ => None,
            })
            .ok_or_else(|| VerifyError::PortMismatch {
                detail: format!("oracle has no input {port}[{bit}]"),
            })?;
        let f0 = substitute(&mut two.aig, lit, input.node(), FALSE);
        let f1 = substitute(&mut two.aig, lit, input.node(), TRUE);
        if f0 == f1 {
            return Ok(self.tally(Verdict::Proved));
        }
        let miter = two.aig.xor(f0, f1);
        two.enc.encode(&two.aig, miter);
        let assum = two.enc.lit_of(miter);
        let verdict = match two.enc.solver.solve(&[assum], budget) {
            SatResult::Unsat => Verdict::Proved,
            SatResult::Unknown => Verdict::Unknown { conflicts: budget },
            SatResult::Sat => {
                let low = two.enc.model_lit(f0);
                let high = two.enc.model_lit(f1);
                let mut w = witness_from_model(
                    two,
                    &self.graph,
                    self.graph.net_names[net.index()].clone(),
                    WitnessCheck::NetToggles {
                        port: port.to_owned(),
                        bit,
                        low: Logic::from_bool(low),
                        high: Logic::from_bool(high),
                    },
                );
                two.enc.solver.retract();
                // The toggled bit itself is swept by the check.
                if let Some((_, v)) = w.inputs.iter_mut().find(|(p, _)| p == port) {
                    v.set_bit(bit, Logic::Zero);
                }
                self.confirm(&w)?;
                Verdict::Refuted(Box::new(w))
            }
        };
        Ok(self.tally(verdict))
    }

    /// Proves `a == b` (or `a == !b` with `complement`) over all
    /// inputs and cut states.
    ///
    /// # Errors
    ///
    /// Witness replay failures only.
    pub fn prove_equal(
        &mut self,
        a: NetId,
        b: NetId,
        complement: bool,
    ) -> Result<Verdict, VerifyError> {
        self.stats.queries += 1;
        let budget = self.opts.conflict_budget;
        let Some(two) = self.two.as_mut() else {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        };
        let (Some(la), Some(lb)) = (two.net_lit[a.index()], two.net_lit[b.index()]) else {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        };
        let lb = if complement { !lb } else { lb };
        if la == lb {
            return Ok(self.tally(Verdict::Proved));
        }
        let miter = two.aig.xor(la, lb);
        two.enc.encode(&two.aig, miter);
        let assum = two.enc.lit_of(miter);
        let verdict = match two.enc.solver.solve(&[assum], budget) {
            SatResult::Unsat => Verdict::Proved,
            SatResult::Unknown => Verdict::Unknown { conflicts: budget },
            SatResult::Sat => {
                let va = two.enc.model_lit(la);
                let raw_b = two.net_lit[b.index()].expect("checked above");
                let vb = two.enc.model_lit(raw_b);
                let w = witness_from_model(
                    two,
                    &self.graph,
                    self.graph.net_names[a.index()].clone(),
                    WitnessCheck::NetsDiffer {
                        other: self.graph.net_names[b.index()].clone(),
                        value: Logic::from_bool(va),
                        other_value: Logic::from_bool(vb),
                    },
                );
                two.enc.solver.retract();
                self.confirm(&w)?;
                Verdict::Refuted(Box::new(w))
            }
        };
        Ok(self.tally(verdict))
    }

    /// Proves that complementing `net` at its driver changes no
    /// primary output and no next-state function — the net is
    /// unobservable, i.e. replaceable by either constant. Returns
    /// `Proved` or `Unknown` only: an observable flip has no
    /// forcible simulator witness, so it is reported as `Unknown`
    /// rather than a `Refuted` nobody can replay.
    ///
    /// # Errors
    ///
    /// Lowering failures for the flipped copy (none in practice: the
    /// original lowering already succeeded).
    pub fn prove_unobservable(&mut self, net: NetId) -> Result<Verdict, VerifyError> {
        self.stats.queries += 1;
        let budget = self.opts.conflict_budget;
        let Some(miter) = self.observe_miter(net)? else {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        };
        let two = self.two.as_mut().expect("observe_miter checked");
        if miter == FALSE {
            return Ok(self.tally(Verdict::Proved));
        }
        // Random-pattern prefilter: any pattern that raises the miter
        // is a concrete observation of the flip — no proof is
        // possible, so skip the solver (and its cone encoding).
        if two.sim_word(miter).iter().any(|&w| w != 0) {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        }
        two.enc.encode(&two.aig, miter);
        let assum = two.enc.lit_of(miter);
        let verdict = match two.enc.solver.solve(&[assum], budget) {
            SatResult::Unsat => Verdict::Proved,
            SatResult::Unknown => Verdict::Unknown { conflicts: budget },
            SatResult::Sat => {
                two.enc.solver.retract();
                Verdict::Unknown { conflicts: 0 }
            }
        };
        Ok(self.tally(verdict))
    }

    /// The any-output-differs miter for flipping `net`, or `None`
    /// when the two-valued model is absent.
    fn observe_miter(&mut self, net: NetId) -> Result<Option<Lit>, VerifyError> {
        if self.two.is_none() {
            return Ok(None);
        }
        let design = self.flat.design_name().to_owned();
        let two = self.two.as_mut().expect("checked");
        let key = net.index() as u32;
        if !two.flipped.contains_key(&key) {
            let outs = lower_flipped(
                &mut two.aig,
                &self.graph,
                &design,
                &two.port_lit,
                &two.state_lit,
                net,
            )?;
            two.flipped
                .insert(key, outs.into_iter().map(|o| o.lit).collect());
        }
        let flipped = two.flipped.get(&key).expect("just inserted").clone();
        let mut miter = FALSE;
        for (orig, flip) in two
            .outputs
            .iter()
            .map(|o| o.lit)
            .zip(flipped)
            .collect::<Vec<_>>()
        {
            if orig == flip {
                continue;
            }
            let x = two.aig.xor(orig, flip);
            miter = two.aig.or(miter, x);
        }
        Ok(Some(miter))
    }

    /// Proves `net` can never carry an unknown value under driven
    /// primary inputs and the reachable may-X state envelope, using
    /// the dual-rail encoding of the simulators' four-state kernels.
    ///
    /// # Errors
    ///
    /// Witness replay failures only.
    pub fn prove_never_x(&mut self, net: NetId) -> Result<Verdict, VerifyError> {
        self.stats.queries += 1;
        let budget = self.opts.conflict_budget;
        if self.ensure_xrail().is_none() {
            return Ok(self.tally(Verdict::Unknown { conflicts: 0 }));
        }
        let net_name = self.graph.net_names[net.index()].clone();
        let xr = self
            .xrail
            .as_mut()
            .and_then(|x| x.as_mut())
            .expect("ensured");
        let rail = xr.rail[net.index()].unwrap_or(X_RAIL);
        if rail.u == FALSE {
            return Ok(self.tally(Verdict::Proved));
        }
        let mut assumptions = xrail_assumptions(xr);
        if rail.u == TRUE {
            // Unconditionally unknown (undriven, black box, or a cone
            // of such): any all-known assignment witnesses it.
            let w = default_x_witness(&self.graph, net_name);
            self.confirm(&w)?;
            return Ok(self.tally(Verdict::Refuted(Box::new(w))));
        }
        xr.enc.encode(&xr.aig, rail.u);
        assumptions.push(xr.enc.lit_of(rail.u));
        let verdict = match xr.enc.solver.solve(&assumptions, budget) {
            SatResult::Unsat => Verdict::Proved,
            SatResult::Unknown => Verdict::Unknown { conflicts: budget },
            SatResult::Sat => {
                let w = x_witness_from_model(xr, &self.graph, net_name);
                xr.enc.solver.retract();
                self.confirm(&w)?;
                Verdict::Refuted(Box::new(w))
            }
        };
        Ok(self.tally(verdict))
    }

    /// Satisfiability don't-cares of the node driving `net`: input
    /// minterms the surrounding logic can never produce. `None` when
    /// the net is not driven by a combinational node or the
    /// two-valued model is absent.
    ///
    /// # Errors
    ///
    /// None in practice (no replay involved).
    pub fn sdc(&mut self, net: NetId) -> Result<Option<CubeList>, VerifyError> {
        let Some((names, lits)) = self.node_inputs(net) else {
            return Ok(None);
        };
        let budget = self.opts.conflict_budget;
        let two = self.two.as_mut().expect("node_inputs checked");
        let mut minterms = Vec::new();
        let mut complete = true;
        for m in 0..(1u16 << lits.len()) {
            let assum = minterm_assumptions(two, &lits, m);
            match two.enc.solver.solve(&assum, budget) {
                SatResult::Unsat => minterms.push(m),
                SatResult::Unknown => complete = false,
                SatResult::Sat => two.enc.solver.retract(),
            }
        }
        Ok(Some(CubeList {
            inputs: names,
            minterms,
            complete,
        }))
    }

    /// Observability don't-cares of the node driving `net`: input
    /// minterms under which complementing the net changes no output
    /// or next-state function. `None` as for [`Oracle::sdc`].
    ///
    /// # Errors
    ///
    /// Lowering failures for the flipped copy.
    pub fn odc(&mut self, net: NetId) -> Result<Option<CubeList>, VerifyError> {
        let Some((names, lits)) = self.node_inputs(net) else {
            return Ok(None);
        };
        let Some(miter) = self.observe_miter(net)? else {
            return Ok(None);
        };
        let budget = self.opts.conflict_budget;
        let two = self.two.as_mut().expect("node_inputs checked");
        let mut minterms = Vec::new();
        let mut complete = true;
        if miter != FALSE {
            two.enc.encode(&two.aig, miter);
        }
        for m in 0..(1u16 << lits.len()) {
            if miter == FALSE {
                minterms.push(m);
                continue;
            }
            let mut assum = minterm_assumptions(two, &lits, m);
            assum.push(two.enc.lit_of(miter));
            match two.enc.solver.solve(&assum, budget) {
                SatResult::Unsat => minterms.push(m),
                SatResult::Unknown => complete = false,
                SatResult::Sat => two.enc.solver.retract(),
            }
        }
        Ok(Some(CubeList {
            inputs: names,
            minterms,
            complete,
        }))
    }

    /// The producer node's input names and literals, encoded.
    fn node_inputs(&mut self, net: NetId) -> Option<(Vec<String>, Vec<Lit>)> {
        let two = self.two.as_ref()?;
        let node = self.graph.eval_order.iter().find(|n| n.output == net)?;
        if node.inputs.len() > 6 {
            return None;
        }
        let mut names = Vec::new();
        let mut lits = Vec::new();
        for &n in &node.inputs {
            names.push(self.graph.net_names[n.index()].clone());
            lits.push(two.net_lit[n.index()]?);
        }
        let two = self.two.as_mut()?;
        for &l in &lits {
            two.enc.encode(&two.aig, l);
        }
        Some((names, lits))
    }

    /// Enumerates the reachable register-cut states by SAT-driven
    /// breadth-first image computation. `None` when the two-valued
    /// model is absent, a power-on value is unknown, or the state is
    /// wider than [`OracleOptions::max_state_bits`].
    ///
    /// # Errors
    ///
    /// None in practice (no replay involved).
    pub fn reachable_states(&mut self) -> Result<Option<ReachSet>, VerifyError> {
        let Some(two) = self.two.as_ref() else {
            return Ok(None);
        };
        // State bit order and power-on values.
        let mut bits: Vec<(String, usize)> = Vec::new();
        let mut init: Vec<bool> = Vec::new();
        for elem in &self.graph.seq {
            match &elem.kind {
                SeqKind::Ff { init: i, .. } => {
                    let Some(b) = i.to_bool() else {
                        return Ok(None);
                    };
                    bits.push((elem.path.clone(), 0));
                    init.push(b);
                }
                SeqKind::Srl16 { init: i, .. } | SeqKind::Ram16 { init: i, .. } => {
                    for bit in 0..16 {
                        bits.push((elem.path.clone(), bit));
                        init.push((i >> bit) & 1 == 1);
                    }
                }
            }
        }
        if bits.len() > self.opts.max_state_bits {
            return Ok(None);
        }
        if bits.is_empty() {
            return Ok(Some(ReachSet {
                bits,
                init: init.clone(),
                states: vec![init],
                complete: true,
            }));
        }
        // Current-state input literals in the same order.
        let state_in: Vec<Lit> = two
            .cut
            .iter()
            .zip(&two.inputs)
            .filter_map(|(c, &l)| matches!(c, CutRef::State { .. }).then_some(l))
            .collect();
        // Next-state function literals in the same order.
        let next_of: HashMap<(&str, usize), Lit> = two
            .outputs
            .iter()
            .filter_map(|o| match &o.id {
                OutId::NextState { path, bit } => Some(((path.as_str(), *bit), o.lit)),
                OutId::Port { .. } => None,
            })
            .collect();
        let next: Vec<Lit> = bits
            .iter()
            .map(|(path, bit)| next_of[&(path.as_str(), *bit)])
            .collect();
        debug_assert_eq!(state_in.len(), bits.len());

        // A private encoding: blocking clauses are not tautologies, so
        // they must never leak into the shared assumption-only solver.
        let mut enc = Enc::new();
        let two = self.two.as_ref().expect("checked");
        for &l in state_in.iter().chain(&next) {
            enc.encode(&two.aig, l);
        }
        let budget = self.opts.conflict_budget;
        let mut complete = true;
        let mut seen: HashSet<Vec<bool>> = HashSet::new();
        let mut states: Vec<Vec<bool>> = Vec::new();
        let mut queue: VecDeque<Vec<bool>> = VecDeque::new();
        seen.insert(init.clone());
        states.push(init.clone());
        queue.push_back(init.clone());
        let mut transitions = 0usize;
        'bfs: while let Some(s) = queue.pop_front() {
            let assum: Vec<SatLit> = state_in
                .iter()
                .zip(&s)
                .map(|(&l, &v)| {
                    let sl = enc.lit_of(l);
                    if v {
                        sl
                    } else {
                        !sl
                    }
                })
                .collect();
            loop {
                if transitions >= self.opts.max_transitions {
                    complete = false;
                    break 'bfs;
                }
                match enc.solver.solve(&assum, budget) {
                    SatResult::Unsat => break,
                    SatResult::Unknown => {
                        complete = false;
                        break 'bfs;
                    }
                    SatResult::Sat => {
                        let t: Vec<bool> = next.iter().map(|&l| enc.model_lit(l)).collect();
                        enc.solver.retract();
                        transitions += 1;
                        // Block exactly this (state, next) pair.
                        let mut clause: Vec<SatLit> = Vec::with_capacity(2 * bits.len());
                        for (&l, &v) in state_in.iter().zip(&s) {
                            let sl = enc.lit_of(l);
                            clause.push(if v { !sl } else { sl });
                        }
                        for (&l, &v) in next.iter().zip(&t) {
                            let sl = enc.lit_of(l);
                            clause.push(if v { !sl } else { sl });
                        }
                        if !enc.solver.add_clause(&clause) {
                            break;
                        }
                        if seen.insert(t.clone()) {
                            if seen.len() > self.opts.max_states {
                                complete = false;
                                break 'bfs;
                            }
                            states.push(t.clone());
                            queue.push_back(t);
                        }
                    }
                }
            }
        }
        Ok(Some(ReachSet {
            bits,
            init,
            states,
            complete,
        }))
    }

    /// Builds the dual-rail model on first use; `None` when the
    /// design is not levelized (a ring never proves never-X anyway).
    fn ensure_xrail(&mut self) -> Option<()> {
        if self.xrail.is_none() {
            let built = build_dual_rail(&self.graph, self.opts.conflict_budget);
            self.xrail = Some(built.map(Box::new));
        }
        self.xrail.as_ref().and_then(|x| x.as_ref()).map(|_| ())
    }

    fn confirm(&mut self, w: &Witness) -> Result<(), VerifyError> {
        if !self.opts.replay {
            return Ok(());
        }
        self.stats.replays += 1;
        replay::confirm_witness(self.flat, self.opts.clock.as_deref(), w)
    }

    fn tally(&mut self, v: Verdict) -> Verdict {
        match &v {
            Verdict::Proved => self.stats.proved += 1,
            Verdict::Refuted(_) => self.stats.refuted += 1,
            Verdict::Unknown { .. } => self.stats.unknown += 1,
        }
        v
    }
}

/// Builds the equivalence checker's lowering over a fresh cut.
fn build_two_valued(graph: &NetlistGraph, design: &str, seed: u64) -> Option<TwoValued> {
    let mut aig = Aig::new();
    let mut inputs = Vec::new();
    let mut cut = Vec::new();
    let mut port_lit: HashMap<(String, usize), Lit> = HashMap::new();
    for (pi, port) in graph.ports.iter().enumerate() {
        if port.dir != PortDir::Input || port.nets.iter().all(|&n| graph.is_clock_net(n)) {
            continue;
        }
        for bit in 0..port.nets.len() {
            let lit = aig.input();
            port_lit.insert((port.name.clone(), bit), lit);
            inputs.push(lit);
            cut.push(CutRef::Port { port: pi, bit });
        }
    }
    let mut state_lit: HashMap<(String, usize), Lit> = HashMap::new();
    for (si, elem) in graph.seq.iter().enumerate() {
        for bit in 0..elem.kind.state_bits() {
            let lit = aig.input();
            state_lit.insert((elem.path.clone(), bit), lit);
            inputs.push(lit);
            cut.push(CutRef::State { seq: si, bit });
        }
    }
    let lowered = lower_design(&mut aig, graph, design, &port_lit, &state_lit).ok()?;
    let mut rng = XorShift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
    let sim_in = (0..aig.num_inputs())
        .map(|_| std::array::from_fn(|_| rng.next()))
        .collect();
    Some(TwoValued {
        aig,
        net_lit: lowered.net_lit,
        outputs: lowered.outputs,
        inputs,
        cut,
        port_lit,
        state_lit,
        enc: Enc::new(),
        flipped: HashMap::new(),
        sigs: None,
        sim_in,
        sim_vals: Vec::new(),
    })
}

/// Decodes the current SAT model into a full witness assignment.
fn witness_from_model(
    two: &TwoValued,
    graph: &NetlistGraph,
    net: String,
    check: WitnessCheck,
) -> Witness {
    let mut port_vals: HashMap<usize, LogicVec> = HashMap::new();
    let mut state_vals: HashMap<usize, LogicVec> = HashMap::new();
    for (c, &l) in two.cut.iter().zip(&two.inputs) {
        let v = Logic::from_bool(two.enc.model_lit(l));
        match c {
            CutRef::Port { port, bit } => {
                port_vals
                    .entry(*port)
                    .or_insert_with(|| LogicVec::zeros(graph.ports[*port].nets.len()))
                    .set_bit(*bit, v);
            }
            CutRef::State { seq, bit } => {
                state_vals
                    .entry(*seq)
                    .or_insert_with(|| LogicVec::zeros(graph.seq[*seq].kind.state_bits()))
                    .set_bit(*bit, v);
            }
        }
    }
    let inputs = collect_ordered(graph, port_vals, |pi| graph.ports[pi].name.clone());
    let state = collect_ordered(graph, state_vals, |si| graph.seq[si].path.clone());
    Witness {
        net,
        inputs,
        state,
        check,
    }
}

fn collect_ordered(
    _graph: &NetlistGraph,
    map: HashMap<usize, LogicVec>,
    name: impl Fn(usize) -> String,
) -> Vec<(String, LogicVec)> {
    let mut keys: Vec<usize> = map.keys().copied().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| (name(k), map[&k].clone()))
        .collect()
}

/// All-known default witness: inputs zero, every state element at
/// all-zero. Used when a net is unconditionally unknown.
fn default_x_witness(graph: &NetlistGraph, net: String) -> Witness {
    let inputs = graph
        .ports
        .iter()
        .filter(|p| p.dir == PortDir::Input && !p.nets.iter().all(|&n| graph.is_clock_net(n)))
        .map(|p| (p.name.clone(), LogicVec::zeros(p.nets.len())))
        .collect();
    let state = graph
        .seq
        .iter()
        .map(|e| (e.path.clone(), LogicVec::zeros(e.kind.state_bits())))
        .collect();
    Witness {
        net,
        inputs,
        state,
        check: WitnessCheck::NetEquals { value: Logic::X },
    }
}

/// Decodes a dual-rail SAT model into a witness: state bits whose
/// unknown rail is set force `X` through the back door.
fn x_witness_from_model(xr: &DualRail, graph: &NetlistGraph, net: String) -> Witness {
    let mut port_vals: HashMap<usize, LogicVec> = HashMap::new();
    let mut state_vals: HashMap<usize, LogicVec> = HashMap::new();
    for (c, &l) in xr.cut.iter().zip(&xr.inputs) {
        let v = xr.enc.model_lit(l);
        match c {
            XCutRef::PortVal { port, bit } => {
                port_vals
                    .entry(*port)
                    .or_insert_with(|| LogicVec::zeros(graph.ports[*port].nets.len()))
                    .set_bit(*bit, Logic::from_bool(v));
            }
            XCutRef::StateVal { seq, bit } => {
                let entry = state_vals
                    .entry(*seq)
                    .or_insert_with(|| LogicVec::zeros(graph.seq[*seq].kind.state_bits()));
                if entry.bit(*bit) != Logic::X {
                    entry.set_bit(*bit, Logic::from_bool(v));
                }
            }
            XCutRef::StateUnk { seq, bit } => {
                if v {
                    state_vals
                        .entry(*seq)
                        .or_insert_with(|| LogicVec::zeros(graph.seq[*seq].kind.state_bits()))
                        .set_bit(*bit, Logic::X);
                }
            }
        }
    }
    // Ports and states the cone never constrained still need explicit
    // assignments so replay fully drives the design.
    for (pi, p) in graph.ports.iter().enumerate() {
        if p.dir == PortDir::Input && !p.nets.iter().all(|&n| graph.is_clock_net(n)) {
            port_vals
                .entry(pi)
                .or_insert_with(|| LogicVec::zeros(p.nets.len()));
        }
    }
    for (si, e) in graph.seq.iter().enumerate() {
        state_vals
            .entry(si)
            .or_insert_with(|| LogicVec::zeros(e.kind.state_bits()));
    }
    let inputs = collect_ordered(graph, port_vals, |pi| graph.ports[pi].name.clone());
    let state = collect_ordered(graph, state_vals, |si| graph.seq[si].path.clone());
    Witness {
        net,
        inputs,
        state,
        check: WitnessCheck::NetEquals { value: Logic::X },
    }
}

/// Pin every state bit outside the may-X set to known.
fn xrail_assumptions(xr: &mut DualRail) -> Vec<SatLit> {
    let mut assumptions = Vec::new();
    let keys: Vec<(usize, usize)> = xr.state_unk.keys().copied().collect();
    let mut sorted = keys;
    sorted.sort_unstable();
    for key in sorted {
        if xr.may_x.contains(&key) {
            continue;
        }
        let l = xr.state_unk[&key];
        xr.enc.encode(&xr.aig, l);
        assumptions.push(!xr.enc.lit_of(l));
    }
    assumptions
}

/// Builds the dual-rail model and runs the may-X state fixpoint.
fn build_dual_rail(graph: &NetlistGraph, budget: u64) -> Option<DualRail> {
    if !graph.levelized() {
        return None;
    }
    let mut aig = Aig::new();
    let mut rail: Vec<Option<Rail>> = vec![None; graph.net_count];
    let mut inputs = Vec::new();
    let mut cut = Vec::new();
    let mut state_unk: HashMap<(usize, usize), Lit> = HashMap::new();
    let mut may_x: HashSet<(usize, usize)> = HashSet::new();

    for &(net, v) in &graph.const_drives {
        rail[net.index()] = Some(match v {
            Logic::One => const_rail(true),
            Logic::Zero => const_rail(false),
            _ => X_RAIL,
        });
    }
    for &net in &graph.clock_nets {
        rail[net.index()] = Some(ZERO_RAIL);
    }
    for (pi, port) in graph.ports.iter().enumerate() {
        if port.dir != PortDir::Input {
            continue;
        }
        for (bit, &net) in port.nets.iter().enumerate() {
            if rail[net.index()].is_some() {
                continue;
            }
            let v = aig.input();
            inputs.push(v);
            cut.push(XCutRef::PortVal { port: pi, bit });
            rail[net.index()] = Some(Rail { v, u: FALSE });
        }
    }
    // State rails: a (value, unknown) input pair per bit.
    let mut state_rail: Vec<Vec<Rail>> = Vec::with_capacity(graph.seq.len());
    for (si, elem) in graph.seq.iter().enumerate() {
        let mut rails = Vec::new();
        for bit in 0..elem.kind.state_bits() {
            let v = aig.input();
            inputs.push(v);
            cut.push(XCutRef::StateVal { seq: si, bit });
            let u = aig.input();
            inputs.push(u);
            cut.push(XCutRef::StateUnk { seq: si, bit });
            state_unk.insert((si, bit), u);
            rails.push(Rail { v, u });
        }
        if let SeqKind::Ff { init, q, .. } = &elem.kind {
            if init.to_bool().is_none() {
                may_x.insert((si, 0));
            }
            rail[q.index()] = Some(rails[0]);
        }
        state_rail.push(rails);
    }
    for &net in &graph.black_box_outputs {
        rail[net.index()] = Some(X_RAIL);
    }
    // Combinational cones in levelized order (mirrors the batch
    // engine's settle sweep kernel-for-kernel).
    for node in &graph.eval_order {
        let ins: Vec<Rail> = node
            .inputs
            .iter()
            .map(|n| rail[n.index()].unwrap_or(X_RAIL))
            .collect();
        let out = match &node.kind {
            CombKind::Prim(kind) => prim_rail(&mut aig, kind, &ins),
            CombKind::SrlRead { seq } | CombKind::RamRead { seq } => {
                let word: [Rail; 16] = std::array::from_fn(|i| state_rail[*seq][i]);
                word_read_rail(&mut aig, &ins, &word)
            }
        };
        rail[node.output.index()] = Some(out);
    }
    // Next-state unknown functions for the may-X fixpoint.
    let mut next_unk: Vec<((usize, usize), Lit)> = Vec::new();
    for (si, elem) in graph.seq.iter().enumerate() {
        let fetch = |rail: &Vec<Option<Rail>>, n: NetId| rail[n.index()].unwrap_or(X_RAIL);
        match &elem.kind {
            SeqKind::Ff { d, ce, control, .. } => {
                let d = fetch(&rail, *d);
                let cur = state_rail[si][0];
                let (ce1, ce0, ceu) = match ce {
                    None => (TRUE, FALSE, FALSE),
                    Some(c) => ctl_rail(&mut aig, fetch(&rail, *c)),
                };
                let a = aig.and(ce1, d.u);
                let b = aig.and(ce0, cur.u);
                let mut u = aig.or(a, b);
                u = aig.or(u, ceu);
                if let Some((_, ctl)) = control {
                    let (_, c0, cu) = ctl_rail(&mut aig, fetch(&rail, *ctl));
                    let held = aig.and(u, c0);
                    u = aig.or(held, cu);
                }
                next_unk.push(((si, 0), u));
            }
            SeqKind::Srl16 { d, ce, .. } => {
                let d = fetch(&rail, *d);
                let (ce1, ce0, ceu) = ctl_rail(&mut aig, fetch(&rail, *ce));
                for bit in 0..16 {
                    let src = if bit == 0 { d } else { state_rail[si][bit - 1] };
                    let a = aig.and(ce1, src.u);
                    let b = aig.and(ce0, state_rail[si][bit].u);
                    let mut u = aig.or(a, b);
                    u = aig.or(u, ceu);
                    next_unk.push(((si, bit), u));
                }
            }
            SeqKind::Ram16 { d, we, addr, .. } => {
                let d = fetch(&rail, *d);
                let (we1, we0, weu) = ctl_rail(&mut aig, fetch(&rail, *we));
                let addr: Vec<Rail> = addr.iter().map(|a| fetch(&rail, *a)).collect();
                let mut addr_unk = FALSE;
                for a in &addr {
                    addr_unk = aig.or(addr_unk, a.u);
                }
                let w1au = aig.and(we1, addr_unk);
                let xmask = aig.or(weu, w1au);
                for (idx, slot) in state_rail[si].clone().iter().enumerate() {
                    let mut sel = TRUE;
                    for (i, a) in addr.iter().enumerate() {
                        let k = if (idx >> i) & 1 == 1 {
                            known1_rail(&mut aig, *a)
                        } else {
                            known0_rail(&mut aig, *a)
                        };
                        sel = aig.and(sel, k);
                    }
                    let write = aig.and(we1, sel);
                    let nsel = aig.and(!addr_unk, !sel);
                    let keep = aig.and(we1, nsel);
                    let hold = aig.or(we0, keep);
                    let a = aig.and(write, d.u);
                    let b = aig.and(hold, slot.u);
                    let mut u = aig.or(a, b);
                    u = aig.or(u, xmask);
                    next_unk.push(((si, idx), u));
                }
            }
        }
    }

    let mut xr = DualRail {
        aig,
        rail,
        inputs,
        cut,
        state_unk,
        may_x,
        enc: Enc::new(),
    };
    // May-X fixpoint: a state bit joins the set when, with all known
    // bits pinned, its next-state unknown rail is satisfiable. Budget
    // exhaustion joins pessimistically — an over-approximation keeps
    // every later never-X proof sound.
    loop {
        let mut changed = false;
        for &(key, u) in &next_unk {
            if xr.may_x.contains(&key) {
                continue;
            }
            let grew = if u == FALSE {
                false
            } else if u == TRUE {
                true
            } else {
                let mut assumptions = xrail_assumptions(&mut xr);
                xr.enc.encode(&xr.aig, u);
                assumptions.push(xr.enc.lit_of(u));
                match xr.enc.solver.solve(&assumptions, budget) {
                    SatResult::Unsat => false,
                    SatResult::Unknown => true,
                    SatResult::Sat => {
                        xr.enc.solver.retract();
                        true
                    }
                }
            };
            if grew {
                xr.may_x.insert(key);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Some(xr)
}

/// `(known-1, known-0, unknown)` control literals of a rail.
fn ctl_rail(aig: &mut Aig, r: Rail) -> (Lit, Lit, Lit) {
    let k1 = known1_rail(aig, r);
    let k0 = known0_rail(aig, r);
    (k1, k0, r.u)
}

fn known0_rail(aig: &mut Aig, r: Rail) -> Lit {
    aig.and(!r.v, !r.u)
}

fn known1_rail(aig: &mut Aig, r: Rail) -> Lit {
    aig.and(r.v, !r.u)
}

fn not_rail(aig: &mut Aig, p: Rail) -> Rail {
    Rail {
        v: aig.and(!p.v, !p.u),
        u: p.u,
    }
}

fn pess_rail(aig: &mut Aig, p: Rail) -> Rail {
    Rail {
        v: aig.and(p.v, !p.u),
        u: p.u,
    }
}

fn and_rail(aig: &mut Aig, a: Rail, b: Rail) -> Rail {
    let z0 = known0_rail(aig, a);
    let z1 = known0_rail(aig, b);
    let zero = aig.or(z0, z1);
    let o0 = known1_rail(aig, a);
    let o1 = known1_rail(aig, b);
    let one = aig.and(o0, o1);
    let known = aig.or(zero, one);
    Rail { v: one, u: !known }
}

fn or_rail(aig: &mut Aig, a: Rail, b: Rail) -> Rail {
    let o0 = known1_rail(aig, a);
    let o1 = known1_rail(aig, b);
    let one = aig.or(o0, o1);
    let z0 = known0_rail(aig, a);
    let z1 = known0_rail(aig, b);
    let zero = aig.and(z0, z1);
    let known = aig.or(zero, one);
    Rail { v: one, u: !known }
}

fn xor_rail(aig: &mut Aig, a: Rail, b: Rail) -> Rail {
    let u = aig.or(a.u, b.u);
    let x = aig.xor(a.v, b.v);
    Rail {
        v: aig.and(x, !u),
        u,
    }
}

fn mux_rail(aig: &mut Aig, sel: Rail, d0: Rail, d1: Rail) -> Rail {
    let s0 = known0_rail(aig, sel);
    let s1 = known1_rail(aig, sel);
    let su = sel.u;
    let p0 = pess_rail(aig, d0);
    let p1 = pess_rail(aig, d1);
    let both_known = aig.and(!d0.u, !d1.u);
    let same = !aig.xor(d0.v, d1.v);
    let agree = aig.and(both_known, same);
    let v0 = aig.and(s0, p0.v);
    let v1 = aig.and(s1, p1.v);
    let sua = aig.and(su, agree);
    let vu = aig.and(sua, d0.v);
    let mut v = aig.or(v0, v1);
    v = aig.or(v, vu);
    let u0 = aig.and(s0, d0.u);
    let u1 = aig.and(s1, d1.u);
    let uu = aig.and(su, !agree);
    let mut u = aig.or(u0, u1);
    u = aig.or(u, uu);
    Rail { v, u }
}

fn lut_rail(aig: &mut Aig, n: usize, init: u16, ins: &[Rail]) -> Rail {
    if n == 0 {
        return const_rail(init & 1 == 1);
    }
    let half = 1u32 << (n - 1);
    let lo = lut_rail(aig, n - 1, init & ((1u32 << half) - 1) as u16, ins);
    let hi = lut_rail(aig, n - 1, (u32::from(init) >> half) as u16, ins);
    mux_rail(aig, ins[n - 1], lo, hi)
}

fn word_read_rail(aig: &mut Aig, addr: &[Rail], word: &[Rail; 16]) -> Rail {
    let mut unk = FALSE;
    for a in addr {
        unk = aig.or(unk, a.u);
    }
    let mut v = FALSE;
    let mut u = FALSE;
    for (idx, w) in word.iter().enumerate() {
        let mut sel = TRUE;
        for (i, a) in addr.iter().enumerate() {
            let k = if (idx >> i) & 1 == 1 {
                known1_rail(aig, *a)
            } else {
                known0_rail(aig, *a)
            };
            sel = aig.and(sel, k);
        }
        let sv = aig.and(sel, w.v);
        v = aig.or(v, sv);
        let su = aig.and(sel, w.u);
        u = aig.or(u, su);
    }
    let mut agree1 = TRUE;
    let mut agree0 = TRUE;
    for w in word {
        let k1 = known1_rail(aig, *w);
        agree1 = aig.and(agree1, k1);
        let k0 = known0_rail(aig, *w);
        agree0 = aig.and(agree0, k0);
    }
    let vk = aig.and(v, !unk);
    let vu = aig.and(unk, agree1);
    let uk = aig.and(u, !unk);
    let any_agree = aig.or(agree1, agree0);
    let uu = aig.and(unk, !any_agree);
    Rail {
        v: aig.or(vk, vu),
        u: aig.or(uk, uu),
    }
}

/// One combinational primitive through the four-state kernels,
/// mirroring `eval_prim_k` case-for-case.
fn prim_rail(aig: &mut Aig, kind: &PrimKind, ins: &[Rail]) -> Rail {
    match kind {
        PrimKind::Inv => not_rail(aig, ins[0]),
        PrimKind::Buf | PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => pess_rail(aig, ins[0]),
        PrimKind::And(n) => ins[1..*n as usize]
            .iter()
            .fold(ins[0], |acc, &i| and_rail(aig, acc, i)),
        PrimKind::Or(n) => ins[1..*n as usize]
            .iter()
            .fold(ins[0], |acc, &i| or_rail(aig, acc, i)),
        PrimKind::Nand(n) => {
            let a = prim_rail(aig, &PrimKind::And(*n), ins);
            not_rail(aig, a)
        }
        PrimKind::Nor(n) => {
            let o = prim_rail(aig, &PrimKind::Or(*n), ins);
            not_rail(aig, o)
        }
        PrimKind::Xor(n) => ins[1..*n as usize]
            .iter()
            .fold(ins[0], |acc, &i| xor_rail(aig, acc, i)),
        PrimKind::Xnor2 => {
            let x = xor_rail(aig, ins[0], ins[1]);
            not_rail(aig, x)
        }
        // mux2 inputs are [i0, i1, sel].
        PrimKind::Mux2 => mux_rail(aig, ins[2], ins[0], ins[1]),
        PrimKind::Lut { inputs, init } => lut_rail(aig, *inputs as usize, *init, ins),
        // muxcy inputs are [ci, di, s]; s=1 selects the carry-in.
        PrimKind::Muxcy => mux_rail(aig, ins[2], ins[1], ins[0]),
        PrimKind::Xorcy => xor_rail(aig, ins[0], ins[1]),
        PrimKind::MultAnd => and_rail(aig, ins[0], ins[1]),
        PrimKind::Rom16x1 { init } => lut_rail(aig, 4, *init, ins),
        PrimKind::Gnd => ZERO_RAIL,
        PrimKind::Vcc => const_rail(true),
        PrimKind::Ff { .. } | PrimKind::Srl16 { .. } | PrimKind::Ram16x1 { .. } => {
            unreachable!("sequential primitives are not evaluation nodes")
        }
    }
}

/// Rebuilds `root`'s cone with one node replaced by `with`.
fn substitute(aig: &mut Aig, root: Lit, node: usize, with: Lit) -> Lit {
    let mut map: HashMap<usize, Lit> = HashMap::new();
    map.insert(node, with);
    let mut stack = vec![root.node()];
    while let Some(n) = stack.pop() {
        if map.contains_key(&n) {
            continue;
        }
        match aig.node(Lit::new(n, false)) {
            Node::Const | Node::Input(_) => {
                map.insert(n, Lit::new(n, false));
            }
            Node::And(a, b) => {
                let (na, nb) = (a.node(), b.node());
                let (ma, mb) = (map.get(&na).copied(), map.get(&nb).copied());
                if let (Some(x), Some(y)) = (ma, mb) {
                    let xa = if a.negated() { !x } else { x };
                    let xb = if b.negated() { !y } else { y };
                    let r = aig.and(xa, xb);
                    map.insert(n, r);
                } else {
                    stack.push(n);
                    if ma.is_none() {
                        stack.push(na);
                    }
                    if mb.is_none() {
                        stack.push(nb);
                    }
                }
            }
        }
    }
    let r = map[&root.node()];
    if root.negated() {
        !r
    } else {
        r
    }
}

/// Minterm `m` pinned across `lits` as solver assumptions.
fn minterm_assumptions(two: &TwoValued, lits: &[Lit], m: u16) -> Vec<SatLit> {
    lits.iter()
        .enumerate()
        .map(|(i, &l)| {
            let sl = two.enc.lit_of(l);
            if (m >> i) & 1 == 1 {
                sl
            } else {
                !sl
            }
        })
        .collect()
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}
