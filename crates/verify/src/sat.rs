//! A compact CDCL SAT solver: two-watched-literal propagation,
//! first-UIP conflict learning, VSIDS decision heuristics with phase
//! saving, and Luby restarts — hand-rolled on `std` alone, like every
//! other engine in this workspace.
//!
//! The equivalence checker drives it incrementally: the miter's
//! Tseitin clauses accumulate across queries, and each query solves
//! under *assumptions* (MiniSat-style: assumptions become the first
//! decisions, and a conflict that forces backtracking past them is an
//! UNSAT answer for that query without poisoning the clause database).
//! Conflict budgets keep individual queries bounded; an exhausted
//! budget is reported as [`SatResult::Unknown`], never misread as a
//! verdict.

/// A boolean variable, numbered from 0.
pub type Var = u32;

/// A solver literal: variable shifted left once, low bit set for
/// negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatLit(u32);

impl SatLit {
    /// The positive literal of `v`.
    #[must_use]
    pub fn pos(v: Var) -> Self {
        SatLit(v << 1)
    }

    /// The negative literal of `v`.
    #[must_use]
    pub fn neg(v: Var) -> Self {
        SatLit((v << 1) | 1)
    }

    /// The underlying variable.
    #[must_use]
    pub fn var(self) -> Var {
        self.0 >> 1
    }

    /// `true` when this is the negative literal.
    #[must_use]
    pub fn negated(self) -> bool {
        self.0 & 1 == 1
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for SatLit {
    type Output = SatLit;
    fn not(self) -> SatLit {
        SatLit(self.0 ^ 1)
    }
}

/// Outcome of one [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable; a model is available via [`Solver::model_value`].
    Sat,
    /// Unsatisfiable under the given assumptions.
    Unsat,
    /// The conflict budget ran out before a decision was reached.
    Unknown,
}

/// Tri-state assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

const NO_REASON: u32 = u32::MAX;

/// Activity-ordered indexed max-heap over variables.
#[derive(Debug, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// Position of each var in `heap`, `usize::MAX` when absent.
    pos: Vec<usize>,
}

impl VarHeap {
    fn contains(&self, v: Var) -> bool {
        (v as usize) < self.pos.len() && self.pos[v as usize] != usize::MAX
    }

    fn grow(&mut self, n: usize) {
        while self.pos.len() < n {
            self.pos.push(usize::MAX);
        }
    }

    fn insert(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.grow(v as usize + 1);
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, act);
    }

    fn pop(&mut self, act: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("nonempty");
        self.pos[top as usize] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, act);
        }
        Some(top)
    }

    fn bumped(&mut self, v: Var, act: &[f64]) {
        if self.contains(v) {
            self.sift_up(self.pos[v as usize], act);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let p = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[p] as usize] {
                break;
            }
            self.swap(i, p);
            i = p;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i;
        self.pos[self.heap[j] as usize] = j;
    }
}

/// The CDCL solver.
#[derive(Debug, Default)]
pub struct Solver {
    /// Clause database; learnt clauses are appended after problem
    /// clauses and never deleted (per-query conflict budgets bound
    /// growth).
    clauses: Vec<Vec<SatLit>>,
    /// Watch lists indexed by literal: clauses currently watching it.
    watches: Vec<Vec<u32>>,
    assign: Vec<LBool>,
    /// Decision level at which each var was assigned.
    level: Vec<u32>,
    /// Clause that implied each var (`NO_REASON` for decisions).
    reason: Vec<u32>,
    trail: Vec<SatLit>,
    /// Trail index where each decision level starts.
    trail_lim: Vec<usize>,
    qhead: usize,
    /// VSIDS activities and the decision heap.
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    /// Saved phases: last assigned polarity per var.
    phase: Vec<bool>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// `false` after a top-level contradiction: everything is UNSAT.
    ok: bool,
    /// Total conflicts across all queries (statistics).
    total_conflicts: u64,
}

impl Solver {
    /// An empty solver.
    #[must_use]
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Total conflicts across all `solve` calls.
    #[must_use]
    pub fn total_conflicts(&self) -> u64 {
        self.total_conflicts
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.insert(v, &self.activity);
        v
    }

    fn value_lit(&self, l: SatLit) -> LBool {
        match self.assign[l.var() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.negated() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.negated() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// Reads a literal from the most recent `Sat` model. Unassigned
    /// vars (never touched by the search) read `false`.
    #[must_use]
    pub fn model_value(&self, l: SatLit) -> bool {
        match self.value_lit(l) {
            LBool::True => true,
            LBool::False => false,
            LBool::Undef => l.negated(),
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause (at decision level 0). Returns `false` if the
    /// clause database became unsatisfiable.
    pub fn add_clause(&mut self, lits: &[SatLit]) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.ok {
            return false;
        }
        // Simplify: sort/dedup, drop tautologies and false literals.
        let mut c: Vec<SatLit> = lits.to_vec();
        c.sort_by_key(|l| l.0);
        c.dedup();
        let mut out = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: l ∨ ¬l
            }
            match self.value_lit(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => {}          // drop
                LBool::Undef => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], NO_REASON);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let id = self.clauses.len() as u32;
                self.watches[out[0].index()].push(id);
                self.watches[out[1].index()].push(id);
                self.clauses.push(out);
                true
            }
        }
    }

    fn enqueue(&mut self, l: SatLit, reason: u32) {
        let v = l.var() as usize;
        debug_assert_eq!(self.assign[v], LBool::Undef);
        self.assign[v] = if l.negated() {
            LBool::False
        } else {
            LBool::True
        };
        self.phase[v] = !l.negated();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause id, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            // Clauses watching ¬p must find a new watch or propagate.
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut keep = 0;
            let mut conflict = None;
            let mut i = 0;
            while i < ws.len() {
                let cid = ws[i];
                i += 1;
                let clause = &mut self.clauses[cid as usize];
                if clause[0] == false_lit {
                    clause.swap(0, 1);
                }
                debug_assert_eq!(clause[1], false_lit);
                let first = clause[0];
                if self.value_lit(first) == LBool::True {
                    ws[keep] = cid;
                    keep += 1;
                    continue;
                }
                // Look for an unwatched non-false literal.
                let mut moved = false;
                for k in 2..self.clauses[cid as usize].len() {
                    let l = self.clauses[cid as usize][k];
                    if self.value_lit(l) != LBool::False {
                        self.clauses[cid as usize].swap(1, k);
                        self.watches[l.index()].push(cid);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting.
                ws[keep] = cid;
                keep += 1;
                if self.value_lit(first) == LBool::False {
                    conflict = Some(cid);
                    // Keep the rest of the watch list intact.
                    while i < ws.len() {
                        ws[keep] = ws[i];
                        keep += 1;
                        i += 1;
                    }
                    break;
                }
                self.enqueue(first, cid);
            }
            ws.truncate(keep);
            self.watches[false_lit.index()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        let a = &mut self.activity[v as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    /// First-UIP conflict analysis. Returns the learnt clause (the
    /// asserting literal first) and the backtrack level.
    fn analyze(&mut self, confl: u32) -> (Vec<SatLit>, u32) {
        let mut learnt: Vec<SatLit> = vec![SatLit::pos(0)]; // slot 0 patched below
        let mut counter = 0usize;
        let mut p: Option<SatLit> = None;
        let mut idx = self.trail.len();
        let mut reason_id = confl;
        let current = self.decision_level();
        loop {
            let clause = &self.clauses[reason_id as usize];
            // For a reason clause, lits[0] is the literal it implied.
            let start = usize::from(p.is_some());
            let qs: Vec<SatLit> = clause[start..].to_vec();
            for q in qs {
                let v = q.var() as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] >= current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next seen literal on the trail.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var() as usize] {
                    break;
                }
            }
            let pl = self.trail[idx];
            self.seen[pl.var() as usize] = false;
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                break;
            }
            reason_id = self.reason[pl.var() as usize];
            debug_assert_ne!(reason_id, NO_REASON);
        }
        learnt[0] = !p.expect("UIP found");
        // Backtrack to the second-highest level in the clause; move
        // that literal into the watch slot.
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var() as usize] > self.level[learnt[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var() as usize];
        }
        for l in &learnt {
            self.seen[l.var() as usize] = false;
        }
        (learnt, bt)
    }

    fn cancel_until(&mut self, lvl: u32) {
        if self.decision_level() <= lvl {
            return;
        }
        let bound = self.trail_lim[lvl as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("trail nonempty");
            let v = l.var();
            self.assign[v as usize] = LBool::Undef;
            self.reason[v as usize] = NO_REASON;
            self.heap.insert(v, &self.activity);
        }
        self.trail_lim.truncate(lvl as usize);
        self.qhead = self.trail.len();
    }

    /// Records a learnt clause and enqueues its asserting literal.
    fn learn(&mut self, learnt: Vec<SatLit>) {
        let assert_lit = learnt[0];
        if learnt.len() == 1 {
            self.enqueue(assert_lit, NO_REASON);
            return;
        }
        let id = self.clauses.len() as u32;
        self.watches[learnt[0].index()].push(id);
        self.watches[learnt[1].index()].push(id);
        self.clauses.push(learnt);
        self.enqueue(assert_lit, id);
    }

    /// The reluctant-doubling (Luby) sequence, 1-indexed.
    fn luby(mut i: u64) -> u64 {
        // Find k with 2^k - 1 >= i; descend.
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i {
                k += 1;
            }
            if (1u64 << k) - 1 == i {
                return 1u64 << (k - 1);
            }
            i -= (1u64 << (k - 1)) - 1;
        }
    }

    /// Solves under `assumptions` with a conflict budget (0 means
    /// unlimited). The solver always returns at decision level 0, so
    /// clauses can be added between calls.
    pub fn solve(&mut self, assumptions: &[SatLit], conflict_limit: u64) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        let mut conflicts = 0u64;
        let mut restarts = 0u64;
        let mut restart_budget = 64 * Self::luby(1);
        let result = 'outer: loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                self.total_conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break SatResult::Unsat;
                }
                // A conflict while only assumption decisions are on
                // the stack can still be resolved by learning — only
                // level 0 means truly unsatisfiable. Analyze always.
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                self.learn(learnt);
                self.var_inc /= 0.95;
                if conflict_limit != 0 && conflicts >= conflict_limit {
                    break SatResult::Unknown;
                }
                if conflicts >= restart_budget {
                    restarts += 1;
                    restart_budget = conflicts + 64 * Self::luby(restarts + 1);
                    self.cancel_until(0);
                }
            } else {
                // Place assumptions as the first decisions.
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Already implied: dummy level keeps the
                            // level↔assumption indexing aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => break 'outer SatResult::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                            continue 'outer;
                        }
                    }
                }
                // Pick a branching variable.
                let mut decision = None;
                while let Some(v) = self.heap.pop(&self.activity) {
                    if self.assign[v as usize] == LBool::Undef {
                        decision = Some(v);
                        break;
                    }
                }
                match decision {
                    None => break SatResult::Sat,
                    Some(v) => {
                        let lit = if self.phase[v as usize] {
                            SatLit::pos(v)
                        } else {
                            SatLit::neg(v)
                        };
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, NO_REASON);
                    }
                }
            }
        };
        if result != SatResult::Sat {
            self.cancel_until(0);
        }
        // For Sat, the model lives in `assign`; the *next* call (or
        // clause addition) must therefore start by cancelling.
        result
    }

    /// Retracts the model trail after a `Sat` answer so clauses can be
    /// added again. Harmless when already at level 0.
    pub fn retract(&mut self) {
        self.cancel_until(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive satisfiability over ≤ 16 vars.
    fn brute_force(num_vars: usize, clauses: &[Vec<SatLit>], assumps: &[SatLit]) -> bool {
        'outer: for m in 0..(1u32 << num_vars) {
            let val = |l: SatLit| ((m >> l.var()) & 1 == 1) != l.negated();
            if !assumps.iter().all(|&a| val(a)) {
                continue;
            }
            for c in clauses {
                if !c.iter().any(|&l| val(l)) {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    fn build(num_vars: usize, clauses: &[Vec<SatLit>]) -> (Solver, bool) {
        let mut s = Solver::new();
        for _ in 0..num_vars {
            s.new_var();
        }
        let mut ok = true;
        for c in clauses {
            ok = s.add_clause(c);
            if !ok {
                break;
            }
        }
        (s, ok)
    }

    #[test]
    fn trivial_cases() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[SatLit::pos(a)]));
        assert_eq!(s.solve(&[], 0), SatResult::Sat);
        assert!(s.model_value(SatLit::pos(a)));
        s.retract();
        assert_eq!(s.solve(&[SatLit::neg(a)], 0), SatResult::Unsat);
        // The failed assumption must not poison later queries.
        assert_eq!(s.solve(&[SatLit::pos(a)], 0), SatResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[SatLit::pos(a)]));
        assert!(!s.add_clause(&[SatLit::neg(a)]));
        assert_eq!(s.solve(&[], 0), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. Each pigeon somewhere; no two
        // pigeons share a hole.
        let mut s = Solver::new();
        let mut p = [[SatLit::pos(0); 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = SatLit::pos(s.new_var());
            }
        }
        for row in &p {
            assert!(s.add_clause(&[row[0], row[1]]));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    assert!(s.add_clause(&[!a, !b]));
                }
            }
        }
        assert_eq!(s.solve(&[], 0), SatResult::Unsat);
    }

    #[test]
    fn differential_random_3cnf_vs_brute_force() {
        // Hand-rolled xorshift so the test stays dependency-light.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..300 {
            let num_vars = 4 + (rng() % 6) as usize; // 4..=9
            let num_clauses = 2 + (rng() % 30) as usize;
            let clauses: Vec<Vec<SatLit>> = (0..num_clauses)
                .map(|_| {
                    let len = 1 + (rng() % 3) as usize;
                    (0..len)
                        .map(|_| {
                            let v = (rng() % num_vars as u64) as Var;
                            if rng() & 1 == 1 {
                                SatLit::pos(v)
                            } else {
                                SatLit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            let assumps: Vec<SatLit> = if round % 3 == 0 {
                let v = (rng() % num_vars as u64) as Var;
                vec![if rng() & 1 == 1 {
                    SatLit::pos(v)
                } else {
                    SatLit::neg(v)
                }]
            } else {
                Vec::new()
            };
            let want = brute_force(num_vars, &clauses, &assumps);
            let (mut s, ok) = build(num_vars, &clauses);
            let got = if !ok {
                false
            } else {
                match s.solve(&assumps, 0) {
                    SatResult::Sat => {
                        // The model must actually satisfy everything.
                        for c in &clauses {
                            assert!(
                                c.iter().any(|&l| s.model_value(l)),
                                "round {round}: model violates clause"
                            );
                        }
                        for &a in &assumps {
                            assert!(s.model_value(a), "round {round}: model violates assumption");
                        }
                        true
                    }
                    SatResult::Unsat => false,
                    SatResult::Unknown => panic!("no budget set"),
                }
            };
            assert_eq!(got, want, "round {round} disagrees with brute force");
        }
    }

    #[test]
    fn incremental_queries_share_learnt_clauses() {
        // xor chain: x0 ^ x1 = t0, t0 ^ x2 = t1 … query equivalences.
        let mut s = Solver::new();
        let xs: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        // x5 = x0 ^ x1 ^ x2 ^ x3 ^ x4 via Tseitin xor clauses chained.
        let mut acc = xs[0];
        for &x in &xs[1..5] {
            let t = s.new_var();
            let (a, b, o) = (SatLit::pos(acc), SatLit::pos(x), SatLit::pos(t));
            assert!(s.add_clause(&[!a, !b, !o]));
            assert!(s.add_clause(&[a, b, !o]));
            assert!(s.add_clause(&[a, !b, o]));
            assert!(s.add_clause(&[!a, b, o]));
            acc = t;
        }
        // Tie x5 to the chain output.
        assert!(s.add_clause(&[SatLit::pos(xs[5]), SatLit::neg(acc)]));
        assert!(s.add_clause(&[SatLit::neg(xs[5]), SatLit::pos(acc)]));
        // Query 1: all inputs 0 forces x5 = 0.
        let mut assumps: Vec<SatLit> = xs[..5].iter().map(|&v| SatLit::neg(v)).collect();
        assumps.push(SatLit::pos(xs[5]));
        assert_eq!(s.solve(&assumps, 0), SatResult::Unsat);
        // Query 2: one input high forces x5 = 1.
        let mut assumps: Vec<SatLit> = xs[1..5].iter().map(|&v| SatLit::neg(v)).collect();
        assumps.push(SatLit::pos(xs[0]));
        assumps.push(SatLit::neg(xs[5]));
        assert_eq!(s.solve(&assumps, 0), SatResult::Unsat);
        // Query 3: satisfiable case.
        assert_eq!(s.solve(&[SatLit::pos(xs[5])], 0), SatResult::Sat);
        s.retract();
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard pigeonhole instance with a 1-conflict budget.
        let mut s = Solver::new();
        let n = 6; // 6 pigeons, 5 holes
        let holes = 5;
        let mut p = vec![vec![SatLit::pos(0); holes]; n];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = SatLit::pos(s.new_var());
            }
        }
        for row in &p {
            assert!(s.add_clause(&row.clone()));
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    assert!(s.add_clause(&[!a, !b]));
                }
            }
        }
        assert_eq!(s.solve(&[], 1), SatResult::Unknown);
        // And without the budget it decides.
        assert_eq!(s.solve(&[], 0), SatResult::Unsat);
    }
}
