//! Register and shift-register module generators.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

use crate::place_column;

/// A clocked register bank with optional clock-enable and asynchronous
/// clear.
///
/// Ports: `clk`, `d`, `q`, plus `ce`/`clr` when enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    width: u32,
    has_ce: bool,
    has_clr: bool,
}

impl Register {
    /// A register of the given width.
    #[must_use]
    pub fn new(width: u32) -> Self {
        Register {
            width,
            has_ce: false,
            has_clr: false,
        }
    }

    /// Adds a clock-enable port `ce`.
    #[must_use]
    pub fn with_ce(mut self) -> Self {
        self.has_ce = true;
        self
    }

    /// Adds an asynchronous clear port `clr`.
    #[must_use]
    pub fn with_clr(mut self) -> Self {
        self.has_clr = true;
        self
    }
}

impl Generator for Register {
    fn type_name(&self) -> String {
        format!("reg_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        let mut ports = vec![
            PortSpec::input("clk", 1),
            PortSpec::input("d", self.width),
            PortSpec::output("q", self.width),
        ];
        if self.has_ce {
            ports.insert(2, PortSpec::input("ce", 1));
        }
        if self.has_clr {
            ports.insert(2, PortSpec::input("clr", 1));
        }
        ports
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be at least 1".to_owned(),
            });
        }
        let clk = ctx.port("clk")?;
        let d = ctx.port("d")?;
        let q = ctx.port("q")?;
        for bit in 0..self.width {
            let db = Signal::bit_of(d, bit);
            let qb = Signal::bit_of(q, bit);
            let ff = if self.has_ce || self.has_clr {
                let ce: Signal = if self.has_ce {
                    ctx.port("ce")?.into()
                } else {
                    let one = ctx.wire(&format!("ce1_{bit}"), 1);
                    ctx.vcc(one)?;
                    one.into()
                };
                let clr: Signal = if self.has_clr {
                    ctx.port("clr")?.into()
                } else {
                    let zero = ctx.wire(&format!("clr0_{bit}"), 1);
                    ctx.gnd(zero)?;
                    zero.into()
                };
                ctx.fdce(clk, ce, clr, db, qb)?
            } else {
                ctx.fd(clk, db, qb)?
            };
            place_column(ctx, ff, bit);
        }
        ctx.set_property("generator", "register");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

/// A fixed-delay shift register mapped onto SRL16 primitives: `depth`
/// cycles of delay for a `width`-bit bus, cascading SRL16s for depths
/// beyond 16.
///
/// Ports: `clk`, `ce`, `d` (`width` bits), `q` (`width` bits).
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::ShiftRegister;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let sr = ShiftRegister::new(8, 20); // 8-bit bus delayed 20 cycles
/// let circuit = Circuit::from_generator(&sr)?;
/// // 20 cycles needs two SRL16s per bit.
/// let stats = ipd_hdl::CircuitStats::of(&circuit);
/// assert_eq!(stats.count_of("virtex:srl16"), 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftRegister {
    width: u32,
    depth: u32,
}

impl ShiftRegister {
    /// A `width`-bit shift register delaying `depth` cycles.
    #[must_use]
    pub fn new(width: u32, depth: u32) -> Self {
        ShiftRegister { width, depth }
    }

    /// Delay in cycles.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

impl Generator for ShiftRegister {
    fn type_name(&self) -> String {
        format!("srl_w{}_d{}", self.width, self.depth)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("clk", 1),
            PortSpec::input("ce", 1),
            PortSpec::input("d", self.width),
            PortSpec::output("q", self.width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 || self.depth == 0 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width and depth must be at least 1".to_owned(),
            });
        }
        let clk = ctx.port("clk")?;
        let ce = ctx.port("ce")?;
        let d = ctx.port("d")?;
        let q = ctx.port("q")?;
        for bit in 0..self.width {
            let mut cur: Signal = Signal::bit_of(d, bit);
            let mut remaining = self.depth;
            let mut stage = 0u32;
            while remaining > 0 {
                let taps = remaining.min(16);
                let out: Signal = if remaining <= 16 {
                    Signal::bit_of(q, bit)
                } else {
                    let w = ctx.wire(&format!("b{bit}_s{stage}"), 1);
                    w.into()
                };
                // Address selects tap (delay = addr + 1).
                let addr = ctx.wire(&format!("b{bit}_a{stage}"), 4);
                ctx.constant(addr, &ipd_hdl::LogicVec::from_u64(u64::from(taps - 1), 4))?;
                let srl = ctx.srl16(0, clk, ce, cur, addr, out.clone())?;
                ctx.set_rloc(srl, ipd_hdl::Rloc::new((bit / 2) as i32, stage as i32));
                cur = out;
                remaining -= taps;
                stage += 1;
            }
        }
        ctx.set_property("generator", "shift_register");
        ctx.set_property("width", i64::from(self.width));
        ctx.set_property("depth", i64::from(self.depth));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn register_latches() {
        let circuit = Circuit::from_generator(&Register::new(8)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("d", 0xAB).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0xAB));
    }

    #[test]
    fn register_ce_and_clr() {
        let circuit = Circuit::from_generator(&Register::new(4).with_ce().with_clr()).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("clr", 0).unwrap();
        sim.set_u64("ce", 1).unwrap();
        sim.set_u64("d", 7).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(7));
        sim.set_u64("ce", 0).unwrap();
        sim.set_u64("d", 3).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(7), "held");
        sim.set_u64("clr", 1).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0), "cleared");
    }

    #[test]
    fn shift_register_delays_exactly() {
        for depth in [1u32, 3, 16, 17, 20] {
            let circuit = Circuit::from_generator(&ShiftRegister::new(1, depth)).unwrap();
            let mut sim = Simulator::new(&circuit).unwrap();
            sim.set_u64("ce", 1).unwrap();
            // Send a single 1 pulse.
            sim.set_u64("d", 1).unwrap();
            sim.cycle(1).unwrap();
            sim.set_u64("d", 0).unwrap();
            // The pulse emerges exactly `depth` cycles after entry; one
            // cycle has elapsed, so it is visible after `depth - 1` more.
            for early in 0..depth.saturating_sub(2) {
                sim.cycle(1).unwrap();
                assert_eq!(
                    sim.peek("q").unwrap().to_u64(),
                    Some(0),
                    "depth {depth}: too early at step {early}"
                );
            }
            if depth > 1 {
                sim.cycle(1).unwrap();
            }
            assert_eq!(
                sim.peek("q").unwrap().to_u64(),
                Some(1),
                "depth {depth}: pulse arrives"
            );
            sim.cycle(1).unwrap();
            assert_eq!(
                sim.peek("q").unwrap().to_u64(),
                Some(0),
                "depth {depth}: pulse passes"
            );
        }
    }

    #[test]
    fn shift_register_bus() {
        let circuit = Circuit::from_generator(&ShiftRegister::new(4, 2)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("ce", 1).unwrap();
        sim.set_u64("d", 0x9).unwrap();
        sim.cycle(2).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0x9));
    }

    #[test]
    fn rejects_zero_params() {
        assert!(Circuit::from_generator(&Register::new(0)).is_err());
        assert!(Circuit::from_generator(&ShiftRegister::new(0, 4)).is_err());
        assert!(Circuit::from_generator(&ShiftRegister::new(4, 0)).is_err());
    }
}
