//! Loadable up/down counter on the carry chain.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

use crate::place_column;

/// Counting direction for a [`Counter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CountDirection {
    /// Increment each enabled cycle.
    Up,
    /// Decrement each enabled cycle.
    Down,
}

/// A synchronous counter with clock-enable and optional parallel load.
///
/// Ports: `clk`, `ce`, `rst` (synchronous, counts from 0 after), and
/// when loadable `load` + `d`; output `q`.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::{CountDirection, Counter};
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let counter = Counter::new(8, CountDirection::Up).loadable();
/// let circuit = Circuit::from_generator(&counter)?;
/// assert!(circuit.primitive_count() > 24);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    width: u32,
    direction: CountDirection,
    loadable: bool,
}

impl Counter {
    /// A counter of the given width and direction.
    #[must_use]
    pub fn new(width: u32, direction: CountDirection) -> Self {
        Counter {
            width,
            direction,
            loadable: false,
        }
    }

    /// Adds a parallel-load port pair (`load`, `d`).
    #[must_use]
    pub fn loadable(mut self) -> Self {
        self.loadable = true;
        self
    }
}

impl Generator for Counter {
    fn type_name(&self) -> String {
        format!(
            "counter_w{}_{}{}",
            self.width,
            match self.direction {
                CountDirection::Up => "up",
                CountDirection::Down => "down",
            },
            if self.loadable { "_load" } else { "" }
        )
    }

    fn ports(&self) -> Vec<PortSpec> {
        let mut ports = vec![
            PortSpec::input("clk", 1),
            PortSpec::input("ce", 1),
            PortSpec::input("rst", 1),
            PortSpec::output("q", self.width),
        ];
        if self.loadable {
            ports.insert(3, PortSpec::input("load", 1));
            ports.insert(4, PortSpec::input("d", self.width));
        }
        ports
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 || self.width > 64 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be 1..=64".to_owned(),
            });
        }
        let clk = ctx.port("clk")?;
        let ce = ctx.port("ce")?;
        let rst = ctx.port("rst")?;
        let q = ctx.port("q")?;
        // Increment/decrement on the carry chain:
        //   up:   next = q + 1  (half = !q_i, di = q_i, carry-in = 1)
        //   down: next = q - 1  (q + all-ones: half = !q_i via xnor 1)
        // Implemented as q + (+-1) with a chain seeded by VCC (up) and
        // a chain computing q + 0xFF..F (down) — equivalently a chain
        // seeded by GND with propagate = !q_i and generate = 1.
        let next = ctx.wire("next", self.width);
        let seed = ctx.wire("c0", 1);
        match self.direction {
            CountDirection::Up => ctx.vcc(seed)?,
            CountDirection::Down => ctx.gnd(seed)?,
        };
        let mut ci: Signal = seed.into();
        for bit in 0..self.width {
            let qb = Signal::bit_of(q, bit);
            // For +1 the addend bit is 0: half-sum = q, carry
            // propagates while q = 1. For −1 (adding all-ones) the
            // addend bit is 1: half-sum = !q, carry generated when
            // q = 1 (di = 1).
            let di_is_one = matches!(self.direction, CountDirection::Down);
            let half = ctx.wire(&format!("h{bit}"), 1);
            match self.direction {
                // half = q (lut1 identity: init bit0=0, bit1=1 → 0b10)
                CountDirection::Up => ctx.lut(0b10, std::slice::from_ref(&qb), half)?,
                // half = !q (lut1 inverter: 0b01)
                CountDirection::Down => ctx.lut(0b01, std::slice::from_ref(&qb), half)?,
            };
            let x = ctx.xorcy(ci.clone(), half, Signal::bit_of(next, bit))?;
            place_column(ctx, x, bit);
            // Full-adder carry: cout = (q&b) | (ci & (q^b)).
            // up (b=0): cout = ci & q → di = 0, select = half = q.
            // down (b=1): cout = q | (ci & !q) → di = 1, select = !q.
            // The top bit's carry-out is never consumed, so its MUXCY
            // (and the constant rail feeding it) are not generated.
            if bit + 1 < self.width {
                let co = ctx.wire(&format!("c{}", bit + 1), 1);
                let di = ctx.wire(&format!("di{bit}"), 1);
                if di_is_one {
                    ctx.vcc(di)?;
                } else {
                    ctx.gnd(di)?;
                }
                let m = ctx.muxcy(ci, di, half, co)?;
                place_column(ctx, m, bit);
                ci = co.into();
            }
        }
        // State: q' = rst ? 0 : load ? d : ce ? next : q, via FDRE +
        // input muxing. FDRE gives sync reset and CE directly. CE must
        // also fire on load; one shared OR drives every FDRE enable
        // (a per-bit copy would be provably redundant logic).
        let en: Signal = if self.loadable {
            let load = ctx.port("load")?;
            let en = ctx.wire("en", 1);
            ctx.or2(ce, load, en)?;
            en.into()
        } else {
            ce.into()
        };
        for bit in 0..self.width {
            let d_in: Signal = if self.loadable {
                let load = ctx.port("load")?;
                let d = ctx.port("d")?;
                let muxed = ctx.wire(&format!("din{bit}"), 1);
                ctx.mux2(
                    Signal::bit_of(next, bit),
                    Signal::bit_of(d, bit),
                    load,
                    muxed,
                )?;
                muxed.into()
            } else {
                Signal::bit_of(next, bit)
            };
            let ff = ctx.fdre(clk, en.clone(), rst, d_in, Signal::bit_of(q, bit))?;
            place_column(ctx, ff, bit);
        }
        ctx.set_property("generator", "counter");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    fn make(dir: CountDirection, loadable: bool) -> Simulator {
        let mut counter = Counter::new(4, dir);
        if loadable {
            counter = counter.loadable();
        }
        let circuit = Circuit::from_generator(&counter).unwrap();
        Simulator::new(&circuit).unwrap()
    }

    #[test]
    fn counts_up_and_wraps() {
        let mut sim = make(CountDirection::Up, false);
        sim.set_u64("ce", 1).unwrap();
        sim.set_u64("rst", 1).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("rst", 0).unwrap();
        for expect in [1u64, 2, 3, 4, 5] {
            sim.cycle(1).unwrap();
            assert_eq!(sim.peek("q").unwrap().to_u64(), Some(expect));
        }
        sim.cycle(15 - 5 + 1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0), "wraps at 16");
    }

    #[test]
    fn counts_down() {
        let mut sim = make(CountDirection::Down, false);
        sim.set_u64("ce", 1).unwrap();
        sim.set_u64("rst", 1).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("rst", 0).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(15), "0 - 1 wraps");
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(14));
    }

    #[test]
    fn clock_enable_holds() {
        let mut sim = make(CountDirection::Up, false);
        sim.set_u64("rst", 1).unwrap();
        sim.set_u64("ce", 1).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("rst", 0).unwrap();
        sim.cycle(2).unwrap();
        sim.set_u64("ce", 0).unwrap();
        sim.cycle(5).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(2), "held");
    }

    #[test]
    fn parallel_load() {
        let mut sim = make(CountDirection::Up, true);
        sim.set_u64("rst", 0).unwrap();
        sim.set_u64("ce", 0).unwrap();
        sim.set_u64("load", 1).unwrap();
        sim.set_u64("d", 9).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(9));
        sim.set_u64("load", 0).unwrap();
        sim.set_u64("ce", 1).unwrap();
        sim.cycle(1).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(10));
    }

    #[test]
    fn rejects_bad_width() {
        assert!(Circuit::from_generator(&Counter::new(0, CountDirection::Up)).is_err());
        assert!(Circuit::from_generator(&Counter::new(65, CountDirection::Up)).is_err());
    }
}
