//! Shared machinery for summing shifted partial values exactly.
//!
//! Both the constant-coefficient multiplier and the array multiplier
//! reduce a set of *partial values* — bit vectors with a known numeric
//! range and a power-of-two shift — into a single result. Addition is
//! performed at exactly the width the value range requires, low bits
//! below a shift difference pass through without logic, and operands
//! are sign- or zero-extended by wiring (free in LUT fabric).

use ipd_hdl::{CellCtx, Result, Signal, WireId};
use ipd_techlib::LogicCtx;

use crate::add::RippleAdder;

/// A partial numeric value under reduction.
///
/// `bits` holds one single-bit signal per bit, LSB first; the numeric
/// value lies in `[lo, hi]` and is scaled by `2^shift` relative to the
/// final result.
#[derive(Debug, Clone)]
pub(crate) struct PartialValue {
    pub bits: Vec<Signal>,
    pub lo: i128,
    pub hi: i128,
    pub shift: u32,
}

impl PartialValue {
    pub(crate) fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    pub(crate) fn is_signed(&self) -> bool {
        self.lo < 0
    }

    /// The `k`-th bit with implicit extension: sign bit repetition for
    /// signed values, the shared zero for unsigned.
    pub(crate) fn bit(&self, k: u32, zero: &Signal) -> Signal {
        match self.bits.get(k as usize) {
            Some(sig) => sig.clone(),
            None => {
                if self.is_signed() {
                    self.bits.last().cloned().unwrap_or_else(|| zero.clone())
                } else {
                    zero.clone()
                }
            }
        }
    }
}

/// Minimum two's-complement (or unsigned) width holding every value in
/// `[lo, hi]`.
pub(crate) fn width_for(lo: i128, hi: i128) -> u32 {
    debug_assert!(lo <= hi);
    if lo >= 0 {
        // Unsigned: bits for hi, at least 1.
        (128 - hi.leading_zeros()).max(1)
    } else {
        // Signed: need -2^(w-1) <= lo and hi <= 2^(w-1)-1.
        let mut w = 1;
        while !(-(1i128 << (w - 1)) <= lo && hi < (1i128 << (w - 1))) {
            w += 1;
        }
        w
    }
}

/// Creates a wire of `width` bits and returns per-bit signals into it.
pub(crate) fn wire_bits(ctx: &mut CellCtx<'_>, name: &str, width: u32) -> (WireId, Vec<Signal>) {
    let w = ctx.wire(name, width);
    let bits = (0..width).map(|b| Signal::bit_of(w, b)).collect();
    (w, bits)
}

/// Adds two partial values into a fresh result value.
///
/// Bits of the lower-shifted operand below the shift difference are
/// buffered straight through; the remainder goes through a carry-chain
/// [`RippleAdder`] at exactly the width the combined range requires.
pub(crate) fn combine(
    ctx: &mut CellCtx<'_>,
    a: PartialValue,
    b: PartialValue,
    zero: &Signal,
    label: &str,
) -> Result<PartialValue> {
    let (a, b) = if a.shift <= b.shift { (a, b) } else { (b, a) };
    let d = b.shift - a.shift;
    let lo = a.lo + (b.lo << d);
    let hi = a.hi + (b.hi << d);
    let rw = width_for(lo, hi);
    let (result, bits) = wire_bits(ctx, label, rw);
    // Pass-through of the low bits.
    let pass = d.min(rw);
    for k in 0..pass {
        let src = a.bit(k, zero);
        ctx.buffer(src, Signal::bit_of(result, k))?;
    }
    // Carry-chain addition of the overlap.
    if rw > d {
        let aw = rw - d;
        let in_a = Signal::concat((0..aw).map(|k| a.bit(d + k, zero)));
        let in_b = Signal::concat((0..aw).map(|k| b.bit(k, zero)));
        let sum = Signal::slice_of(result, rw - 1, d);
        let adder = RippleAdder::new(aw);
        ctx.instantiate(
            &adder,
            &format!("{label}_add"),
            &[("a", in_a), ("b", in_b), ("s", sum)],
        )?;
    }
    Ok(PartialValue {
        bits,
        lo,
        hi,
        shift: a.shift,
    })
}

/// Registers every bit of a partial value behind `clk` (one pipeline
/// stage), preserving its numeric interpretation.
pub(crate) fn register(
    ctx: &mut CellCtx<'_>,
    value: PartialValue,
    clk: WireId,
    label: &str,
) -> Result<PartialValue> {
    let (reg, bits) = wire_bits(ctx, label, value.width());
    for (k, src) in value.bits.iter().enumerate() {
        ctx.fd(clk, src.clone(), Signal::bit_of(reg, k as u32))?;
    }
    Ok(PartialValue {
        bits,
        lo: value.lo,
        hi: value.hi,
        shift: value.shift,
    })
}

/// Reduces partial values to one with a balanced pairwise tree,
/// optionally inserting a register stage after every level.
pub(crate) fn reduce_tree(
    ctx: &mut CellCtx<'_>,
    mut values: Vec<PartialValue>,
    zero: &Signal,
    clk: Option<WireId>,
    label: &str,
) -> Result<PartialValue> {
    assert!(!values.is_empty(), "reduce_tree needs at least one value");
    let mut level = 0usize;
    while values.len() > 1 {
        let mut next = Vec::with_capacity(values.len().div_ceil(2));
        let mut iter = values.into_iter();
        let mut pair_index = 0usize;
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => {
                    let combined =
                        combine(ctx, a, b, zero, &format!("{label}_l{level}_{pair_index}"))?;
                    next.push(combined);
                }
                None => next.push(a),
            }
            pair_index += 1;
        }
        if let Some(clk) = clk {
            let mut registered = Vec::with_capacity(next.len());
            for (i, v) in next.into_iter().enumerate() {
                registered.push(register(ctx, v, clk, &format!("{label}_r{level}_{i}"))?);
            }
            next = registered;
        }
        values = next;
        level += 1;
    }
    Ok(values.into_iter().next().expect("one value remains"))
}

/// Number of tree levels [`reduce_tree`] uses for `n` values (and thus
/// pipeline stages it inserts when clocked).
pub(crate) fn tree_levels(n: usize) -> u32 {
    let mut levels = 0u32;
    let mut count = n.max(1);
    while count > 1 {
        count = count.div_ceil(2);
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_ranges() {
        assert_eq!(width_for(0, 0), 1);
        assert_eq!(width_for(0, 1), 1);
        assert_eq!(width_for(0, 255), 8);
        assert_eq!(width_for(0, 256), 9);
        assert_eq!(width_for(-1, 0), 1); // one signed bit holds {-1, 0}
        assert_eq!(width_for(-128, 127), 8);
        assert_eq!(width_for(-129, 127), 9);
        assert_eq!(width_for(-7112, 7168), 14);
    }

    #[test]
    fn tree_levels_counts() {
        assert_eq!(tree_levels(1), 0);
        assert_eq!(tree_levels(2), 1);
        assert_eq!(tree_levels(3), 2);
        assert_eq!(tree_levels(4), 2);
        assert_eq!(tree_levels(5), 3);
        assert_eq!(tree_levels(8), 3);
    }
}
