//! Shared machinery for summing shifted partial values exactly.
//!
//! Both the constant-coefficient multiplier and the array multiplier
//! reduce a set of *partial values* — bit vectors with a known numeric
//! range and a power-of-two shift — into a single result. Addition is
//! performed at exactly the width the value range requires, low bits
//! below a shift difference pass through without logic, and operands
//! are sign- or zero-extended by wiring (free in LUT fabric).
//!
//! Two lint-driven refinements shape the generated netlists:
//!
//! * the shared zero rail is created lazily ([`ZeroRail`]), so designs
//!   that never need zero extension carry no dead `GND` primitive;
//! * a [`PartialValue`] may declare its lowest `dead_low` bits as
//!   *placeholders* — bits the consumer has promised never to read
//!   (e.g. product bits below a truncation point). Placeholders flow
//!   through [`combine`] and [`register`] without generating buffers
//!   or flip-flops, so truncated-width generators stay free of
//!   dead logic.

use ipd_hdl::{CellCtx, Result, Rloc, Signal, WireId};
use ipd_techlib::LogicCtx;

/// A lazily created constant rail: the wire and its `GND`/`VCC` driver
/// materialize on first use, so designs that never need the constant
/// don't carry a dead primitive.
pub(crate) struct ConstRail {
    name: &'static str,
    high: bool,
    sig: Option<Signal>,
}

/// The shared logic-zero rail (a lazily instantiated `GND`).
pub(crate) type ZeroRail = ConstRail;

impl ConstRail {
    /// A lazy zero rail named `zero`.
    pub(crate) fn zero() -> Self {
        ConstRail {
            name: "zero",
            high: false,
            sig: None,
        }
    }

    /// A lazy one rail named `one`.
    pub(crate) fn one() -> Self {
        ConstRail {
            name: "one",
            high: true,
            sig: None,
        }
    }

    /// The rail signal, creating the wire and driver on first call.
    pub(crate) fn get(&mut self, ctx: &mut CellCtx<'_>) -> Result<Signal> {
        if let Some(sig) = &self.sig {
            return Ok(sig.clone());
        }
        let wire = ctx.wire(self.name, 1);
        if self.high {
            ctx.vcc(wire)?;
        } else {
            ctx.gnd(wire)?;
        }
        let sig: Signal = wire.into();
        self.sig = Some(sig.clone());
        Ok(sig)
    }
}

/// A partial numeric value under reduction.
///
/// `bits` holds one entry per bit, LSB first: `Some(signal)` for a live
/// bit, `None` for a bit that is *provably zero* (a constant table
/// entry, a zero-extension position, a degenerate adder output). The
/// numeric value lies in `[lo, hi]` and is scaled by `2^shift` relative
/// to the final result. Bits below `dead_low` are placeholders: the
/// consumer guarantees they are never read, so reduction and pipeline
/// stages generate no logic for them.
///
/// Keeping zero bits symbolic (rather than tapping a materialized
/// `GND`) matters for lint cleanliness: [`combine`] aliases degenerate
/// positions away without reading any rail, so an eager tap whose every
/// consumer got aliased would leave a driven-but-never-read `GND`
/// behind — a dead-logic finding. The rail only materializes when a
/// real cell input finally needs it ([`PartialValue::bit`]).
#[derive(Debug, Clone)]
pub(crate) struct PartialValue {
    pub bits: Vec<Option<Signal>>,
    pub lo: i128,
    pub hi: i128,
    pub shift: u32,
    pub dead_low: u32,
}

/// Wraps the per-bit signals of a fully live wire for [`PartialValue`].
pub(crate) fn live_bits(bits: Vec<Signal>) -> Vec<Option<Signal>> {
    bits.into_iter().map(Some).collect()
}

impl PartialValue {
    pub(crate) fn width(&self) -> u32 {
        self.bits.len() as u32
    }

    pub(crate) fn is_signed(&self) -> bool {
        self.lo < 0
    }

    /// The `k`-th bit with implicit sign extension; `None` when the bit
    /// is provably zero (a symbolic zero entry, or unsigned extension
    /// beyond the stored bits).
    fn bit_opt(&self, k: u32) -> Option<Signal> {
        match self.bits.get(k as usize) {
            Some(entry) => entry.clone(),
            None if self.is_signed() => self.bits.last().cloned().flatten(),
            None => None,
        }
    }

    /// The `k`-th bit with implicit extension: sign bit repetition for
    /// signed values, the (lazily created) shared zero for provably
    /// zero bits.
    pub(crate) fn bit(&self, k: u32, ctx: &mut CellCtx<'_>, zero: &mut ZeroRail) -> Result<Signal> {
        match self.bit_opt(k) {
            Some(sig) => Ok(sig),
            None => zero.get(ctx),
        }
    }
}

/// Minimum two's-complement (or unsigned) width holding every value in
/// `[lo, hi]`.
pub(crate) fn width_for(lo: i128, hi: i128) -> u32 {
    debug_assert!(lo <= hi);
    if lo >= 0 {
        // Unsigned: bits for hi, at least 1.
        (128 - hi.leading_zeros()).max(1)
    } else {
        // Signed: need -2^(w-1) <= lo and hi <= 2^(w-1)-1.
        let mut w = 1;
        while !(-(1i128 << (w - 1)) <= lo && hi < (1i128 << (w - 1))) {
            w += 1;
        }
        w
    }
}

/// Creates a wire of `width` bits and returns per-bit signals into it.
pub(crate) fn wire_bits(ctx: &mut CellCtx<'_>, name: &str, width: u32) -> (WireId, Vec<Signal>) {
    let w = ctx.wire(name, width);
    let bits = (0..width).map(|b| Signal::bit_of(w, b)).collect();
    (w, bits)
}

/// Adds two partial values into a fresh result value.
///
/// Bits of the lower-shifted operand below the shift difference are
/// buffered straight through; the remainder goes through a carry-chain
/// [`RippleAdder`] at exactly the width the combined range requires.
/// Placeholder bits (below the lower operand's `dead_low`) are aliased
/// instead of buffered. When `adder_loc` is given, the adder instance
/// is relationally placed there, keeping its carry chain clear of the
/// caller's own placed logic.
pub(crate) fn combine(
    ctx: &mut CellCtx<'_>,
    a: PartialValue,
    b: PartialValue,
    zero: &mut ZeroRail,
    label: &str,
    adder_loc: Option<Rloc>,
) -> Result<PartialValue> {
    let (a, b) = if a.shift <= b.shift { (a, b) } else { (b, a) };
    let d = b.shift - a.shift;
    // Placeholders must stay below every bit the adder consumes: the
    // adder reads `a` from bit `d` up and all of `b`.
    debug_assert!(a.dead_low <= d, "placeholder bits would enter the adder");
    debug_assert_eq!(b.dead_low, 0, "higher-shifted operand is fully consumed");
    let lo = a.lo + (b.lo << d);
    let hi = a.hi + (b.hi << d);
    let rw = width_for(lo, hi);
    let (result, base) = wire_bits(ctx, label, rw);
    let mut bits = live_bits(base);
    // Pass-through of the low bits; placeholder and provably-zero bits
    // alias instead.
    let pass = d.min(rw);
    let dead_low = a.dead_low.min(pass);
    for k in 0..pass {
        if k < dead_low {
            bits[k as usize] = a.bits[k as usize].clone();
            continue;
        }
        match a.bit_opt(k) {
            Some(src) => {
                ctx.buffer(src, Signal::bit_of(result, k))?;
            }
            None => bits[k as usize] = None,
        }
    }
    // Carry-chain addition of the overlap, built inline so constant
    // rail taps (partial-product bits of a constant with trailing or
    // interior zeros, and zero extension above an operand's width)
    // degenerate to pass-throughs instead of adder cells. A position
    // where one operand is the zero rail and the carry is provably
    // zero adds nothing: building MUXCY/XORCY/LUT cells there ships
    // semantically-stuck carries and pass-through propagate LUTs
    // straight into a lint finding.
    if rw > d {
        let aw = rw - d;
        let place = |ctx: &mut CellCtx<'_>, cell, k: u32| {
            if let Some(loc) = adder_loc {
                ctx.set_rloc(cell, Rloc::new(loc.row + (k / 2) as i32, loc.col));
            }
        };
        // `None` = the carry into the next position is provably zero.
        let mut carry: Option<Signal> = None;
        for k in 0..aw {
            let ak = a.bit_opt(d + k);
            let bk = b.bit_opt(k);
            let out = Signal::bit_of(result, d + k);
            let carry_needed = k + 1 < aw;
            match (ak, bk, carry.take()) {
                // 0 + 0: the sum is the incoming carry (or provably
                // zero); the carry out is provably zero again.
                (None, None, None) => bits[(d + k) as usize] = None,
                (None, None, Some(ci)) => bits[(d + k) as usize] = Some(ci),
                // live + 0, no carry: pure pass-through.
                (None, Some(bk), None) => bits[(d + k) as usize] = Some(bk),
                (Some(ak), None, None) => bits[(d + k) as usize] = Some(ak),
                // live + 0 with a live carry: the live bit is its own
                // propagate — no LUT, and the carry regenerates only
                // while the live bit holds (di = the zero rail, the one
                // place the rail is genuinely read).
                (None, Some(live), Some(ci)) | (Some(live), None, Some(ci)) => {
                    let x = ctx.xorcy(ci.clone(), live.clone(), out)?;
                    place(ctx, x, k);
                    if carry_needed {
                        let co = ctx.wire(&format!("{label}_c{}", k + 1), 1);
                        let rail = zero.get(ctx)?;
                        let m = ctx.muxcy(ci, rail, live, co)?;
                        place(ctx, m, k);
                        carry = Some(co.into());
                    }
                }
                // live + live, carry provably zero: the half-sum LUT
                // drives the result directly (an XORCY against zero
                // would be a pass-through), and the first carry is
                // generate-only.
                (Some(ak), Some(bk), None) => {
                    let l = ctx.lut(0b0110, &[ak.clone(), bk], out.clone())?;
                    place(ctx, l, k);
                    if carry_needed {
                        let co = ctx.wire(&format!("{label}_c{}", k + 1), 1);
                        let rail = zero.get(ctx)?;
                        let m = ctx.muxcy(rail, ak, out, co)?;
                        place(ctx, m, k);
                        carry = Some(co.into());
                    }
                }
                // The full-adder position.
                (Some(ak), Some(bk), Some(ci)) => {
                    let p = ctx.wire(&format!("{label}_p{k}"), 1);
                    let l = ctx.lut(0b0110, &[ak.clone(), bk], p)?;
                    place(ctx, l, k);
                    let x = ctx.xorcy(ci.clone(), p, out)?;
                    place(ctx, x, k);
                    if carry_needed {
                        let co = ctx.wire(&format!("{label}_c{}", k + 1), 1);
                        let m = ctx.muxcy(ci, ak, p, co)?;
                        place(ctx, m, k);
                        carry = Some(co.into());
                    }
                }
            }
        }
    }
    Ok(PartialValue {
        bits,
        lo,
        hi,
        shift: a.shift,
        dead_low,
    })
}

/// Registers every bit of a partial value behind `clk` (one pipeline
/// stage), preserving its numeric interpretation. Placeholder bits are
/// carried through without a flip-flop.
pub(crate) fn register(
    ctx: &mut CellCtx<'_>,
    value: PartialValue,
    clk: WireId,
    label: &str,
) -> Result<PartialValue> {
    register_at(ctx, value, clk, label, None)
}

/// [`register`], with the flip-flops placed two to a slice row in the
/// given column when one is supplied — pipeline registers belong next
/// to the logic they feed, or the stage nets eat the unplaced routing
/// penalty and dominate the clock period.
pub(crate) fn register_at(
    ctx: &mut CellCtx<'_>,
    value: PartialValue,
    clk: WireId,
    label: &str,
    col: Option<i32>,
) -> Result<PartialValue> {
    let (reg, base) = wire_bits(ctx, label, value.width());
    let mut bits = live_bits(base);
    for (k, src) in value.bits.iter().enumerate() {
        if (k as u32) < value.dead_low {
            bits[k] = src.clone();
            continue;
        }
        // A provably-zero bit stays zero across a stage: no flip-flop.
        let Some(src) = src else {
            bits[k] = None;
            continue;
        };
        let fd = ctx.fd(clk, src.clone(), Signal::bit_of(reg, k as u32))?;
        if let Some(col) = col {
            ctx.set_rloc(fd, Rloc::new(k as i32 / 2, col));
        }
    }
    Ok(PartialValue {
        bits,
        lo: value.lo,
        hi: value.hi,
        shift: value.shift,
        dead_low: value.dead_low,
    })
}

/// Reduces partial values to one with a balanced pairwise tree,
/// optionally inserting a register stage after every level.
///
/// When `adder_col0` is given, every adder the tree creates is placed
/// in its own slice column starting there, so carry chains never stack
/// on the caller's placed logic or on each other.
pub(crate) fn reduce_tree(
    ctx: &mut CellCtx<'_>,
    mut values: Vec<PartialValue>,
    zero: &mut ZeroRail,
    clk: Option<WireId>,
    label: &str,
    adder_col0: Option<i32>,
) -> Result<PartialValue> {
    assert!(!values.is_empty(), "reduce_tree needs at least one value");
    let mut level = 0usize;
    let mut adders = 0i32;
    while values.len() > 1 {
        // Each entry remembers the slice column of the adder that
        // produced it, so a following register stage lands beside it.
        let mut next: Vec<(PartialValue, Option<i32>)> =
            Vec::with_capacity(values.len().div_ceil(2));
        let mut iter = values.into_iter();
        let mut pair_index = 0usize;
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => {
                    let col = adder_col0.map(|c0| c0 + adders);
                    adders += 1;
                    let combined = combine(
                        ctx,
                        a,
                        b,
                        zero,
                        &format!("{label}_l{level}_{pair_index}"),
                        col.map(|c| Rloc::new(0, c)),
                    )?;
                    next.push((combined, col));
                }
                None => next.push((a, None)),
            }
            pair_index += 1;
        }
        if let Some(clk) = clk {
            let mut registered = Vec::with_capacity(next.len());
            for (i, (v, col)) in next.into_iter().enumerate() {
                registered.push((
                    register_at(ctx, v, clk, &format!("{label}_r{level}_{i}"), col)?,
                    col,
                ));
            }
            next = registered;
        }
        values = next.into_iter().map(|(v, _)| v).collect();
        level += 1;
    }
    Ok(values.into_iter().next().expect("one value remains"))
}

/// Number of tree levels [`reduce_tree`] uses for `n` values (and thus
/// pipeline stages it inserts when clocked).
pub(crate) fn tree_levels(n: usize) -> u32 {
    let mut levels = 0u32;
    let mut count = n.max(1);
    while count > 1 {
        count = count.div_ceil(2);
        levels += 1;
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_ranges() {
        assert_eq!(width_for(0, 0), 1);
        assert_eq!(width_for(0, 1), 1);
        assert_eq!(width_for(0, 255), 8);
        assert_eq!(width_for(0, 256), 9);
        assert_eq!(width_for(-1, 0), 1); // one signed bit holds {-1, 0}
        assert_eq!(width_for(-128, 127), 8);
        assert_eq!(width_for(-129, 127), 9);
        assert_eq!(width_for(-7112, 7168), 14);
    }

    #[test]
    fn tree_levels_counts() {
        assert_eq!(tree_levels(1), 0);
        assert_eq!(tree_levels(2), 1);
        assert_eq!(tree_levels(3), 2);
        assert_eq!(tree_levels(4), 2);
        assert_eq!(tree_levels(5), 3);
        assert_eq!(tree_levels(8), 3);
    }
}
