//! Golden-model stimulus helpers for verification sweeps.
//!
//! A module generator knows its own arithmetic, so it can emit both the
//! exhaustive stimulus set for its input ports and the expected outputs
//! — the "golden model" a batch simulation sweep is checked against.
//! The stimulus shape (`Vec<(port, value)>` per vector) is exactly what
//! `ipd_sim::VectorSweep::run` consumes.

use ipd_hdl::LogicVec;

/// Widest port [`exhaustive_values`] will enumerate (2²⁰ vectors).
pub const MAX_EXHAUSTIVE_WIDTH: u32 = 20;

/// Every value of a `width`-bit port, in ascending numeric order:
/// `0..2^w` unsigned, `-2^(w-1)..2^(w-1)` signed.
///
/// # Panics
///
/// Panics when `width` is 0 or exceeds [`MAX_EXHAUSTIVE_WIDTH`] (the
/// sweep would be astronomically large — sample instead).
#[must_use]
pub fn exhaustive_values(width: u32, signed: bool) -> Vec<i64> {
    assert!(
        (1..=MAX_EXHAUSTIVE_WIDTH).contains(&width),
        "exhaustive sweep width must be 1..={MAX_EXHAUSTIVE_WIDTH}, got {width}"
    );
    if signed {
        (-(1i64 << (width - 1))..(1i64 << (width - 1))).collect()
    } else {
        (0..(1i64 << width)).collect()
    }
}

/// One stimulus vector per value of a single `width`-bit input port —
/// the exhaustive sweep for a one-input module.
///
/// # Panics
///
/// As for [`exhaustive_values`].
#[must_use]
pub fn exhaustive_stimuli(port: &str, width: u32, signed: bool) -> Vec<Vec<(String, LogicVec)>> {
    exhaustive_values(width, signed)
        .into_iter()
        .map(|x| {
            let value = if signed {
                LogicVec::from_i64(x, width as usize)
            } else {
                LogicVec::from_u64(x as u64, width as usize)
            };
            vec![(port.to_owned(), value)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_cover_the_whole_range() {
        assert_eq!(exhaustive_values(3, false), (0..8).collect::<Vec<i64>>());
        assert_eq!(exhaustive_values(3, true), (-4..4).collect::<Vec<i64>>());
        assert_eq!(exhaustive_values(1, false), vec![0, 1]);
    }

    #[test]
    fn stimuli_encode_each_value() {
        let stims = exhaustive_stimuli("x", 4, true);
        assert_eq!(stims.len(), 16);
        for (k, stim) in stims.iter().enumerate() {
            assert_eq!(stim.len(), 1);
            assert_eq!(stim[0].0, "x");
            assert_eq!(stim[0].1.to_i64(), Some(k as i64 - 8));
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive sweep width")]
    fn oversized_widths_panic() {
        let _ = exhaustive_values(MAX_EXHAUSTIVE_WIDTH + 1, false);
    }
}
