//! Carry-chain adders: the workhorse of all arithmetic generators.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

use crate::place_column;

/// A ripple-carry adder mapped onto the dedicated carry chain
/// (one LUT + `MUXCY` + `XORCY` per bit), relationally placed one bit
/// per row like Xilinx's own adder macros.
///
/// Ports: `a`, `b` (inputs, `width` bits), `cin` (1 bit, optional),
/// `s` (output, `width` bits), `cout` (1 bit, optional).
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::RippleAdder;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let adder = RippleAdder::new(8).with_cin().with_cout();
/// let circuit = Circuit::from_generator(&adder)?;
/// assert!(circuit.primitive_count() > 16); // lut + muxcy + xorcy per bit
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RippleAdder {
    width: u32,
    has_cin: bool,
    has_cout: bool,
}

impl RippleAdder {
    /// An adder of the given bit width.
    ///
    /// Zero widths are rejected at build time.
    #[must_use]
    pub fn new(width: u32) -> Self {
        RippleAdder {
            width,
            has_cin: false,
            has_cout: false,
        }
    }

    /// Adds a carry-in port `cin`.
    #[must_use]
    pub fn with_cin(mut self) -> Self {
        self.has_cin = true;
        self
    }

    /// Adds a carry-out port `cout`.
    #[must_use]
    pub fn with_cout(mut self) -> Self {
        self.has_cout = true;
        self
    }

    /// The adder's bit width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }
}

impl Generator for RippleAdder {
    fn type_name(&self) -> String {
        format!("add_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        let mut ports = vec![
            PortSpec::input("a", self.width),
            PortSpec::input("b", self.width),
            PortSpec::output("s", self.width),
        ];
        if self.has_cin {
            ports.insert(2, PortSpec::input("cin", 1));
        }
        if self.has_cout {
            ports.push(PortSpec::output("cout", 1));
        }
        ports
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be at least 1".to_owned(),
            });
        }
        let a = ctx.port("a")?;
        let b = ctx.port("b")?;
        let s = ctx.port("s")?;
        // Carry in: port or constant 0.
        let mut ci: Signal = if self.has_cin {
            ctx.port("cin")?.into()
        } else {
            let zero = ctx.wire("ci0", 1);
            ctx.gnd(zero)?;
            zero.into()
        };
        for bit in 0..self.width {
            let ab = Signal::bit_of(a, bit);
            let bb = Signal::bit_of(b, bit);
            // Half-sum in a LUT (a XOR b).
            let half = ctx.wire(&format!("p{bit}"), 1);
            let l = ctx.lut(0b0110, &[ab.clone(), bb], half)?;
            place_column(ctx, l, bit);
            let x = ctx.xorcy(ci.clone(), half, Signal::bit_of(s, bit))?;
            place_column(ctx, x, bit);
            // Carry select: the top bit's carry-out exists only when a
            // cout port consumes it — a dangling MUXCY is dead logic.
            if bit + 1 < self.width || self.has_cout {
                let co = ctx.wire(&format!("c{}", bit + 1), 1);
                let m = ctx.muxcy(ci, ab, half, co)?;
                place_column(ctx, m, bit);
                ci = co.into();
            }
        }
        if self.has_cout {
            let cout = ctx.port("cout")?;
            ctx.buffer(ci, cout)?;
        }
        ctx.set_property("generator", "ripple_adder");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

/// A carry-chain subtractor computing `d = a - b` (two's complement),
/// with optional borrow-free `cout` (carry-out of `a + !b + 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subtractor {
    width: u32,
    has_cout: bool,
}

impl Subtractor {
    /// A subtractor of the given bit width.
    #[must_use]
    pub fn new(width: u32) -> Self {
        Subtractor {
            width,
            has_cout: false,
        }
    }

    /// Adds the carry-out port (`1` when no borrow, i.e. `a >= b`
    /// unsigned).
    #[must_use]
    pub fn with_cout(mut self) -> Self {
        self.has_cout = true;
        self
    }
}

impl Generator for Subtractor {
    fn type_name(&self) -> String {
        format!("sub_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        let mut ports = vec![
            PortSpec::input("a", self.width),
            PortSpec::input("b", self.width),
            PortSpec::output("d", self.width),
        ];
        if self.has_cout {
            ports.push(PortSpec::output("cout", 1));
        }
        ports
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be at least 1".to_owned(),
            });
        }
        let a = ctx.port("a")?;
        let b = ctx.port("b")?;
        let d = ctx.port("d")?;
        // a - b = a + !b + 1: carry-in forced high.
        let one = ctx.wire("ci0", 1);
        ctx.vcc(one)?;
        let mut ci: Signal = one.into();
        for bit in 0..self.width {
            let ab = Signal::bit_of(a, bit);
            let bb = Signal::bit_of(b, bit);
            // a XNOR b = a XOR !b.
            let half = ctx.wire(&format!("p{bit}"), 1);
            let l = ctx.lut(0b1001, &[ab.clone(), bb], half)?;
            place_column(ctx, l, bit);
            let x = ctx.xorcy(ci.clone(), half, Signal::bit_of(d, bit))?;
            place_column(ctx, x, bit);
            if bit + 1 < self.width || self.has_cout {
                let co = ctx.wire(&format!("c{}", bit + 1), 1);
                let m = ctx.muxcy(ci, ab, half, co)?;
                place_column(ctx, m, bit);
                ci = co.into();
            }
        }
        if self.has_cout {
            let cout = ctx.port("cout")?;
            ctx.buffer(ci, cout)?;
        }
        ctx.set_property("generator", "subtractor");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

/// An adder/subtractor with a `sub` mode input: `s = a + b` when
/// `sub = 0`, `s = a - b` when `sub = 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddSub {
    width: u32,
}

impl AddSub {
    /// An add/sub unit of the given bit width.
    #[must_use]
    pub fn new(width: u32) -> Self {
        AddSub { width }
    }
}

impl Generator for AddSub {
    fn type_name(&self) -> String {
        format!("addsub_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("a", self.width),
            PortSpec::input("b", self.width),
            PortSpec::input("sub", 1),
            PortSpec::output("s", self.width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be at least 1".to_owned(),
            });
        }
        let a = ctx.port("a")?;
        let b = ctx.port("b")?;
        let sub = ctx.port("sub")?;
        let s = ctx.port("s")?;
        // Carry-in is the mode bit itself (sub: +1).
        let mut ci: Signal = sub.into();
        for bit in 0..self.width {
            let ab = Signal::bit_of(a, bit);
            let bb = Signal::bit_of(b, bit);
            // lut3: a XOR (b XOR sub), inputs (i0=a, i1=b, i2=sub).
            // truth table index = a + 2b + 4sub.
            let mut init = 0u16;
            for idx in 0..8u16 {
                let av = idx & 1;
                let bv = (idx >> 1) & 1;
                let sv = (idx >> 2) & 1;
                if av ^ bv ^ sv == 1 {
                    init |= 1 << idx;
                }
            }
            let half = ctx.wire(&format!("p{bit}"), 1);
            let l = ctx.lut(init, &[ab.clone(), bb, Signal::from(sub)], half)?;
            place_column(ctx, l, bit);
            let x = ctx.xorcy(ci.clone(), half, Signal::bit_of(s, bit))?;
            place_column(ctx, x, bit);
            if bit + 1 < self.width {
                let co = ctx.wire(&format!("c{}", bit + 1), 1);
                let m = ctx.muxcy(ci, ab, half, co)?;
                place_column(ctx, m, bit);
                ci = co.into();
            }
        }
        ctx.set_property("generator", "addsub");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn adder_adds_exhaustively_4bit() {
        let circuit = Circuit::from_generator(&RippleAdder::new(4).with_cout()).unwrap();
        let mut sim = Simulator::new(&circuit).expect("compile");
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_u64("a", a).unwrap();
                sim.set_u64("b", b).unwrap();
                let s = sim.peek("s").unwrap().to_u64().unwrap();
                let co = sim.peek("cout").unwrap().to_u64().unwrap();
                assert_eq!(s, (a + b) & 0xF, "{a}+{b}");
                assert_eq!(co, (a + b) >> 4, "carry {a}+{b}");
            }
        }
    }

    #[test]
    fn adder_cin_works() {
        let circuit = Circuit::from_generator(&RippleAdder::new(8).with_cin()).unwrap();
        let mut sim = Simulator::new(&circuit).expect("compile");
        sim.set_u64("a", 100).unwrap();
        sim.set_u64("b", 27).unwrap();
        sim.set_u64("cin", 1).unwrap();
        assert_eq!(sim.peek("s").unwrap().to_u64(), Some(128));
    }

    #[test]
    fn subtractor_subtracts() {
        let circuit = Circuit::from_generator(&Subtractor::new(8).with_cout()).unwrap();
        let mut sim = Simulator::new(&circuit).expect("compile");
        for (a, b) in [(200u64, 13u64), (13, 200), (0, 0), (255, 255), (128, 1)] {
            sim.set_u64("a", a).unwrap();
            sim.set_u64("b", b).unwrap();
            let d = sim.peek("d").unwrap().to_u64().unwrap();
            assert_eq!(d, a.wrapping_sub(b) & 0xFF, "{a}-{b}");
            let cout = sim.peek("cout").unwrap().to_u64().unwrap();
            assert_eq!(cout == 1, a >= b, "borrow for {a}-{b}");
        }
    }

    #[test]
    fn addsub_switches_modes() {
        let circuit = Circuit::from_generator(&AddSub::new(6)).unwrap();
        let mut sim = Simulator::new(&circuit).expect("compile");
        sim.set_u64("a", 20).unwrap();
        sim.set_u64("b", 7).unwrap();
        sim.set_u64("sub", 0).unwrap();
        assert_eq!(sim.peek("s").unwrap().to_u64(), Some(27));
        sim.set_u64("sub", 1).unwrap();
        assert_eq!(sim.peek("s").unwrap().to_u64(), Some(13));
    }

    #[test]
    fn zero_width_rejected() {
        assert!(Circuit::from_generator(&RippleAdder::new(0)).is_err());
        assert!(Circuit::from_generator(&Subtractor::new(0)).is_err());
        assert!(Circuit::from_generator(&AddSub::new(0)).is_err());
    }

    #[test]
    fn adder_uses_carry_chain_and_is_placed() {
        // Without a cout port the top bit needs no carry-out MUXCY.
        let circuit = Circuit::from_generator(&RippleAdder::new(8)).unwrap();
        let stats = ipd_hdl::CircuitStats::of(&circuit);
        assert_eq!(stats.count_of("virtex:muxcy"), 7);
        assert_eq!(stats.count_of("virtex:xorcy"), 8);
        assert_eq!(stats.count_of("virtex:lut2"), 8);
        // Relative placement present on the chain.
        let placed = circuit
            .cell_ids()
            .filter(|&id| circuit.cell(id).rloc().is_some())
            .count();
        assert!(placed >= 23);
    }

    #[test]
    fn carry_out_muxcy_only_when_consumed() {
        // Regression for the dead final MUXCY the netlist linter
        // surfaced: `c{width}` was driven but never read.
        for (gen, expect) in [
            (RippleAdder::new(4), 3),
            (RippleAdder::new(4).with_cout(), 4),
        ] {
            let circuit = Circuit::from_generator(&gen).unwrap();
            let stats = ipd_hdl::CircuitStats::of(&circuit);
            assert_eq!(stats.count_of("virtex:muxcy"), expect);
        }
        let sub = Circuit::from_generator(&Subtractor::new(4)).unwrap();
        assert_eq!(ipd_hdl::CircuitStats::of(&sub).count_of("virtex:muxcy"), 3);
        let addsub = Circuit::from_generator(&AddSub::new(4)).unwrap();
        assert_eq!(
            ipd_hdl::CircuitStats::of(&addsub).count_of("virtex:muxcy"),
            3
        );
    }
}
