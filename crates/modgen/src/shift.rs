//! Barrel shifter and LFSR generators.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

/// A logarithmic barrel shifter: `o = mode ? a >> sh : a << sh`
/// (logical, zero fill), built from `log2(width)` mux layers.
///
/// Ports: `a` (`width`), `sh` (`ceil(log2 width)`), `right` (1),
/// `o` (`width`).
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::BarrelShifter;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let circuit = Circuit::from_generator(&BarrelShifter::new(8))?;
/// assert!(ipd_hdl::validate(&circuit)?.is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrelShifter {
    width: u32,
}

impl BarrelShifter {
    /// A shifter over `width` bits (must be a power of two, 2..=64).
    #[must_use]
    pub fn new(width: u32) -> Self {
        BarrelShifter { width }
    }

    /// Width of the shift-amount port.
    #[must_use]
    pub fn shift_width(&self) -> u32 {
        self.width.trailing_zeros().max(1)
    }
}

impl Generator for BarrelShifter {
    fn type_name(&self) -> String {
        format!("bshift_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("a", self.width),
            PortSpec::input("sh", self.shift_width()),
            PortSpec::input("right", 1),
            PortSpec::output("o", self.width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if !self.width.is_power_of_two() || !(2..=64).contains(&self.width) {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be a power of two in 2..=64".to_owned(),
            });
        }
        let a = ctx.port("a")?;
        let sh = ctx.port("sh")?;
        let right = ctx.port("right")?;
        let o = ctx.port("o")?;
        let zero = ctx.wire("zero", 1);
        ctx.gnd(zero)?;
        // A right shift of k is a left shift of (width - k) mod width;
        // rather than conditionally negating the amount we build a
        // *rotator* and mask the wrapped-in bits per direction.
        //
        // Simpler and still log-depth: two shift networks would double
        // the area, so use the standard trick — conditionally reverse
        // the input and output. reverse(a) >> k == reverse(a << k).
        let mut current: Vec<Signal> = (0..self.width)
            .map(|b| {
                let w = ctx.wire(&format!("in{b}"), 1);
                // in[b] = right ? a[width-1-b] : a[b]
                ctx.mux2(
                    Signal::bit_of(a, b),
                    Signal::bit_of(a, self.width - 1 - b),
                    right,
                    w,
                )?;
                Ok(Signal::from(w))
            })
            .collect::<Result<_>>()?;
        // Left-shift network over the conditionally-reversed word.
        for stage in 0..self.shift_width() {
            let amount = 1u32 << stage;
            let sel = Signal::bit_of(sh, stage);
            let mut next = Vec::with_capacity(self.width as usize);
            for b in 0..self.width {
                let w = ctx.wire(&format!("s{stage}_{b}"), 1);
                let shifted: Signal = if b >= amount {
                    current[(b - amount) as usize].clone()
                } else {
                    zero.into()
                };
                ctx.mux2(current[b as usize].clone(), shifted, sel.clone(), w)?;
                next.push(w.into());
            }
            current = next;
        }
        // Conditionally reverse back into the output.
        for b in 0..self.width {
            ctx.mux2(
                current[b as usize].clone(),
                current[(self.width - 1 - b) as usize].clone(),
                right,
                Signal::bit_of(o, b),
            )?;
        }
        ctx.set_property("generator", "barrel_shifter");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

/// A Fibonacci linear-feedback shift register with a programmable tap
/// mask, useful as a pseudo-random stimulus source inside delivered
/// testbenches.
///
/// Ports: `clk`, `ce`, `q` (`width` bits). The register seeds to
/// all-ones at power-up (never the all-zero lock-up state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    width: u32,
    taps: u64,
}

impl Lfsr {
    /// An LFSR of `width` bits with feedback `taps` (bit `i` set means
    /// stage `i` feeds the XOR).
    #[must_use]
    pub fn new(width: u32, taps: u64) -> Self {
        Lfsr { width, taps }
    }

    /// A maximal-length configuration for common widths.
    ///
    /// # Panics
    ///
    /// Panics for widths without a stored polynomial (supported: 3, 4,
    /// 5, 7, 8, 15, 16).
    #[must_use]
    pub fn maximal(width: u32) -> Self {
        let taps = match width {
            3 => 0b110,
            4 => 0b1100,
            5 => 0b1_0100,
            7 => 0b110_0000,
            8 => 0b1011_1000,
            15 => 0b110_0000_0000_0000,
            16 => 0b1101_0000_0000_1000,
            other => panic!("no stored maximal polynomial for width {other}"),
        };
        Lfsr { width, taps }
    }

    /// Software reference: the register state after `n` enabled clocks
    /// from the all-ones seed.
    #[must_use]
    pub fn reference(&self, n: u64) -> u64 {
        let mask = if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let mut state = mask;
        for _ in 0..n {
            let fb = (state & self.taps).count_ones() as u64 & 1;
            state = ((state << 1) | fb) & mask;
        }
        state
    }
}

impl Generator for Lfsr {
    fn type_name(&self) -> String {
        format!("lfsr_w{}_t{:x}", self.width, self.taps)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("clk", 1),
            PortSpec::input("ce", 1),
            PortSpec::output("q", self.width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if !(2..=48).contains(&self.width) {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be 2..=48".to_owned(),
            });
        }
        let tap_mask = if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        if self.taps & tap_mask == 0 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "at least one feedback tap required".to_owned(),
            });
        }
        let clk = ctx.port("clk")?;
        let ce = ctx.port("ce")?;
        let q = ctx.port("q")?;
        // Feedback: XOR of tapped stages (balanced LUT tree).
        let tapped: Vec<Signal> = (0..self.width)
            .filter(|b| (self.taps >> b) & 1 == 1)
            .map(|b| Signal::bit_of(q, b))
            .collect();
        let mut layer = tapped;
        let mut level = 0;
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(4));
            for (i, chunk) in layer.chunks(4).enumerate() {
                let out = ctx.wire(&format!("fb{level}_{i}"), 1);
                let n = chunk.len() as u32;
                let mut init = 0u16;
                for pattern in 0..(1u32 << n) {
                    if pattern.count_ones() % 2 == 1 {
                        init |= 1 << pattern;
                    }
                }
                ctx.lut(init, chunk, out)?;
                next.push(Signal::from(out));
            }
            layer = next;
            level += 1;
        }
        let feedback = layer.remove(0);
        // State registers: FD primitives power up to 0, so store the
        // *complement* of the LFSR state and invert on the way out —
        // the all-zero power-up then *is* the all-ones seed.
        let inv_state = ctx.wire("inv_state", self.width);
        let inv_next = ctx.wire("inv_next", self.width);
        for b in 0..self.width {
            // inv_next[b] = !next[b]; next = (state << 1) | fb.
            let source: Signal = if b == 0 {
                feedback.clone()
            } else {
                // state[b-1] = !inv_state[b-1]
                Signal::bit_of(inv_state, b - 1)
            };
            if b == 0 {
                // inv_next[0] = !fb
                ctx.inv(source, Signal::bit_of(inv_next, b))?;
            } else {
                // already complemented, pass through
                ctx.buffer(source, Signal::bit_of(inv_next, b))?;
            }
            // Hold when ce = 0.
            let held = ctx.wire(&format!("hold{b}"), 1);
            ctx.mux2(
                Signal::bit_of(inv_state, b),
                Signal::bit_of(inv_next, b),
                ce,
                held,
            )?;
            ctx.fd(clk, held, Signal::bit_of(inv_state, b))?;
            ctx.inv(Signal::bit_of(inv_state, b), Signal::bit_of(q, b))?;
        }
        ctx.set_property("generator", "lfsr");
        ctx.set_property("width", i64::from(self.width));
        ctx.set_property("taps", self.taps as i64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn barrel_shifts_both_ways() {
        let circuit = Circuit::from_generator(&BarrelShifter::new(8)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        for a in [0x01u64, 0x80, 0xA5, 0xFF] {
            for sh in 0..8u64 {
                sim.set_u64("a", a).unwrap();
                sim.set_u64("sh", sh).unwrap();
                sim.set_u64("right", 0).unwrap();
                assert_eq!(
                    sim.peek("o").unwrap().to_u64(),
                    Some((a << sh) & 0xFF),
                    "{a:#x} << {sh}"
                );
                sim.set_u64("right", 1).unwrap();
                assert_eq!(
                    sim.peek("o").unwrap().to_u64(),
                    Some(a >> sh),
                    "{a:#x} >> {sh}"
                );
            }
        }
    }

    #[test]
    fn barrel_rejects_non_power_of_two() {
        assert!(Circuit::from_generator(&BarrelShifter::new(6)).is_err());
        assert!(Circuit::from_generator(&BarrelShifter::new(1)).is_err());
    }

    #[test]
    fn lfsr_matches_reference() {
        let lfsr = Lfsr::maximal(8);
        let circuit = Circuit::from_generator(&lfsr).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("ce", 1).unwrap();
        for n in 0..40u64 {
            assert_eq!(
                sim.peek("q").unwrap().to_u64(),
                Some(lfsr.reference(n)),
                "step {n}"
            );
            sim.cycle(1).unwrap();
        }
    }

    #[test]
    fn lfsr_is_maximal_length() {
        let lfsr = Lfsr::maximal(4);
        let circuit = Circuit::from_generator(&lfsr).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("ce", 1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..15 {
            let state = sim.peek("q").unwrap().to_u64().unwrap();
            assert_ne!(state, 0, "never the lock-up state");
            seen.insert(state);
            sim.cycle(1).unwrap();
        }
        assert_eq!(seen.len(), 15, "visits every nonzero state");
        // Period 15: back at the seed.
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(0xF));
    }

    #[test]
    fn lfsr_ce_holds() {
        let circuit = Circuit::from_generator(&Lfsr::maximal(8)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("ce", 0).unwrap();
        let before = sim.peek("q").unwrap();
        sim.cycle(5).unwrap();
        assert_eq!(sim.peek("q").unwrap(), before);
    }

    #[test]
    fn lfsr_validation() {
        assert!(Circuit::from_generator(&Lfsr::new(1, 1)).is_err());
        assert!(Circuit::from_generator(&Lfsr::new(8, 0)).is_err());
    }
}
