//! # ipd-modgen — parameterizable FPGA module generators
//!
//! "JHDL … is especially useful for creating parameterizable module
//! generators" (paper §3). This crate is the generator library the IP
//! delivery applets serve:
//!
//! - [`KcmMultiplier`] — the paper's flagship constant-coefficient
//!   multiplier (partial-product LUT tables, signed/unsigned, optional
//!   pipelining, truncated products, relative placement).
//! - [`ArrayMultiplier`] — the general-purpose baseline it is compared
//!   against.
//! - [`RippleAdder`], [`Subtractor`], [`AddSub`], [`Accumulator`] —
//!   carry-chain arithmetic.
//! - [`Counter`], [`Register`], [`ShiftRegister`] — sequential
//!   building blocks (SRL16-mapped delays).
//! - [`Comparator`], [`Decoder`], [`ParityTree`], [`BusMux`],
//!   [`Rom`] — combinational blocks.
//! - [`FirFilter`] — a transposed-form FIR built from KCMs, the
//!   "more complicated IP" of the paper's future work.
//!
//! Every generator is an ordinary value type implementing
//! [`Generator`](ipd_hdl::Generator): construct it with parameters,
//! elaborate with [`Circuit::from_generator`](ipd_hdl::Circuit) or
//! instance it inside another generator.
//!
//! # Example
//!
//! The paper's §3.1 code fragment — an 8×8 constant multiplier with a
//! 12-bit output and the constant −56:
//!
//! ```
//! use ipd_hdl::Circuit;
//! use ipd_modgen::KcmMultiplier;
//!
//! # fn main() -> Result<(), ipd_hdl::HdlError> {
//! let kcm = KcmMultiplier::new(-56, 8, 12)
//!     .signed(true)
//!     .pipelined(true);
//! let circuit = Circuit::from_generator(&kcm)?;
//! assert!(ipd_hdl::validate(&circuit)?.is_clean());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accum;
mod add;
mod bitsum;
mod compare;
mod counter;
mod fir;
mod gray;
mod kcm;
mod logicgen;
mod mult;
mod register;
mod rom;
mod shift;
pub mod sweep;

pub use accum::Accumulator;
pub use add::{AddSub, RippleAdder, Subtractor};
pub use compare::{Comparator, CompareOp};
pub use counter::{CountDirection, Counter};
pub use fir::FirFilter;
pub use gray::{GrayCounter, PopCount};
pub use kcm::{KcmMultiplier, KCM_MAX_CONSTANT_BITS, KCM_MAX_INPUT_WIDTH};
pub use logicgen::{BusMux, Decoder, ParityTree};
pub use mult::ArrayMultiplier;
pub use register::{Register, ShiftRegister};
pub use rom::Rom;
pub use shift::{BarrelShifter, Lfsr};

use ipd_hdl::{CellCtx, CellId, Circuit, Rloc};

/// The canonical example designs: the paper's running KCM
/// configuration plus a spread of other generators exercising every
/// primitive family (LUT tables, carry chains, flip-flops, SRL16
/// delays, ROMs).
///
/// One list shared by the `ipd-lint --examples` CLI, the equivalence
/// CI gate, and the golden EDIF fixtures, so "the zoo" means the same
/// designs everywhere.
///
/// # Panics
///
/// Panics if any built-in generator fails to elaborate — a bug in
/// this crate, not a caller error.
#[must_use]
pub fn example_zoo() -> Vec<(String, Circuit)> {
    let mut out = Vec::new();
    let mut add = |c: Result<Circuit, ipd_hdl::HdlError>| {
        let c = c.expect("example generators elaborate");
        out.push((c.name().to_owned(), c));
    };
    add(Circuit::from_generator(
        &KcmMultiplier::new(-56, 8, 12).signed(true),
    ));
    add(Circuit::from_generator(
        &FirFilter::new(vec![-2, 5, 9, 5, -2], 8).expect("valid taps"),
    ));
    add(Circuit::from_generator(
        &Counter::new(8, CountDirection::Up).loadable(),
    ));
    add(Circuit::from_generator(&PopCount::new(12)));
    add(Circuit::from_generator(
        // Hashed contents: an affine table like `i * 7 % 256` makes the
        // upper bank's low bit-planes provably identical to the lower
        // bank's (f(i+16) - f(i) is divisible by 16), which the
        // semantic lint tier rightly reports as redundant ROM LUTs.
        &Rom::new(
            5,
            8,
            (0..32u64)
                .map(|i| (i * 2_654_435_761) >> 7 & 0xff)
                .collect(),
        )
        .expect("valid rom"),
    ));
    add(Circuit::from_generator(&RippleAdder::new(10)));
    add(Circuit::from_generator(&ArrayMultiplier::new(6, 6)));
    add(Circuit::from_generator(&Comparator::new(8, CompareOp::Lt)));
    add(Circuit::from_generator(&ShiftRegister::new(4, 9)));
    add(Circuit::from_generator(&GrayCounter::new(6)));
    out
}

/// Places a per-bit primitive in a column layout: two bits per slice
/// row, matching the carry-chain geometry of the Virtex fabric.
pub(crate) fn place_column(ctx: &mut CellCtx<'_>, cell: CellId, bit: u32) {
    ctx.set_rloc(cell, Rloc::new((bit / 2) as i32, 0));
}
