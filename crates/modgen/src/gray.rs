//! Gray-code counter and population-count generators.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Rloc, Signal};
use ipd_techlib::LogicCtx;

use crate::add::RippleAdder;
use crate::bitsum::ZeroRail;
use crate::counter::{CountDirection, Counter};

/// A Gray-code counter: a binary [`Counter`] core with a
/// binary-to-Gray output stage (`gray = bin ^ (bin >> 1)`), so exactly
/// one output bit changes per enabled clock — the classic
/// clock-domain-crossing counter.
///
/// Ports: `clk`, `ce`, `rst`, `q` (`width` bits, Gray coded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayCounter {
    width: u32,
}

impl GrayCounter {
    /// A Gray counter of the given width.
    #[must_use]
    pub fn new(width: u32) -> Self {
        GrayCounter { width }
    }

    /// Software reference: the Gray output after `n` enabled clocks
    /// from reset.
    #[must_use]
    pub fn reference(&self, n: u64) -> u64 {
        let mask = if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let bin = n & mask;
        bin ^ (bin >> 1)
    }
}

impl Generator for GrayCounter {
    fn type_name(&self) -> String {
        format!("gray_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("clk", 1),
            PortSpec::input("ce", 1),
            PortSpec::input("rst", 1),
            PortSpec::output("q", self.width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width < 2 || self.width > 48 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be 2..=48".to_owned(),
            });
        }
        let clk = ctx.port("clk")?;
        let ce = ctx.port("ce")?;
        let rst = ctx.port("rst")?;
        let q = ctx.port("q")?;
        let bin = ctx.wire("bin", self.width);
        ctx.instantiate(
            &Counter::new(self.width, CountDirection::Up),
            "core",
            &[
                ("clk", clk.into()),
                ("ce", ce.into()),
                ("rst", rst.into()),
                ("q", bin.into()),
            ],
        )?;
        // gray[i] = bin[i] ^ bin[i+1]; top bit passes through.
        for b in 0..self.width - 1 {
            ctx.xor2(
                Signal::bit_of(bin, b),
                Signal::bit_of(bin, b + 1),
                Signal::bit_of(q, b),
            )?;
        }
        ctx.buffer(
            Signal::bit_of(bin, self.width - 1),
            Signal::bit_of(q, self.width - 1),
        )?;
        ctx.set_property("generator", "gray_counter");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

/// A population counter (`o = number of set bits in d`), built as a
/// LUT compressor tree feeding carry-chain adders.
///
/// Ports: `d` (`width` bits), `o` (`ceil(log2(width+1))` bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopCount {
    width: u32,
}

impl PopCount {
    /// A popcount over `width` input bits.
    #[must_use]
    pub fn new(width: u32) -> Self {
        PopCount { width }
    }

    /// Output width.
    #[must_use]
    pub fn output_width(&self) -> u32 {
        let mut w = 1;
        while (1u64 << w) <= u64::from(self.width) {
            w += 1;
        }
        w
    }
}

impl Generator for PopCount {
    fn type_name(&self) -> String {
        format!("popcount_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("d", self.width),
            PortSpec::output("o", self.output_width()),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 || self.width > 128 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be 1..=128".to_owned(),
            });
        }
        let d = ctx.port("d")?;
        let o = ctx.port("o")?;
        let mut zero = ZeroRail::zero();
        // Stage 1: LUT3 compressors produce 2-bit counts of 3-bit
        // groups. Represent intermediate sums as little bit-vectors
        // and reduce with adders.
        let mut sums: Vec<Vec<Signal>> = Vec::new();
        let bits: Vec<Signal> = (0..self.width).map(|b| Signal::bit_of(d, b)).collect();
        for (g, chunk) in bits.chunks(3).enumerate() {
            let n = chunk.len() as u32;
            if n == 1 {
                // A lone bit is its own count: no compressor (the `hi`
                // bit would be stuck at zero, the `lo` LUT an identity).
                sums.push(vec![chunk[0].clone()]);
                continue;
            }
            let lo = ctx.wire(&format!("c{g}_0"), 1);
            let hi = ctx.wire(&format!("c{g}_1"), 1);
            let mut lo_init = 0u16;
            let mut hi_init = 0u16;
            for pattern in 0..(1u32 << n) {
                let count = pattern.count_ones();
                if count & 1 == 1 {
                    lo_init |= 1 << pattern;
                }
                if count & 2 == 2 {
                    hi_init |= 1 << pattern;
                }
            }
            ctx.lut(lo_init, chunk, lo)?;
            ctx.lut(hi_init, chunk, hi)?;
            sums.push(vec![lo.into(), hi.into()]);
        }
        // Adder tree over the 2-bit (growing) partial counts. Each
        // adder's carry chain takes its own column: the relational
        // placements inside two RippleAdder instances would otherwise
        // land on the same slices.
        let out_w = self.output_width();
        let mut adders = 0i32;
        while sums.len() > 1 {
            let mut next = Vec::with_capacity(sums.len().div_ceil(2));
            let mut iter = sums.into_iter();
            let mut pair = 0usize;
            while let Some(a) = iter.next() {
                match iter.next() {
                    None => next.push(a),
                    Some(b) => {
                        let w = (a.len().max(b.len()) as u32 + 1).min(out_w);
                        let result = ctx.wire(&format!("s{pair}_{w}"), w);
                        let pad = |v: &[Signal], ctx: &mut CellCtx<'_>, zero: &mut ZeroRail| {
                            let mut bits = Vec::with_capacity(w as usize);
                            for k in 0..w as usize {
                                bits.push(match v.get(k) {
                                    Some(s) => s.clone(),
                                    None => zero.get(ctx)?,
                                });
                            }
                            Ok::<_, HdlError>(Signal::concat(bits))
                        };
                        let in_a = pad(&a, ctx, &mut zero)?;
                        let in_b = pad(&b, ctx, &mut zero)?;
                        let inst = ctx.instantiate(
                            &RippleAdder::new(w),
                            &format!("add{pair}"),
                            &[("a", in_a), ("b", in_b), ("s", result.into())],
                        )?;
                        ctx.set_rloc(inst, Rloc::new(0, adders));
                        adders += 1;
                        next.push((0..w).map(|k| Signal::bit_of(result, k)).collect());
                    }
                }
                pair += 1;
            }
            sums = next;
        }
        let total = sums.remove(0);
        for b in 0..out_w {
            let src = match total.get(b as usize) {
                Some(s) => s.clone(),
                None => zero.get(ctx)?,
            };
            ctx.buffer(src, Signal::bit_of(o, b))?;
        }
        ctx.set_property("generator", "popcount");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn gray_counter_single_bit_changes() {
        let gray = GrayCounter::new(4);
        let circuit = Circuit::from_generator(&gray).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("rst", 1).unwrap();
        sim.set_u64("ce", 1).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("rst", 0).unwrap();
        let mut prev = sim.peek("q").unwrap().to_u64().unwrap();
        for n in 1..=20u64 {
            sim.cycle(1).unwrap();
            let cur = sim.peek("q").unwrap().to_u64().unwrap();
            assert_eq!(cur, gray.reference(n), "step {n}");
            assert_eq!((cur ^ prev).count_ones(), 1, "one bit per step");
            prev = cur;
        }
    }

    #[test]
    fn popcount_counts() {
        for width in [1u32, 3, 4, 7, 8, 12] {
            let pc = PopCount::new(width);
            let circuit = Circuit::from_generator(&pc).unwrap();
            let mut sim = Simulator::new(&circuit).unwrap();
            let max = 1u64 << width;
            for v in (0..max).step_by(5).chain([0, max - 1]) {
                sim.set_u64("d", v).unwrap();
                assert_eq!(
                    sim.peek("o").unwrap().to_u64(),
                    Some(u64::from(v.count_ones())),
                    "width {width} value {v:#x}"
                );
            }
        }
    }

    #[test]
    fn popcount_output_widths() {
        assert_eq!(PopCount::new(1).output_width(), 1);
        assert_eq!(PopCount::new(3).output_width(), 2);
        assert_eq!(PopCount::new(4).output_width(), 3);
        assert_eq!(PopCount::new(7).output_width(), 3);
        assert_eq!(PopCount::new(8).output_width(), 4);
    }

    #[test]
    fn validation() {
        assert!(Circuit::from_generator(&GrayCounter::new(1)).is_err());
        assert!(Circuit::from_generator(&PopCount::new(0)).is_err());
    }
}
