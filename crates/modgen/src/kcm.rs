//! The constant-coefficient multiplier (KCM) module generator.
//!
//! This is the paper's running example (its §3.1 and Figures 1/3) and
//! the subject of the authors' FPL 2001 paper: an optimized, preplaced
//! multiplier-by-a-constant built from *partial-product look-up tables*.
//! The multiplicand is split into 4-bit digits; one LUT4 bank per digit
//! stores `constant × digit` for all sixteen digit values; the shifted
//! partial products are summed on carry chains, exactly as wide as
//! their numeric range requires.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

use crate::bitsum::{
    live_bits, reduce_tree, register_at, tree_levels, width_for, wire_bits, ConstRail,
    PartialValue, ZeroRail,
};

/// Maximum multiplicand width accepted by the generator.
pub const KCM_MAX_INPUT_WIDTH: u32 = 32;
/// Maximum constant magnitude bits accepted by the generator.
pub const KCM_MAX_CONSTANT_BITS: u32 = 32;

/// A constant-coefficient multiplier: `product = constant × multiplicand`.
///
/// Mirrors the JHDL constructor from the paper:
///
/// ```java
/// public VirtexKCMMultiplier(Node parent, Wire multiplicand,
///     Wire product, boolean signed_mode, boolean pipelined_mode,
///     int constant);
/// ```
///
/// Ports: `multiplicand` (input), `product` (output), and `clk` when
/// pipelined. When `product_width` is less than the full result width,
/// the *top* `product_width` bits are delivered, as in the paper's
/// 8×8→12 example.
///
/// # Examples
///
/// The paper's running example — an 8-bit multiplicand, 12-bit product,
/// signed, pipelined, constant −56:
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::KcmMultiplier;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let kcm = KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true);
/// let circuit = Circuit::from_generator(&kcm)?;
/// assert!(circuit.primitive_count() > 20);
/// assert_eq!(kcm.latency(), 2); // LUT stage + one adder level
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KcmMultiplier {
    constant: i64,
    input_width: u32,
    product_width: u32,
    signed: bool,
    pipelined: bool,
}

impl KcmMultiplier {
    /// A multiplier by `constant` with the given multiplicand and
    /// product widths. Unsigned and combinational by default.
    #[must_use]
    pub fn new(constant: i64, input_width: u32, product_width: u32) -> Self {
        KcmMultiplier {
            constant,
            input_width,
            product_width,
            signed: false,
            pipelined: false,
        }
    }

    /// Selects signed (two's complement) multiplicand interpretation.
    /// Negative constants require signed mode.
    #[must_use]
    pub fn signed(mut self, signed: bool) -> Self {
        self.signed = signed;
        self
    }

    /// Inserts pipeline registers after the partial-product tables and
    /// after every adder-tree level; adds a `clk` port.
    #[must_use]
    pub fn pipelined(mut self, pipelined: bool) -> Self {
        self.pipelined = pipelined;
        self
    }

    /// The constant coefficient.
    #[must_use]
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// Multiplicand width in bits.
    #[must_use]
    pub fn input_width(&self) -> u32 {
        self.input_width
    }

    /// Product width in bits.
    #[must_use]
    pub fn product_width(&self) -> u32 {
        self.product_width
    }

    /// Whether the multiplicand is interpreted as two's complement.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Whether pipeline registers are inserted.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Pipeline latency in clock cycles (0 when combinational).
    #[must_use]
    pub fn latency(&self) -> u32 {
        if !self.pipelined {
            return 0;
        }
        1 + tree_levels(self.digit_count())
    }

    /// Number of 4-bit digits the multiplicand splits into.
    #[must_use]
    pub fn digit_count(&self) -> usize {
        (self.input_width as usize).div_ceil(4)
    }

    /// The full (untruncated) product width for these parameters.
    #[must_use]
    pub fn full_product_width(&self) -> u32 {
        let (lo, hi) = self.product_range();
        width_for(lo, hi)
    }

    /// The exact numeric range of `constant × multiplicand`.
    fn product_range(&self) -> (i128, i128) {
        let k = i128::from(self.constant);
        let (x_lo, x_hi) = if self.signed {
            (
                -(1i128 << (self.input_width - 1)),
                (1i128 << (self.input_width - 1)) - 1,
            )
        } else {
            (0, (1i128 << self.input_width) - 1)
        };
        let a = k * x_lo;
        let b = k * x_hi;
        (a.min(b), a.max(b))
    }

    /// Reference product for a multiplicand value (used by testbenches
    /// and the black-box simulation model): full-width product, then
    /// the top `product_width` bits.
    #[must_use]
    pub fn reference_product(&self, x: i64) -> i64 {
        let full = self.full_product_width();
        let value = i128::from(self.constant) * i128::from(x);
        let shifted = value >> (full.saturating_sub(self.product_width)).min(127);
        // Truncate to product_width bits (two's complement wrap).
        let mask = if self.product_width >= 128 {
            -1i128
        } else {
            (1i128 << self.product_width) - 1
        };
        let raw = (shifted & mask) as i64;
        // Sign-extend when the product range is signed.
        let (lo, _) = self.product_range();
        if lo < 0 && self.product_width < 64 {
            let sign = 1i64 << (self.product_width - 1);
            (raw ^ sign).wrapping_sub(sign)
        } else {
            raw
        }
    }

    /// The exhaustive multiplicand sweep for this multiplier: one
    /// stimulus vector per multiplicand value, in the order of
    /// [`crate::sweep::exhaustive_values`]. Ready for
    /// `ipd_sim::VectorSweep::run` (pipelined instances need
    /// `.cycles(latency)`).
    ///
    /// # Panics
    ///
    /// Panics when the input width exceeds
    /// [`crate::sweep::MAX_EXHAUSTIVE_WIDTH`].
    #[must_use]
    pub fn sweep_stimuli(&self) -> Vec<Vec<(String, ipd_hdl::LogicVec)>> {
        crate::sweep::exhaustive_stimuli("multiplicand", self.input_width, self.signed)
    }

    /// The golden products for [`KcmMultiplier::sweep_stimuli`], in the
    /// same order: [`KcmMultiplier::reference_product`] of each
    /// multiplicand value.
    ///
    /// # Panics
    ///
    /// As for [`KcmMultiplier::sweep_stimuli`].
    #[must_use]
    pub fn expected_products(&self) -> Vec<i64> {
        crate::sweep::exhaustive_values(self.input_width, self.signed)
            .into_iter()
            .map(|x| self.reference_product(x))
            .collect()
    }

    fn validate(&self) -> Result<()> {
        let fail = |reason: String| {
            Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason,
            })
        };
        if self.input_width == 0 || self.input_width > KCM_MAX_INPUT_WIDTH {
            return fail(format!(
                "multiplicand width must be 1..={KCM_MAX_INPUT_WIDTH}, got {}",
                self.input_width
            ));
        }
        if self.product_width == 0 {
            return fail("product width must be at least 1".to_owned());
        }
        if self.constant < 0 && !self.signed {
            return fail("negative constants require signed mode".to_owned());
        }
        let kbits = 64 - self.constant.unsigned_abs().leading_zeros().min(63);
        if kbits > KCM_MAX_CONSTANT_BITS {
            return fail(format!(
                "constant magnitude exceeds {KCM_MAX_CONSTANT_BITS} bits"
            ));
        }
        if self.product_width > self.full_product_width() {
            return fail(format!(
                "product width {} exceeds full product width {}",
                self.product_width,
                self.full_product_width()
            ));
        }
        Ok(())
    }

    /// Digit descriptors: `(bit offset, digit width, signed)`.
    fn digits(&self) -> Vec<(u32, u32, bool)> {
        let mut out = Vec::new();
        let mut offset = 0;
        while offset < self.input_width {
            let width = (self.input_width - offset).min(4);
            let is_top = offset + width == self.input_width;
            out.push((offset, width, self.signed && is_top));
            offset += width;
        }
        out
    }
}

impl Generator for KcmMultiplier {
    fn type_name(&self) -> String {
        format!(
            "kcm_w{}_p{}_c{}{}{}",
            self.input_width,
            self.product_width,
            self.constant,
            if self.signed { "_s" } else { "_u" },
            if self.pipelined { "_pipe" } else { "" },
        )
    }

    fn ports(&self) -> Vec<PortSpec> {
        let mut ports = vec![
            PortSpec::input("multiplicand", self.input_width),
            PortSpec::output("product", self.product_width),
        ];
        if self.pipelined {
            ports.insert(0, PortSpec::input("clk", 1));
        }
        ports
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        self.validate()?;
        let x = ctx.port("multiplicand")?;
        let product = ctx.port("product")?;
        let clk = if self.pipelined {
            Some(ctx.port("clk")?)
        } else {
            None
        };
        let mut zero = ZeroRail::zero();
        let mut one = ConstRail::one();

        let k = i128::from(self.constant);
        let digits = self.digits();
        let digit_count = digits.len();
        // Product bits below the truncation point never reach the
        // output. The ones below the first digit boundary also never
        // reach an adder (they pass straight through the reduction), so
        // no logic is generated for them at all.
        let drop = self.full_product_width() - self.product_width;
        let dead_low = if digit_count > 1 {
            drop.min(digits[1].0)
        } else {
            drop
        };

        // Build one partial product per digit.
        let mut partials = Vec::new();
        for (digit_index, (offset, dwidth, dsigned)) in digits.into_iter().enumerate() {
            // Numeric range of constant × digit.
            let (d_lo, d_hi) = if dsigned {
                (-(1i128 << (dwidth - 1)), (1i128 << (dwidth - 1)) - 1)
            } else {
                (0, (1i128 << dwidth) - 1)
            };
            let (v_a, v_b) = (k * d_lo, k * d_hi);
            let (lo, hi) = (v_a.min(v_b), v_a.max(v_b));
            let pp_width = width_for(lo, hi);
            let (pp, base) = wire_bits(ctx, &format!("pp{digit_index}"), pp_width);
            let mut bits = live_bits(base);
            let pp_dead_low = if digit_index == 0 { dead_low } else { 0 };
            // One LUT per product bit: truth table over digit values.
            let inputs: Vec<Signal> = (0..dwidth).map(|i| Signal::bit_of(x, offset + i)).collect();
            let all_ones: u16 = if dwidth >= 4 {
                0xFFFF
            } else {
                (1u16 << (1u32 << dwidth)) - 1
            };
            for out_bit in 0..pp_width {
                // Truncated-away bits stay placeholders: no LUT.
                if out_bit < pp_dead_low {
                    continue;
                }
                let mut init = 0u16;
                for pattern in 0..(1u32 << dwidth) {
                    let digit_value = if dsigned && (pattern >> (dwidth - 1)) & 1 == 1 {
                        i128::from(pattern) - (1i128 << dwidth)
                    } else {
                        i128::from(pattern)
                    };
                    let value = k * digit_value;
                    if (value >> out_bit) & 1 == 1 {
                        init |= 1 << pattern;
                    }
                }
                // A table bit that never varies (e.g. low bits of a
                // constant with trailing zeros) is not a LUT: a LUT
                // computing a constant is wasted area and a lint
                // finding. Zero bits stay symbolic — the reduction
                // aliases them away without ever touching a rail.
                if init == 0 {
                    bits[out_bit as usize] = None;
                    continue;
                }
                if init == all_ones {
                    bits[out_bit as usize] = Some(one.get(ctx)?);
                    continue;
                }
                // Shrink the table to its true support: product bits
                // often depend on a strict subset of the digit (bit 0
                // of an odd constant's product is the digit LSB
                // verbatim), and a LUT re-computing a wire it was
                // handed is redundant logic under SAT equivalence.
                let support: Vec<u32> = (0..dwidth)
                    .filter(|&i| {
                        (0..(1u32 << dwidth))
                            .any(|pat| (init >> pat) & 1 != (init >> (pat ^ (1 << i))) & 1)
                    })
                    .collect();
                if support.len() == 1 {
                    let var = inputs[support[0] as usize].clone();
                    // The table over one live variable is identity or
                    // complement; identity is a plain wire.
                    if (init >> (1u32 << support[0])) & 1 == 1 {
                        bits[out_bit as usize] = Some(var);
                    } else {
                        let inv = ctx.inv(var, Signal::bit_of(pp, out_bit))?;
                        ctx.set_rloc(
                            inv,
                            ipd_hdl::Rloc::new((out_bit / 2) as i32, digit_index as i32),
                        );
                    }
                    continue;
                }
                let (red_init, red_inputs) = if support.len() < dwidth as usize {
                    let mut red = 0u16;
                    for rpat in 0..(1u32 << support.len()) {
                        let mut pat = 0u32;
                        for (ri, &i) in support.iter().enumerate() {
                            if (rpat >> ri) & 1 == 1 {
                                pat |= 1 << i;
                            }
                        }
                        if (init >> pat) & 1 == 1 {
                            red |= 1 << rpat;
                        }
                    }
                    let red_inputs: Vec<Signal> = support
                        .iter()
                        .map(|&i| inputs[i as usize].clone())
                        .collect();
                    (red, red_inputs)
                } else {
                    (init, inputs.clone())
                };
                let lut = ctx.lut(red_init, &red_inputs, Signal::bit_of(pp, out_bit))?;
                // Relative placement: digit banks in columns, bits in
                // rows, two bits per slice row.
                ctx.set_rloc(
                    lut,
                    ipd_hdl::Rloc::new((out_bit / 2) as i32, digit_index as i32),
                );
            }
            let mut value = PartialValue {
                bits,
                lo,
                hi,
                shift: offset,
                dead_low: pp_dead_low,
            };
            if let Some(clk) = clk {
                // Stage registers share the digit bank's slice column.
                value = register_at(
                    ctx,
                    value,
                    clk,
                    &format!("pp{digit_index}_reg"),
                    Some(digit_index as i32),
                )?;
            }
            partials.push(value);
        }

        // Sum the shifted partial products; the tree's carry chains go
        // in their own slice columns, clear of the digit LUT banks.
        let total = reduce_tree(
            ctx,
            partials,
            &mut zero,
            clk,
            "sum",
            Some(digit_count as i32),
        )?;
        debug_assert_eq!(
            total.width(),
            self.full_product_width(),
            "reduction width matches the analytic product width"
        );

        // Deliver the top product_width bits.
        let full = total.width();
        for bit in 0..self.product_width {
            let src = total.bit(full - self.product_width + bit, ctx, &mut zero)?;
            ctx.buffer(src, Signal::bit_of(product, bit))?;
        }

        ctx.set_property("generator", "kcm_multiplier");
        ctx.set_property("constant", self.constant);
        ctx.set_property("input_width", i64::from(self.input_width));
        ctx.set_property("product_width", i64::from(self.product_width));
        ctx.set_property("signed", self.signed);
        ctx.set_property("pipelined", self.pipelined);
        ctx.set_property("latency", i64::from(self.latency()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    fn check_all_inputs(kcm: &KcmMultiplier) {
        let circuit = Circuit::from_generator(kcm).expect("build");
        let mut sim = Simulator::new(&circuit).expect("compile");
        let n = kcm.input_width();
        let values: Vec<i64> = if kcm.is_signed() {
            (-(1i64 << (n - 1))..(1i64 << (n - 1))).collect()
        } else {
            (0..(1i64 << n)).collect()
        };
        for x in values {
            if kcm.is_signed() {
                sim.set_i64("multiplicand", x).unwrap();
            } else {
                sim.set_u64("multiplicand", x as u64).unwrap();
            }
            if kcm.is_pipelined() {
                sim.cycle(u64::from(kcm.latency())).unwrap();
            }
            let got = sim.peek("product").unwrap();
            let expect = kcm.reference_product(x);
            let got_val = if expect < 0 {
                got.to_i64().unwrap()
            } else {
                got.to_u64().unwrap() as i64
            };
            assert_eq!(
                got_val,
                expect,
                "constant={} x={x} signed={} product={got}",
                kcm.constant(),
                kcm.is_signed()
            );
        }
    }

    #[test]
    fn unsigned_small_exhaustive() {
        for k in [0i64, 1, 3, 5, 7, 200, 255] {
            let kcm = KcmMultiplier::new(k, 6, KcmMultiplier::new(k, 6, 1).full_product_width());
            check_all_inputs(&kcm);
        }
    }

    #[test]
    fn signed_negative_constant_exhaustive() {
        let kcm = KcmMultiplier::new(
            -56,
            6,
            KcmMultiplier::new(-56, 6, 1)
                .signed(true)
                .full_product_width(),
        )
        .signed(true);
        check_all_inputs(&kcm);
    }

    #[test]
    fn signed_positive_constant_exhaustive() {
        let full = KcmMultiplier::new(11, 6, 1)
            .signed(true)
            .full_product_width();
        check_all_inputs(&KcmMultiplier::new(11, 6, full).signed(true));
    }

    #[test]
    fn sweep_helpers_agree_with_reference() {
        let full = KcmMultiplier::new(-56, 6, 1)
            .signed(true)
            .full_product_width();
        let kcm = KcmMultiplier::new(-56, 6, full).signed(true);
        let stims = kcm.sweep_stimuli();
        let golden = kcm.expected_products();
        assert_eq!(stims.len(), 64);
        assert_eq!(golden.len(), 64);
        for (stim, expect) in stims.iter().zip(&golden) {
            assert_eq!(stim[0].0, "multiplicand");
            let x = stim[0].1.to_i64().expect("driven");
            assert_eq!(kcm.reference_product(x), *expect);
        }
    }

    #[test]
    fn paper_example_truncated_product() {
        // 8-bit multiplicand, 12-bit product, constant -56, signed,
        // pipelined — the paper's exact configuration.
        let kcm = KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true);
        let circuit = Circuit::from_generator(&kcm).expect("build");
        let mut sim = Simulator::new(&circuit).expect("compile");
        for x in [-128i64, -56, -1, 0, 1, 77, 127] {
            sim.set_i64("multiplicand", x).unwrap();
            sim.cycle(u64::from(kcm.latency())).unwrap();
            let got = sim.peek("product").unwrap().to_i64().unwrap();
            assert_eq!(got, kcm.reference_product(x), "x={x}");
        }
    }

    #[test]
    fn pipelined_matches_combinational_with_latency() {
        let comb = KcmMultiplier::new(77, 8, 15);
        let pipe = KcmMultiplier::new(77, 8, 15).pipelined(true);
        assert_eq!(comb.full_product_width(), 15);
        let c1 = Circuit::from_generator(&comb).unwrap();
        let c2 = Circuit::from_generator(&pipe).unwrap();
        let mut s1 = Simulator::new(&c1).unwrap();
        let mut s2 = Simulator::new(&c2).unwrap();
        for x in [0u64, 1, 17, 255, 128] {
            s1.set_u64("multiplicand", x).unwrap();
            s2.set_u64("multiplicand", x).unwrap();
            s2.cycle(u64::from(pipe.latency())).unwrap();
            assert_eq!(
                s1.peek("product").unwrap(),
                s2.peek("product").unwrap(),
                "x={x}"
            );
        }
    }

    #[test]
    fn latency_formula() {
        assert_eq!(KcmMultiplier::new(5, 4, 7).latency(), 0);
        assert_eq!(KcmMultiplier::new(5, 4, 7).pipelined(true).latency(), 1);
        assert_eq!(KcmMultiplier::new(5, 8, 11).pipelined(true).latency(), 2);
        assert_eq!(KcmMultiplier::new(5, 16, 19).pipelined(true).latency(), 3);
    }

    #[test]
    fn parameter_validation() {
        assert!(Circuit::from_generator(&KcmMultiplier::new(5, 0, 4)).is_err());
        assert!(Circuit::from_generator(&KcmMultiplier::new(5, 4, 0)).is_err());
        assert!(Circuit::from_generator(&KcmMultiplier::new(-5, 4, 4)).is_err());
        assert!(Circuit::from_generator(&KcmMultiplier::new(5, 40, 4)).is_err());
        // product width beyond the full width is rejected.
        let full = KcmMultiplier::new(5, 4, 1).full_product_width();
        assert!(Circuit::from_generator(&KcmMultiplier::new(5, 4, full + 1)).is_err());
    }

    #[test]
    fn zero_constant_yields_zero() {
        let kcm = KcmMultiplier::new(0, 8, 1);
        let circuit = Circuit::from_generator(&kcm).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("multiplicand", 255).unwrap();
        assert_eq!(sim.peek("product").unwrap().to_u64(), Some(0));
    }

    #[test]
    fn properties_record_parameters() {
        let kcm = KcmMultiplier::new(-56, 8, 12).signed(true).pipelined(true);
        let circuit = Circuit::from_generator(&kcm).unwrap();
        let props = circuit.cell(circuit.root()).properties();
        assert_eq!(
            props.get("constant"),
            Some(&ipd_hdl::PropertyValue::Int(-56))
        );
        assert_eq!(
            props.get("pipelined"),
            Some(&ipd_hdl::PropertyValue::Bool(true))
        );
    }

    #[test]
    fn validated_clean() {
        let kcm = KcmMultiplier::new(-56, 8, 12).signed(true);
        let circuit = Circuit::from_generator(&kcm).unwrap();
        let report = ipd_hdl::validate(&circuit).unwrap();
        assert!(report.is_clean(), "{report}");
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    /// The paper's exact instance, exhaustively over every 8-bit
    /// multiplicand, in both pipelined and combinational form.
    #[test]
    fn paper_instance_exhaustive_8bit() {
        for pipelined in [false, true] {
            let kcm = KcmMultiplier::new(-56, 8, 12)
                .signed(true)
                .pipelined(pipelined);
            let circuit = Circuit::from_generator(&kcm).expect("build");
            let mut sim = Simulator::new(&circuit).expect("compile");
            for x in -128i64..=127 {
                sim.set_i64("multiplicand", x).expect("set");
                if pipelined {
                    sim.cycle(u64::from(kcm.latency())).expect("cycle");
                }
                let got = sim.peek("product").expect("peek").to_i64().expect("driven");
                assert_eq!(got, kcm.reference_product(x), "pipelined={pipelined} x={x}");
            }
        }
    }
}
