//! A transposed-form FIR filter built from KCM multipliers — the
//! "more complicated IP" the paper's future-work section promises to
//! deliver through applets.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Rloc, Signal};
use ipd_techlib::LogicCtx;

use crate::bitsum::{combine, register, width_for, PartialValue, ZeroRail};
use crate::kcm::KcmMultiplier;

/// A transposed-form FIR filter: one constant-coefficient multiplier
/// per tap, with the accumulation chain registered every tap (fully
/// pipelined by construction, one sample per clock).
///
/// Ports: `clk`, `x` (signed input, `input_width` bits), `y` (signed
/// output, [`FirFilter::output_width`] bits).
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::FirFilter;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let fir = FirFilter::new(vec![-2, 5, 9, 5, -2], 8)?;
/// let circuit = Circuit::from_generator(&fir)?;
/// assert!(circuit.primitive_count() > 100);
/// assert_eq!(fir.latency(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirFilter {
    coefficients: Vec<i64>,
    input_width: u32,
}

impl FirFilter {
    /// A filter with the given coefficients over a signed input of
    /// `input_width` bits.
    ///
    /// # Errors
    ///
    /// Rejects empty coefficient lists, more than 64 taps, input widths
    /// outside 2..=24 and coefficients beyond ±2^24.
    pub fn new(coefficients: Vec<i64>, input_width: u32) -> Result<Self> {
        if coefficients.is_empty() || coefficients.len() > 64 {
            return Err(HdlError::InvalidParameter {
                generator: "fir".to_owned(),
                reason: "1..=64 coefficients required".to_owned(),
            });
        }
        if !(2..=24).contains(&input_width) {
            return Err(HdlError::InvalidParameter {
                generator: "fir".to_owned(),
                reason: "input width must be 2..=24".to_owned(),
            });
        }
        if coefficients.iter().any(|c| c.abs() > 1 << 24) {
            return Err(HdlError::InvalidParameter {
                generator: "fir".to_owned(),
                reason: "coefficients must fit 24 bits".to_owned(),
            });
        }
        Ok(FirFilter {
            coefficients,
            input_width,
        })
    }

    /// The filter coefficients.
    #[must_use]
    pub fn coefficients(&self) -> &[i64] {
        &self.coefficients
    }

    /// Input width in bits.
    #[must_use]
    pub fn input_width(&self) -> u32 {
        self.input_width
    }

    /// Number of taps.
    #[must_use]
    pub fn taps(&self) -> usize {
        self.coefficients.len()
    }

    /// Pipeline latency in cycles (one per tap).
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.coefficients.len() as u32
    }

    /// The exact output range of the accumulation.
    fn output_range(&self) -> (i128, i128) {
        let x_lo = -(1i128 << (self.input_width - 1));
        let x_hi = (1i128 << (self.input_width - 1)) - 1;
        let mut lo = 0i128;
        let mut hi = 0i128;
        for &c in &self.coefficients {
            let (a, b) = (i128::from(c) * x_lo, i128::from(c) * x_hi);
            lo += a.min(b);
            hi += a.max(b);
        }
        (lo, hi)
    }

    /// The output width implied by the coefficients and input width.
    #[must_use]
    pub fn output_width(&self) -> u32 {
        let (lo, hi) = self.output_range();
        width_for(lo, hi)
    }

    /// Software reference model: runs the same transposed-form
    /// recurrence the hardware implements, returning `y[n]` for each
    /// input sample (including pipeline fill).
    #[must_use]
    pub fn reference(&self, samples: &[i64]) -> Vec<i128> {
        let taps = self.taps();
        let mut acc = vec![0i128; taps + 1]; // acc[taps] is constant 0
        let mut out = Vec::with_capacity(samples.len());
        for &x in samples {
            out.push(acc[0]);
            let mut next = vec![0i128; taps + 1];
            for k in 0..taps {
                next[k] = i128::from(self.coefficients[k]) * i128::from(x) + acc[k + 1];
            }
            acc = next;
        }
        out
    }
}

impl Generator for FirFilter {
    fn type_name(&self) -> String {
        format!("fir_t{}_w{}", self.coefficients.len(), self.input_width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("clk", 1),
            PortSpec::input("x", self.input_width),
            PortSpec::output("y", self.output_width()),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        let clk = ctx.port("clk")?;
        let x = ctx.port("x")?;
        let y = ctx.port("y")?;
        let mut zero = ZeroRail::zero();

        let x_lo = -(1i128 << (self.input_width - 1));
        let x_hi = (1i128 << (self.input_width - 1)) - 1;

        // Each KCM occupies its digit-bank columns plus its internal
        // adder columns; give every tap its own column band so the
        // relational placements of the shared-multiplicand multipliers
        // never stack.
        let digit_count = self.input_width.div_ceil(4) as i32;
        let band = 2 * digit_count - 1;

        // Products for every tap (combinational KCMs sharing x). An
        // even coefficient's low bits are always zero, so the KCM is
        // asked for the truncated top bits only — `(c × x) >> tz` is
        // exact — and the shift is restored arithmetically. This keeps
        // constant-zero product bits (and the stuck-at carries they
        // would feed) out of the accumulation chain. In transposed
        // form every multiplier reads the *current* sample, so equal
        // coefficients — the norm in symmetric filters — share one
        // KCM instance instead of building SAT-identical copies.
        let mut products: Vec<PartialValue> = Vec::new();
        let mut shared: std::collections::BTreeMap<i64, PartialValue> =
            std::collections::BTreeMap::new();
        let mut bands_used = 0i32;
        for (k, &c) in self.coefficients.iter().enumerate() {
            if let Some(v) = shared.get(&c) {
                products.push(v.clone());
                continue;
            }
            let full = KcmMultiplier::new(c, self.input_width, 1)
                .signed(true)
                .full_product_width();
            let tz = if c == 0 {
                0
            } else {
                c.trailing_zeros().min(full - 1)
            };
            let kcm = KcmMultiplier::new(c, self.input_width, full - tz).signed(true);
            let w = kcm.product_width();
            let p = ctx.wire(&format!("p{k}"), w);
            let inst = ctx.instantiate(
                &kcm,
                &format!("kcm{k}"),
                &[("multiplicand", x.into()), ("product", p.into())],
            )?;
            ctx.set_rloc(inst, Rloc::new(0, bands_used * band));
            bands_used += 1;
            let (a, b) = (i128::from(c) * x_lo, i128::from(c) * x_hi);
            let value = PartialValue {
                bits: (0..w).map(|i| Some(Signal::bit_of(p, i))).collect(),
                lo: a.min(b) >> tz,
                hi: a.max(b) >> tz,
                shift: tz,
                dead_low: 0,
            };
            shared.insert(c, value.clone());
            products.push(value);
        }

        // Transposed accumulation chain, last tap first; each tap's
        // accumulation adder gets a column right of the KCM bands.
        let taps = self.coefficients.len() as i32;
        let mut acc: Option<PartialValue> = None;
        for (k, p) in products.into_iter().enumerate().rev() {
            let summed = match acc {
                None => p,
                Some(prev) => combine(
                    ctx,
                    p,
                    prev,
                    &mut zero,
                    &format!("sum{k}"),
                    Some(Rloc::new(0, taps * band + k as i32)),
                )?,
            };
            acc = Some(register(ctx, summed, clk, &format!("acc{k}"))?);
        }
        let acc = acc.expect("at least one tap");

        let out_w = self.output_width();
        for bit in 0..out_w {
            let src = acc.bit(bit, ctx, &mut zero)?;
            ctx.buffer(src, Signal::bit_of(y, bit))?;
        }
        ctx.set_property("generator", "fir_filter");
        ctx.set_property("taps", self.coefficients.len() as i64);
        ctx.set_property("input_width", i64::from(self.input_width));
        ctx.set_property("output_width", i64::from(out_w));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn impulse_response_is_coefficients() {
        let coeffs = vec![3i64, -7, 12, 5];
        let fir = FirFilter::new(coeffs.clone(), 6).unwrap();
        let circuit = Circuit::from_generator(&fir).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        // Impulse of amplitude 1 then zeros.
        let mut samples = vec![1i64];
        samples.extend(std::iter::repeat_n(0, coeffs.len() + 2));
        let expect = fir.reference(&samples);
        for (n, &x) in samples.iter().enumerate() {
            let got = sim.peek("y").unwrap().to_i64().unwrap();
            assert_eq!(i128::from(got), expect[n], "sample {n}");
            sim.set_i64("x", x).unwrap();
            sim.cycle(1).unwrap();
        }
    }

    #[test]
    fn matches_reference_on_random_signal() {
        let coeffs = vec![-2i64, 5, 9, 5, -2];
        let fir = FirFilter::new(coeffs, 8).unwrap();
        let circuit = Circuit::from_generator(&fir).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        // A deterministic pseudo-random signal.
        let samples: Vec<i64> = (0..40)
            .map(|i| (((i * 37 + 11) % 256) as i64) - 128)
            .collect();
        let expect = fir.reference(&samples);
        for (n, &x) in samples.iter().enumerate() {
            let got = sim.peek("y").unwrap().to_i64().unwrap();
            assert_eq!(i128::from(got), expect[n], "sample {n}");
            sim.set_i64("x", x).unwrap();
            sim.cycle(1).unwrap();
        }
    }

    #[test]
    fn output_width_covers_worst_case() {
        let fir = FirFilter::new(vec![127, 127, 127], 8).unwrap();
        // Worst case: 3 * 127 * 128 = 48768 → needs 17 signed bits.
        assert_eq!(fir.output_width(), 17);
    }

    #[test]
    fn parameter_validation() {
        assert!(FirFilter::new(vec![], 8).is_err());
        assert!(FirFilter::new(vec![1; 65], 8).is_err());
        assert!(FirFilter::new(vec![1], 1).is_err());
        assert!(FirFilter::new(vec![1], 25).is_err());
        assert!(FirFilter::new(vec![1 << 25], 8).is_err());
    }

    #[test]
    fn design_rules_clean() {
        let fir = FirFilter::new(vec![1, -1], 4).unwrap();
        let circuit = Circuit::from_generator(&fir).unwrap();
        let report = ipd_hdl::validate(&circuit).unwrap();
        assert!(report.is_clean(), "{report}");
    }
}
