//! Carry-chain comparators.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

use crate::place_column;

/// Comparison predicate computed by a [`Comparator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
    /// Unsigned `a < b`.
    Lt,
    /// Unsigned `a >= b`.
    Ge,
}

/// A comparator mapped onto the carry chain: equality uses the chain as
/// a wide AND of per-bit XNORs; magnitude uses a borrow chain.
///
/// Ports: `a`, `b` (`width` bits), `o` (1 bit).
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::{Comparator, CompareOp};
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let cmp = Comparator::new(8, CompareOp::Lt);
/// let circuit = Circuit::from_generator(&cmp)?;
/// assert!(ipd_hdl::validate(&circuit)?.is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comparator {
    width: u32,
    op: CompareOp,
}

impl Comparator {
    /// A comparator of the given width and predicate.
    #[must_use]
    pub fn new(width: u32, op: CompareOp) -> Self {
        Comparator { width, op }
    }
}

impl Generator for Comparator {
    fn type_name(&self) -> String {
        format!(
            "cmp_w{}_{}",
            self.width,
            match self.op {
                CompareOp::Eq => "eq",
                CompareOp::Ne => "ne",
                CompareOp::Lt => "lt",
                CompareOp::Ge => "ge",
            }
        )
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("a", self.width),
            PortSpec::input("b", self.width),
            PortSpec::output("o", 1),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 || self.width > 64 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be 1..=64".to_owned(),
            });
        }
        let a = ctx.port("a")?;
        let b = ctx.port("b")?;
        let o = ctx.port("o")?;
        match self.op {
            CompareOp::Eq | CompareOp::Ne => {
                // Chain of MUXCYs: carry stays 1 while bits are equal.
                let seed = ctx.wire("c0", 1);
                ctx.vcc(seed)?;
                let zero = ctx.wire("zero", 1);
                ctx.gnd(zero)?;
                let mut ci: Signal = seed.into();
                for bit in 0..self.width {
                    let eq = ctx.wire(&format!("eq{bit}"), 1);
                    // XNOR: equal bits.
                    let l = ctx.lut(
                        0b1001,
                        &[Signal::bit_of(a, bit), Signal::bit_of(b, bit)],
                        eq,
                    )?;
                    place_column(ctx, l, bit);
                    let co = ctx.wire(&format!("c{}", bit + 1), 1);
                    let m = ctx.muxcy(ci, zero, eq, co)?;
                    place_column(ctx, m, bit);
                    ci = co.into();
                }
                match self.op {
                    CompareOp::Eq => ctx.buffer(ci, o)?,
                    // Invert on the chain's own XORCY against the one
                    // rail: free fabric, where a LUT inverter is a
                    // redundant (complemented) copy of the carry net.
                    _ => {
                        let one = ctx.wire("one", 1);
                        ctx.vcc(one)?;
                        ctx.xorcy(ci, one, o)?
                    }
                };
            }
            CompareOp::Lt | CompareOp::Ge => {
                // a - b borrow chain: carry out of a + !b + 1 is 1 when
                // a >= b (no borrow).
                let seed = ctx.wire("c0", 1);
                ctx.vcc(seed)?;
                let mut ci: Signal = seed.into();
                for bit in 0..self.width {
                    let ab = Signal::bit_of(a, bit);
                    let half = ctx.wire(&format!("p{bit}"), 1);
                    // a XNOR b.
                    let l = ctx.lut(0b1001, &[ab.clone(), Signal::bit_of(b, bit)], half)?;
                    place_column(ctx, l, bit);
                    let co = ctx.wire(&format!("c{}", bit + 1), 1);
                    let m = ctx.muxcy(ci, ab, half, co)?;
                    place_column(ctx, m, bit);
                    ci = co.into();
                }
                match self.op {
                    CompareOp::Ge => ctx.buffer(ci, o)?,
                    _ => {
                        let one = ctx.wire("one", 1);
                        ctx.vcc(one)?;
                        ctx.xorcy(ci, one, o)?
                    }
                };
            }
        }
        ctx.set_property("generator", "comparator");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    fn truth(op: CompareOp, a: u64, b: u64) -> u64 {
        u64::from(match op {
            CompareOp::Eq => a == b,
            CompareOp::Ne => a != b,
            CompareOp::Lt => a < b,
            CompareOp::Ge => a >= b,
        })
    }

    #[test]
    fn exhaustive_4bit_all_ops() {
        for op in [CompareOp::Eq, CompareOp::Ne, CompareOp::Lt, CompareOp::Ge] {
            let circuit = Circuit::from_generator(&Comparator::new(4, op)).unwrap();
            let mut sim = Simulator::new(&circuit).unwrap();
            for a in 0..16u64 {
                for b in 0..16u64 {
                    sim.set_u64("a", a).unwrap();
                    sim.set_u64("b", b).unwrap();
                    assert_eq!(
                        sim.peek("o").unwrap().to_u64(),
                        Some(truth(op, a, b)),
                        "{op:?} {a} {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn wide_comparator() {
        let circuit = Circuit::from_generator(&Comparator::new(16, CompareOp::Lt)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("a", 30000).unwrap();
        sim.set_u64("b", 30001).unwrap();
        assert_eq!(sim.peek("o").unwrap().to_u64(), Some(1));
    }

    #[test]
    fn rejects_bad_width() {
        assert!(Circuit::from_generator(&Comparator::new(0, CompareOp::Eq)).is_err());
    }
}
