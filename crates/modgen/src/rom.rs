//! LUT-based ROM module generator.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

use crate::bitsum::ConstRail;

/// A combinational ROM built from `ROM16X1` primitives plus a `MUX2`
/// tree for address widths beyond four bits.
///
/// Ports: `addr` (`addr_width` bits), `data` (`data_width` bits).
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::Rom;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let rom = Rom::new(5, 8, (0..32).map(|i| i * 3).collect())?;
/// let circuit = Circuit::from_generator(&rom)?;
/// assert!(circuit.primitive_count() > 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rom {
    addr_width: u32,
    data_width: u32,
    words: Vec<u64>,
}

impl Rom {
    /// A ROM holding `words` (padded with zeros to `2^addr_width`
    /// entries).
    ///
    /// # Errors
    ///
    /// Rejects zero widths, address widths above 10, data widths above
    /// 64, and word lists longer than the address space.
    pub fn new(addr_width: u32, data_width: u32, words: Vec<u64>) -> Result<Self> {
        if addr_width == 0 || addr_width > 10 || data_width == 0 || data_width > 64 {
            return Err(HdlError::InvalidParameter {
                generator: "rom".to_owned(),
                reason: "addr_width must be 1..=10, data_width 1..=64".to_owned(),
            });
        }
        if words.len() > (1usize << addr_width) {
            return Err(HdlError::InvalidParameter {
                generator: "rom".to_owned(),
                reason: format!(
                    "{} words exceed the {}-entry address space",
                    words.len(),
                    1usize << addr_width
                ),
            });
        }
        Ok(Rom {
            addr_width,
            data_width,
            words,
        })
    }

    /// The stored word at `addr` (0 beyond the initialized range).
    #[must_use]
    pub fn word(&self, addr: usize) -> u64 {
        let mask = if self.data_width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.data_width) - 1
        };
        self.words.get(addr).copied().unwrap_or(0) & mask
    }
}

impl Generator for Rom {
    fn type_name(&self) -> String {
        format!("rom_a{}_d{}", self.addr_width, self.data_width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("addr", self.addr_width),
            PortSpec::output("data", self.data_width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        let addr = ctx.port("addr")?;
        let data = ctx.port("data")?;
        let mut zero = ConstRail::zero();
        let mut one = ConstRail::one();
        for bit in 0..self.data_width {
            // Leaf ROMs over the low 4 address bits, muxed by the rest.
            let low_width = self.addr_width.min(4);
            let high_bits = self.addr_width - low_width;
            let banks = 1u32 << high_bits;
            let all_ones: u16 = if low_width == 4 {
                0xFFFF
            } else {
                (1u16 << (1u32 << low_width)) - 1
            };
            // Each entry carries Some(value) when the bank's contents
            // are uniform — those tie to a shared rail instead of
            // spending a ROM primitive on a constant.
            let mut layer: Vec<(Signal, Option<bool>)> = Vec::with_capacity(banks as usize);
            for bank in 0..banks {
                let mut init = 0u16;
                for idx in 0..(1u32 << low_width) {
                    let address = ((bank << low_width) | idx) as usize;
                    if (self.word(address) >> bit) & 1 == 1 {
                        init |= 1 << idx;
                    }
                }
                if init == 0 {
                    layer.push((zero.get(ctx)?, Some(false)));
                    continue;
                }
                if init == all_ones {
                    layer.push((one.get(ctx)?, Some(true)));
                    continue;
                }
                let out = ctx.wire(&format!("b{bit}_bank{bank}"), 1);
                if low_width == 4 {
                    let a4 = Signal::slice_of(addr, 3, 0);
                    ctx.rom16x1(init, a4, out)?;
                } else {
                    let inputs: Vec<Signal> =
                        (0..low_width).map(|i| Signal::bit_of(addr, i)).collect();
                    ctx.lut(init, &inputs, out)?;
                }
                layer.push((out.into(), None));
            }
            // Mux tree over the high address bits. A pair of identical
            // rails needs no mux (selecting between equal constants
            // would be stuck-at logic); the constant flag propagates up
            // so whole zero-padded subtrees collapse.
            for level in 0..high_bits {
                let sel = Signal::bit_of(addr, low_width + level);
                let last = layer.len() == 2;
                let mut next = Vec::with_capacity(layer.len() / 2);
                for pair in layer.chunks(2) {
                    match (pair[0].1, pair[1].1) {
                        (Some(a), Some(b)) if a == b => next.push((pair[0].0.clone(), Some(a))),
                        _ => {
                            let out: Signal = if last {
                                Signal::bit_of(data, bit)
                            } else {
                                ctx.wire(&format!("b{bit}_m{level}_{}", next.len()), 1)
                                    .into()
                            };
                            ctx.mux2(
                                pair[0].0.clone(),
                                pair[1].0.clone(),
                                sel.clone(),
                                out.clone(),
                            )?;
                            next.push((out, None));
                        }
                    }
                }
                layer = next;
            }
            let (src, constant) = layer.remove(0);
            if high_bits == 0 || constant.is_some() {
                // Single bank — or a data bit whose mux tree collapsed
                // to a rail — drives the output through a buffer.
                ctx.buffer(src, Signal::bit_of(data, bit))?;
            }
        }
        ctx.set_property("generator", "rom");
        ctx.set_property("addr_width", i64::from(self.addr_width));
        ctx.set_property("data_width", i64::from(self.data_width));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn small_rom_reads_back() {
        let words: Vec<u64> = vec![5, 9, 0xFF, 0x00, 0x3C];
        let rom = Rom::new(3, 8, words.clone()).unwrap();
        let circuit = Circuit::from_generator(&rom).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        for a in 0..8usize {
            sim.set_u64("addr", a as u64).unwrap();
            let expect = words.get(a).copied().unwrap_or(0);
            assert_eq!(sim.peek("data").unwrap().to_u64(), Some(expect), "addr {a}");
        }
    }

    #[test]
    fn wide_address_uses_mux_tree() {
        let words: Vec<u64> = (0..64).map(|i| (i * 7) % 256).collect();
        let rom = Rom::new(6, 8, words.clone()).unwrap();
        let circuit = Circuit::from_generator(&rom).unwrap();
        let stats = ipd_hdl::CircuitStats::of(&circuit);
        // Bank 0 of data bit 7 is uniformly zero (words 0..=15 are all
        // below 128) and ties to the ground rail instead of a ROM.
        assert_eq!(stats.count_of("virtex:rom16x1"), 8 * 4 - 1);
        assert_eq!(stats.count_of("virtex:gnd"), 1);
        assert!(stats.count_of("virtex:mux2") > 0);
        let mut sim = Simulator::new(&circuit).unwrap();
        for a in [0u64, 15, 16, 31, 32, 63] {
            sim.set_u64("addr", a).unwrap();
            assert_eq!(
                sim.peek("data").unwrap().to_u64(),
                Some(words[a as usize]),
                "addr {a}"
            );
        }
    }

    #[test]
    fn exact_16_entries_uses_rom16_directly() {
        let words: Vec<u64> = (0..16).collect();
        let rom = Rom::new(4, 4, words).unwrap();
        let circuit = Circuit::from_generator(&rom).unwrap();
        let stats = ipd_hdl::CircuitStats::of(&circuit);
        assert_eq!(stats.count_of("virtex:rom16x1"), 4);
        assert_eq!(stats.count_of("virtex:mux2"), 0);
    }

    #[test]
    fn parameter_validation() {
        assert!(Rom::new(0, 8, vec![]).is_err());
        assert!(Rom::new(11, 8, vec![]).is_err());
        assert!(Rom::new(4, 0, vec![]).is_err());
        assert!(Rom::new(2, 8, vec![0; 5]).is_err());
    }

    #[test]
    fn word_masks_to_data_width() {
        let rom = Rom::new(2, 4, vec![0xFF]).unwrap();
        assert_eq!(rom.word(0), 0xF);
        assert_eq!(rom.word(3), 0);
    }
}
