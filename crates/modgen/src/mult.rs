//! A conventional array multiplier — the baseline the KCM is compared
//! against (the authors' FPL 2001 evaluation).

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

use crate::bitsum::{
    live_bits, reduce_tree, register, width_for, wire_bits, PartialValue, ZeroRail,
};

/// An unsigned array multiplier: `p = a × b`, built from `MULT_AND`
/// partial-product rows summed on carry chains. The general-purpose
/// structure a designer would use when the coefficient is *not*
/// constant; the KCM's partial-product tables beat it precisely because
/// they fold the constant into LUT contents.
///
/// Ports: `a` (n bits), `b` (m bits), `p` (n+m bits), plus `clk` when
/// pipelined.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::ArrayMultiplier;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let mult = ArrayMultiplier::new(8, 8);
/// let circuit = Circuit::from_generator(&mult)?;
/// assert!(circuit.primitive_count() > 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayMultiplier {
    a_width: u32,
    b_width: u32,
    pipelined: bool,
}

impl ArrayMultiplier {
    /// An `a_width × b_width` unsigned multiplier.
    #[must_use]
    pub fn new(a_width: u32, b_width: u32) -> Self {
        ArrayMultiplier {
            a_width,
            b_width,
            pipelined: false,
        }
    }

    /// Inserts pipeline registers after every adder-tree level.
    #[must_use]
    pub fn pipelined(mut self, pipelined: bool) -> Self {
        self.pipelined = pipelined;
        self
    }

    /// Product width (`a_width + b_width`).
    #[must_use]
    pub fn product_width(&self) -> u32 {
        self.a_width + self.b_width
    }

    /// Pipeline latency in clock cycles (0 when combinational).
    #[must_use]
    pub fn latency(&self) -> u32 {
        if !self.pipelined {
            return 0;
        }
        1 + crate::bitsum::tree_levels(self.b_width as usize)
    }
}

impl Generator for ArrayMultiplier {
    fn type_name(&self) -> String {
        format!(
            "mult_{}x{}{}",
            self.a_width,
            self.b_width,
            if self.pipelined { "_pipe" } else { "" }
        )
    }

    fn ports(&self) -> Vec<PortSpec> {
        let mut ports = vec![
            PortSpec::input("a", self.a_width),
            PortSpec::input("b", self.b_width),
            PortSpec::output("p", self.product_width()),
        ];
        if self.pipelined {
            ports.insert(0, PortSpec::input("clk", 1));
        }
        ports
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.a_width == 0 || self.b_width == 0 || self.a_width > 32 || self.b_width > 32 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "operand widths must be 1..=32".to_owned(),
            });
        }
        let a = ctx.port("a")?;
        let b = ctx.port("b")?;
        let p = ctx.port("p")?;
        let clk = if self.pipelined {
            Some(ctx.port("clk")?)
        } else {
            None
        };
        let mut zero = ZeroRail::zero();

        let a_max = (1i128 << self.a_width) - 1;
        // Row i: (a AND b_i) << i via MULT_AND gates.
        let mut rows = Vec::new();
        for i in 0..self.b_width {
            let (row, bits) = wire_bits(ctx, &format!("row{i}"), self.a_width);
            for j in 0..self.a_width {
                let g = ctx.mult_and(
                    Signal::bit_of(a, j),
                    Signal::bit_of(b, i),
                    Signal::bit_of(row, j),
                )?;
                ctx.set_rloc(g, ipd_hdl::Rloc::new((j / 2) as i32, i as i32));
            }
            let mut value = PartialValue {
                bits: live_bits(bits),
                lo: 0,
                hi: a_max,
                shift: i,
                dead_low: 0,
            };
            if let Some(clk) = clk {
                value = register(ctx, value, clk, &format!("row{i}_reg"))?;
            }
            rows.push(value);
        }
        // Carry chains go in their own columns, right of the AND array.
        let total = reduce_tree(ctx, rows, &mut zero, clk, "acc", Some(self.b_width as i32))?;
        // The exact range [0, a_max * b_max] may need fewer bits than
        // n + m; extend with zeros to the declared product width.
        let full = self.product_width();
        debug_assert!(total.width() <= full);
        debug_assert_eq!(
            total.width(),
            width_for(0, a_max * ((1i128 << self.b_width) - 1))
        );
        for bit in 0..full {
            let src = total.bit(bit, ctx, &mut zero)?;
            ctx.buffer(src, Signal::bit_of(p, bit))?;
        }
        ctx.set_property("generator", "array_multiplier");
        ctx.set_property("a_width", i64::from(self.a_width));
        ctx.set_property("b_width", i64::from(self.b_width));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn multiplies_exhaustively_4x4() {
        let circuit = Circuit::from_generator(&ArrayMultiplier::new(4, 4)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_u64("a", a).unwrap();
                sim.set_u64("b", b).unwrap();
                assert_eq!(sim.peek("p").unwrap().to_u64(), Some(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn asymmetric_widths() {
        let circuit = Circuit::from_generator(&ArrayMultiplier::new(6, 3)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        for (a, b) in [(63u64, 7u64), (40, 5), (1, 1), (0, 7), (63, 0)] {
            sim.set_u64("a", a).unwrap();
            sim.set_u64("b", b).unwrap();
            assert_eq!(sim.peek("p").unwrap().to_u64(), Some(a * b), "{a}*{b}");
        }
    }

    #[test]
    fn pipelined_matches_combinational() {
        let pipe = ArrayMultiplier::new(5, 5).pipelined(true);
        let circuit = Circuit::from_generator(&pipe).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        for (a, b) in [(31u64, 31u64), (17, 3), (0, 0)] {
            sim.set_u64("a", a).unwrap();
            sim.set_u64("b", b).unwrap();
            sim.cycle(u64::from(pipe.latency())).unwrap();
            assert_eq!(sim.peek("p").unwrap().to_u64(), Some(a * b), "{a}*{b}");
        }
    }

    #[test]
    fn rejects_bad_widths() {
        assert!(Circuit::from_generator(&ArrayMultiplier::new(0, 4)).is_err());
        assert!(Circuit::from_generator(&ArrayMultiplier::new(4, 33)).is_err());
    }
}
