//! Accumulator module generator.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

use crate::add::RippleAdder;
use crate::place_column;

/// A clocked accumulator: `acc <= rst ? 0 : ce ? acc + d : acc`.
///
/// Ports: `clk`, `ce`, `rst` (synchronous), `d` (`width` bits),
/// `q` (`width` bits, the accumulator value, wrapping).
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_modgen::Accumulator;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let circuit = Circuit::from_generator(&Accumulator::new(12))?;
/// assert!(ipd_hdl::validate(&circuit)?.is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accumulator {
    width: u32,
}

impl Accumulator {
    /// An accumulator of the given width.
    #[must_use]
    pub fn new(width: u32) -> Self {
        Accumulator { width }
    }
}

impl Generator for Accumulator {
    fn type_name(&self) -> String {
        format!("accum_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("clk", 1),
            PortSpec::input("ce", 1),
            PortSpec::input("rst", 1),
            PortSpec::input("d", self.width),
            PortSpec::output("q", self.width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 || self.width > 64 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be 1..=64".to_owned(),
            });
        }
        let clk = ctx.port("clk")?;
        let ce = ctx.port("ce")?;
        let rst = ctx.port("rst")?;
        let d = ctx.port("d")?;
        let q = ctx.port("q")?;
        let sum = ctx.wire("sum", self.width);
        ctx.instantiate(
            &RippleAdder::new(self.width),
            "adder",
            &[("a", q.into()), ("b", d.into()), ("s", sum.into())],
        )?;
        for bit in 0..self.width {
            let ff = ctx.fdre(
                clk,
                ce,
                rst,
                Signal::bit_of(sum, bit),
                Signal::bit_of(q, bit),
            )?;
            place_column(ctx, ff, bit);
        }
        ctx.set_property("generator", "accumulator");
        ctx.set_property("width", i64::from(self.width));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn accumulates_and_wraps() {
        let circuit = Circuit::from_generator(&Accumulator::new(8)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("rst", 1).unwrap();
        sim.set_u64("ce", 1).unwrap();
        sim.set_u64("d", 0).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("rst", 0).unwrap();
        sim.set_u64("d", 100).unwrap();
        sim.cycle(3).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(300 % 256));
    }

    #[test]
    fn ce_pauses_accumulation() {
        let circuit = Circuit::from_generator(&Accumulator::new(8)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("rst", 1).unwrap();
        sim.set_u64("ce", 1).unwrap();
        sim.set_u64("d", 5).unwrap();
        sim.cycle(1).unwrap();
        sim.set_u64("rst", 0).unwrap();
        sim.cycle(2).unwrap();
        sim.set_u64("ce", 0).unwrap();
        sim.cycle(10).unwrap();
        assert_eq!(sim.peek("q").unwrap().to_u64(), Some(10));
    }

    #[test]
    fn rejects_zero_width() {
        assert!(Circuit::from_generator(&Accumulator::new(0)).is_err());
    }
}
