//! Small combinational generators: decoder, parity tree, bus mux.

use ipd_hdl::{CellCtx, Generator, HdlError, PortSpec, Result, Signal};
use ipd_techlib::LogicCtx;

/// A one-hot decoder: output bit `k` is high when `sel == k` (and
/// `en = 1`).
///
/// Ports: `sel` (`sel_width` bits), `en` (1 bit), `o` (`2^sel_width`
/// bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decoder {
    sel_width: u32,
}

impl Decoder {
    /// A decoder over `sel_width` select bits (1..=4).
    #[must_use]
    pub fn new(sel_width: u32) -> Self {
        Decoder { sel_width }
    }
}

impl Generator for Decoder {
    fn type_name(&self) -> String {
        format!("decode_{}to{}", self.sel_width, 1u32 << self.sel_width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("sel", self.sel_width),
            PortSpec::input("en", 1),
            PortSpec::output("o", 1 << self.sel_width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.sel_width == 0 || self.sel_width > 4 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "sel width must be 1..=4".to_owned(),
            });
        }
        let sel = ctx.port("sel")?;
        let en = ctx.port("en")?;
        let o = ctx.port("o")?;
        let outputs = 1u32 << self.sel_width;
        for k in 0..outputs {
            // Decode via LUT: match sel == k, AND en when it fits;
            // sel_width <= 3 lets en share the LUT, otherwise a
            // separate AND gate.
            if self.sel_width <= 3 {
                let mut init = 0u16;
                let en_bit = self.sel_width;
                for pattern in 0..(1u32 << (self.sel_width + 1)) {
                    let sel_val = pattern & ((1 << self.sel_width) - 1);
                    let en_val = (pattern >> en_bit) & 1;
                    if sel_val == k && en_val == 1 {
                        init |= 1 << pattern;
                    }
                }
                let mut inputs: Vec<Signal> = (0..self.sel_width)
                    .map(|i| Signal::bit_of(sel, i))
                    .collect();
                inputs.push(en.into());
                ctx.lut(init, &inputs, Signal::bit_of(o, k))?;
            } else {
                let mut init = 0u16;
                for pattern in 0..16u32 {
                    if pattern == k {
                        init |= 1 << pattern;
                    }
                }
                let inputs: Vec<Signal> = (0..4).map(|i| Signal::bit_of(sel, i)).collect();
                let hit = ctx.wire(&format!("hit{k}"), 1);
                ctx.lut(init, &inputs, hit)?;
                ctx.and2(hit, en, Signal::bit_of(o, k))?;
            }
        }
        ctx.set_property("generator", "decoder");
        Ok(())
    }
}

/// A balanced XOR tree computing the parity of a bus.
///
/// Ports: `d` (`width` bits), `p` (1 bit; even parity — high when an
/// odd number of input bits are high).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityTree {
    width: u32,
}

impl ParityTree {
    /// A parity tree over `width` input bits.
    #[must_use]
    pub fn new(width: u32) -> Self {
        ParityTree { width }
    }
}

impl Generator for ParityTree {
    fn type_name(&self) -> String {
        format!("parity_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![PortSpec::input("d", self.width), PortSpec::output("p", 1)]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 || self.width > 256 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be 1..=256".to_owned(),
            });
        }
        let d = ctx.port("d")?;
        let p = ctx.port("p")?;
        let mut layer: Vec<Signal> = (0..self.width).map(|b| Signal::bit_of(d, b)).collect();
        let mut level = 0;
        // Reduce four bits per LUT4 (XOR of up to 4 inputs: INIT with
        // odd-popcount patterns set).
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(4));
            for (i, chunk) in layer.chunks(4).enumerate() {
                let out: Signal = if layer.len() <= 4 {
                    p.into()
                } else {
                    ctx.wire(&format!("x{level}_{i}"), 1).into()
                };
                let n = chunk.len() as u32;
                let mut init = 0u16;
                for pattern in 0..(1u32 << n) {
                    if pattern.count_ones() % 2 == 1 {
                        init |= 1 << pattern;
                    }
                }
                ctx.lut(init, chunk, out.clone())?;
                next.push(out);
            }
            layer = next;
            level += 1;
        }
        if self.width == 1 {
            // Single bit: parity is the bit itself.
            ctx.buffer(layer.remove(0), p)?;
        }
        ctx.set_property("generator", "parity_tree");
        Ok(())
    }
}

/// A word-wide 2:1 multiplexer: `o = sel ? b : a`.
///
/// Ports: `a`, `b` (`width` bits), `sel` (1 bit), `o` (`width` bits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusMux {
    width: u32,
}

impl BusMux {
    /// A bus mux of the given width.
    #[must_use]
    pub fn new(width: u32) -> Self {
        BusMux { width }
    }
}

impl Generator for BusMux {
    fn type_name(&self) -> String {
        format!("busmux_w{}", self.width)
    }

    fn ports(&self) -> Vec<PortSpec> {
        vec![
            PortSpec::input("a", self.width),
            PortSpec::input("b", self.width),
            PortSpec::input("sel", 1),
            PortSpec::output("o", self.width),
        ]
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        if self.width == 0 {
            return Err(HdlError::InvalidParameter {
                generator: self.type_name(),
                reason: "width must be at least 1".to_owned(),
            });
        }
        let a = ctx.port("a")?;
        let b = ctx.port("b")?;
        let sel = ctx.port("sel")?;
        let o = ctx.port("o")?;
        for bit in 0..self.width {
            ctx.mux2(
                Signal::bit_of(a, bit),
                Signal::bit_of(b, bit),
                sel,
                Signal::bit_of(o, bit),
            )?;
        }
        ctx.set_property("generator", "bus_mux");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;
    use ipd_sim::Simulator;

    #[test]
    fn decoder_is_one_hot() {
        for sel_width in 1..=4u32 {
            let circuit = Circuit::from_generator(&Decoder::new(sel_width)).unwrap();
            let mut sim = Simulator::new(&circuit).unwrap();
            sim.set_u64("en", 1).unwrap();
            for k in 0..(1u64 << sel_width) {
                sim.set_u64("sel", k).unwrap();
                let o = sim.peek("o").unwrap().to_u64().unwrap();
                assert_eq!(o, 1 << k, "sel_width {sel_width}, sel {k}");
            }
            sim.set_u64("en", 0).unwrap();
            sim.set_u64("sel", 0).unwrap();
            assert_eq!(sim.peek("o").unwrap().to_u64(), Some(0), "disabled");
        }
    }

    #[test]
    fn parity_matches_popcount() {
        for width in [1u32, 2, 4, 5, 8, 13] {
            let circuit = Circuit::from_generator(&ParityTree::new(width)).unwrap();
            let mut sim = Simulator::new(&circuit).unwrap();
            let max = 1u64 << width.min(12);
            for v in (0..max).step_by(7).chain([0, max - 1]) {
                sim.set_u64("d", v).unwrap();
                assert_eq!(
                    sim.peek("p").unwrap().to_u64(),
                    Some(u64::from(v.count_ones() % 2)),
                    "width {width}, v {v}"
                );
            }
        }
    }

    #[test]
    fn bus_mux_selects() {
        let circuit = Circuit::from_generator(&BusMux::new(8)).unwrap();
        let mut sim = Simulator::new(&circuit).unwrap();
        sim.set_u64("a", 0x12).unwrap();
        sim.set_u64("b", 0xEF).unwrap();
        sim.set_u64("sel", 0).unwrap();
        assert_eq!(sim.peek("o").unwrap().to_u64(), Some(0x12));
        sim.set_u64("sel", 1).unwrap();
        assert_eq!(sim.peek("o").unwrap().to_u64(), Some(0xEF));
    }

    #[test]
    fn parameter_validation() {
        assert!(Circuit::from_generator(&Decoder::new(0)).is_err());
        assert!(Circuit::from_generator(&Decoder::new(5)).is_err());
        assert!(Circuit::from_generator(&ParityTree::new(0)).is_err());
        assert!(Circuit::from_generator(&BusMux::new(0)).is_err());
    }
}
