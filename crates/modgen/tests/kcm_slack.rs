//! Pipelining as a timing-closure tool: the same KCM constant that
//! misses a 150 MHz clock combinationally meets it with positive slack
//! once `pipelined(true)` inserts the stage registers — the applet
//! story where the customer turns a knob and watches slack go green.

use ipd_estimate::{analyze_timing, TimingConstraints};
use ipd_hdl::Circuit;
use ipd_modgen::KcmMultiplier;

/// 150 MHz and an explicit output-delay so the combinational variant's
/// outputs are timed against the same (virtual) clock.
fn constraints_150mhz() -> TimingConstraints {
    let mut t = TimingConstraints::new();
    t.clock("clk", 1000.0 / 150.0, "clk");
    t.output_delay("clk", 0.0, "product");
    t
}

fn kcm(pipelined: bool) -> Circuit {
    let full = KcmMultiplier::new(-12345, 16, 1)
        .signed(true)
        .full_product_width();
    let gen = KcmMultiplier::new(-12345, 16, full)
        .signed(true)
        .pipelined(pipelined);
    Circuit::from_generator(&gen).expect("kcm elaborates")
}

#[test]
fn pipelining_turns_failing_150mhz_into_positive_slack() {
    let comb = analyze_timing(&kcm(false), &constraints_150mhz()).expect("comb sta");
    assert!(
        comb.violations() > 0,
        "combinational 16-bit KCM must miss 150 MHz: {}",
        comb.summary()
    );
    assert!(comb.worst_slack().unwrap() < 0.0);

    let piped = analyze_timing(&kcm(true), &constraints_150mhz()).expect("piped sta");
    assert_eq!(
        piped.violations(),
        0,
        "pipelined KCM must close 150 MHz: {}",
        piped.summary()
    );
    assert!(piped.worst_slack().unwrap() > 0.0);
    // The pipelined instance has real sequential endpoints, each with
    // a reported slack against the clock.
    assert!(piped
        .endpoints
        .iter()
        .any(|e| e.endpoint.contains(".d") || e.endpoint.contains("fd")));
}
