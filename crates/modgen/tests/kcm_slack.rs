//! Pipelining as a timing-closure tool: the same KCM constant that
//! misses a 150 MHz clock combinationally meets it with positive slack
//! once `pipelined(true)` inserts the stage registers — the applet
//! story where the customer turns a knob and watches slack go green.

use ipd_estimate::{analyze_timing, TimingConstraints};
use ipd_hdl::Circuit;
use ipd_modgen::KcmMultiplier;

/// 150 MHz and an explicit output-delay so the combinational variant's
/// outputs are timed against the same (virtual) clock.
fn constraints_150mhz() -> TimingConstraints {
    let mut t = TimingConstraints::new();
    t.clock("clk", 1000.0 / 150.0, "clk");
    t.output_delay("clk", 0.0, "product");
    t
}

fn kcm(pipelined: bool) -> Circuit {
    let full = KcmMultiplier::new(-12345, 16, 1)
        .signed(true)
        .full_product_width();
    let gen = KcmMultiplier::new(-12345, 16, full)
        .signed(true)
        .pipelined(pipelined);
    Circuit::from_generator(&gen).expect("kcm elaborates")
}

#[test]
fn pipelining_turns_failing_150mhz_into_positive_slack() {
    let comb = analyze_timing(&kcm(false), &constraints_150mhz()).expect("comb sta");
    assert!(
        comb.violations() > 0,
        "combinational 16-bit KCM must miss 150 MHz: {}",
        comb.summary()
    );
    assert!(comb.worst_slack().unwrap() < 0.0);

    let piped = analyze_timing(&kcm(true), &constraints_150mhz()).expect("piped sta");
    assert_eq!(
        piped.violations(),
        0,
        "pipelined KCM must close 150 MHz: {}",
        piped.summary()
    );
    assert!(piped.worst_slack().unwrap() > 0.0);
    // The pipelined instance has real sequential endpoints, each with
    // a reported slack against the clock.
    assert!(piped
        .endpoints
        .iter()
        .any(|e| e.endpoint.contains(".d") || e.endpoint.contains("fd")));
}

/// The same pipelined KCM must close 150 MHz on *routed* timing too:
/// hand RLOCs pinned, the rest annealed, every net routed over the
/// device CLB grid with congestion negotiation, and STA fed the routed
/// wire lengths instead of Manhattan guesses. Routed delays can only
/// be slower than the heuristic, so this is the stronger claim.
#[test]
fn pipelined_kcm_closes_150mhz_on_routed_timing() {
    use ipd_estimate::{place_and_route, PnrConfig};
    let circuit = kcm(true);
    let phys = place_and_route(&circuit, &PnrConfig::virtex()).expect("place and route");
    assert!(
        phys.routing.stats.converged,
        "router must converge on the pipelined KCM: {}",
        phys.routing.stats
    );
    let routed = phys.analyze(&constraints_150mhz()).expect("routed sta");
    assert_eq!(
        routed.violations(),
        0,
        "pipelined KCM must close 150 MHz on routed delays: {}",
        routed.summary()
    );
    // Routed slack can only shrink relative to the heuristic on the
    // same placement; +0.3 ns of margin survives the real geometry
    // (tracked here so a router regression shows up as a slack drop).
    let worst = routed.worst_slack().expect("constrained endpoints");
    assert!(
        worst > 0.25,
        "routed worst slack regressed below the tracked 0.25 ns floor: {worst}"
    );
    let heuristic = analyze_timing(phys.circuit(), &constraints_150mhz()).expect("heuristic sta");
    assert!(
        worst <= heuristic.worst_slack().expect("constrained endpoints") + 1e-9,
        "routed slack cannot beat the heuristic on the same placement"
    );
}
