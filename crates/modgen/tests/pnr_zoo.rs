//! Router validity over the generator zoo: every design in
//! [`ipd_modgen::example_zoo`] is placed (hand `RLOC`s pinned) and
//! routed, and the routed trees are checked independently of the
//! router's own bookkeeping — sinks reached exactly once, trees
//! connected, capacities respected at convergence (or overflow
//! reported honestly), delays dominated from below by the Manhattan
//! heuristic, and full determinism per seed.

use std::collections::{HashMap, HashSet, VecDeque};

use ipd_estimate::{estimate_timing_flat, place_and_route, PhysicalDesign, PnrConfig};
use ipd_hdl::{FlatNetlist, Rloc};
use ipd_modgen::example_zoo;

fn routed_zoo() -> Vec<(String, PhysicalDesign)> {
    example_zoo()
        .into_iter()
        .map(|(name, circuit)| {
            let phys = place_and_route(&circuit, &PnrConfig::virtex())
                .unwrap_or_else(|e| panic!("{name}: place_and_route failed: {e}"));
            (name, phys)
        })
        .collect()
}

#[test]
fn every_sink_is_reached_exactly_once() {
    for (name, phys) in routed_zoo() {
        for net in &phys.routing.nets {
            assert!(
                !net.sinks.is_empty(),
                "{name}: net {} has no sinks",
                net.name
            );
            let mut seen = HashSet::new();
            for sink in &net.sinks {
                assert!(
                    seen.insert(sink.loc),
                    "{name}: net {} reaches sink {} twice",
                    net.name,
                    sink.loc
                );
            }
        }
    }
}

#[test]
fn routed_trees_are_connected_and_cover_their_sinks() {
    for (name, phys) in routed_zoo() {
        for net in &phys.routing.nets {
            // BFS over the undirected segment list from the source.
            let mut adjacency: HashMap<Rloc, Vec<Rloc>> = HashMap::new();
            for &(a, b) in &net.segments {
                adjacency.entry(a).or_default().push(b);
                adjacency.entry(b).or_default().push(a);
            }
            let mut reached = HashSet::new();
            reached.insert(net.source);
            let mut queue = VecDeque::from([net.source]);
            while let Some(cur) = queue.pop_front() {
                for &next in adjacency.get(&cur).into_iter().flatten() {
                    if reached.insert(next) {
                        queue.push_back(next);
                    }
                }
            }
            for sink in &net.sinks {
                assert!(
                    reached.contains(&sink.loc),
                    "{name}: net {} sink {} disconnected from source {}",
                    net.name,
                    sink.loc,
                    net.source
                );
            }
            // A tree: segment count equals reached cells minus one.
            assert_eq!(
                net.segments.len(),
                reached.len() - 1,
                "{name}: net {} route is not a tree",
                net.name
            );
        }
    }
}

#[test]
fn capacities_hold_at_convergence_or_overflow_is_honest() {
    for (name, phys) in routed_zoo() {
        // Recompute channel occupancy from the published segment lists,
        // independent of the router's internal accounting.
        let mut occupancy: HashMap<(Rloc, Rloc), u32> = HashMap::new();
        for net in &phys.routing.nets {
            for &(a, b) in &net.segments {
                let key = if a < b { (a, b) } else { (b, a) };
                *occupancy.entry(key).or_insert(0) += 1;
            }
        }
        let cap = u32::from(phys.routing.stats.channel_capacity);
        let overused = occupancy.values().filter(|&&o| o > cap).count();
        if phys.routing.stats.converged {
            assert_eq!(
                overused, 0,
                "{name}: claims convergence with {overused} overused segment(s)"
            );
            assert_eq!(phys.routing.stats.overused_segments, 0, "{name}");
        } else {
            assert!(
                phys.routing.stats.overused_segments > 0,
                "{name}: unconverged but reports no overuse"
            );
            assert_eq!(
                phys.routing.stats.overused_segments, overused,
                "{name}: reported overuse disagrees with the segment lists"
            );
        }
    }
}

#[test]
fn routing_is_deterministic_per_seed_across_the_zoo() {
    for ((name, a), (_, b)) in routed_zoo().into_iter().zip(routed_zoo()) {
        assert_eq!(a.routing.stats, b.routing.stats, "{name}: stats differ");
        assert_eq!(
            a.routing.nets.len(),
            b.routing.nets.len(),
            "{name}: net counts differ"
        );
        for (na, nb) in a.routing.nets.iter().zip(&b.routing.nets) {
            assert_eq!(na, nb, "{name}: net {} routed differently", na.name);
        }
    }
}

#[test]
fn routed_delays_dominate_the_placed_heuristic() {
    for (name, phys) in routed_zoo() {
        let flat = FlatNetlist::build(phys.circuit()).expect("flatten");
        let drivers = flat.drivers();
        // Per sink: routed delay ≥ heuristic placed delay, because the
        // routed wire length is at least the Manhattan distance.
        for net in &phys.routing.nets {
            let (dli, _) = drivers[net.net.index()][0];
            let from = flat.leaves()[dli]
                .loc
                .expect("routed nets have placed drivers");
            for sink in &net.sinks {
                let manhattan = (sink.loc.row - from.row).unsigned_abs()
                    + (sink.loc.col - from.col).unsigned_abs();
                assert!(
                    sink.wirelength >= manhattan,
                    "{name}: net {} sink {} wirelength {} below Manhattan {}",
                    net.name,
                    sink.loc,
                    sink.wirelength,
                    manhattan
                );
                let heuristic = phys.model.net_delay_placed(from, sink.loc, net.fanout);
                assert!(
                    sink.delay_ns >= heuristic - 1e-12,
                    "{name}: net {} sink {}: routed {} < heuristic {}",
                    net.name,
                    sink.loc,
                    sink.delay_ns,
                    heuristic
                );
            }
        }
        // And in aggregate: the routed critical path can only be
        // slower than the heuristic on the same placement.
        let heuristic = estimate_timing_flat(&flat, &phys.model).expect("heuristic timing");
        let routed = phys.timing().expect("routed timing");
        assert!(
            routed.critical_path_ns >= heuristic.critical_path_ns - 1e-9,
            "{name}: routed {} < heuristic {}",
            routed.critical_path_ns,
            heuristic.critical_path_ns
        );
    }
}
