//! Algebraic laws of the four-state domain and the `LogicVec`
//! conversions — the numeric foundation every generator test leans on.

use proptest::prelude::*;

use ipd_hdl::{Logic, LogicVec};

fn logic_strategy() -> impl Strategy<Value = Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::X),
        Just(Logic::Z)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn and_or_are_commutative_and_associative(
        a in logic_strategy(), b in logic_strategy(), c in logic_strategy(),
    ) {
        prop_assert_eq!(a & b, b & a);
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!((a & b) & c, a & (b & c));
        prop_assert_eq!((a | b) | c, a | (b | c));
        prop_assert_eq!(a ^ b, b ^ a);
    }

    #[test]
    fn de_morgan_holds_for_driven_values(a in any::<bool>(), b in any::<bool>()) {
        let (a, b) = (Logic::from_bool(a), Logic::from_bool(b));
        prop_assert_eq!(!(a & b), !a | !b);
        prop_assert_eq!(!(a | b), !a & !b);
    }

    #[test]
    fn resolution_is_commutative_with_z_identity(a in logic_strategy(), b in logic_strategy()) {
        prop_assert_eq!(a.resolve(b), b.resolve(a));
        prop_assert_eq!(Logic::Z.resolve(a), a);
    }

    #[test]
    fn u64_round_trip(value in any::<u64>(), width in 1usize..64) {
        let masked = value & ((1u64 << width) - 1);
        let v = LogicVec::from_u64(masked, width);
        prop_assert_eq!(v.to_u64(), Some(masked));
        prop_assert_eq!(v.width(), width);
    }

    #[test]
    fn i64_round_trip(value in any::<i64>(), width in 1usize..63) {
        let span = 1i64 << (width - 1);
        let clamped = ((value % span) + span) % span - if value < 0 { span } else { 0 };
        let wrapped = if clamped >= span { clamped - 2 * span } else { clamped };
        let v = LogicVec::from_i64(wrapped, width);
        prop_assert_eq!(v.to_i64(), Some(wrapped), "width {}", width);
    }

    #[test]
    fn display_parse_round_trip(bits in proptest::collection::vec(logic_strategy(), 0..48)) {
        let v = LogicVec::from_bits(bits);
        let text = v.to_string();
        let back = LogicVec::parse_binary(&text).expect("parse own display");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn concat_slice_inverse(
        lo_bits in proptest::collection::vec(logic_strategy(), 1..16),
        hi_bits in proptest::collection::vec(logic_strategy(), 1..16),
    ) {
        let lo = LogicVec::from_bits(lo_bits.clone());
        let hi = LogicVec::from_bits(hi_bits.clone());
        let cat = lo.concat(&hi);
        prop_assert_eq!(cat.width(), lo.width() + hi.width());
        prop_assert_eq!(cat.slice(lo.width() - 1, 0), lo.clone());
        prop_assert_eq!(cat.slice(cat.width() - 1, lo.width()), hi);
    }

    #[test]
    fn sign_extension_preserves_value(value in -1000i64..1000, extra in 0usize..12) {
        let base = 11usize;
        let v = LogicVec::from_i64(value, base);
        let wrapped = v.to_i64().expect("driven");
        let extended = v.resized(base + extra, true);
        prop_assert_eq!(extended.to_i64(), Some(wrapped));
    }

    #[test]
    fn zero_extension_preserves_unsigned(value in any::<u64>(), extra in 0usize..12) {
        let masked = value & 0xFFFF;
        let v = LogicVec::from_u64(masked, 16);
        prop_assert_eq!(v.resized(16 + extra, false).to_u64(), Some(masked));
    }

    #[test]
    fn undriven_bits_poison_conversions(
        bits in proptest::collection::vec(logic_strategy(), 1..32),
    ) {
        let v = LogicVec::from_bits(bits.clone());
        let has_unknown = bits.iter().any(|b| !b.is_driven());
        prop_assert_eq!(v.to_u64().is_none(), has_unknown);
        prop_assert_eq!(v.is_fully_driven(), !has_unknown);
    }
}
