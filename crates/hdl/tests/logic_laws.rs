//! Algebraic laws of the four-state domain and the `LogicVec`
//! conversions — the numeric foundation every generator test leans on.
//!
//! Randomized with the in-repo deterministic RNG (`ipd-testutil`), so
//! the suite runs with zero registry dependencies.

use ipd_hdl::{Logic, LogicVec};
use ipd_testutil::{check_n, XorShift64};

fn any_logic(rng: &mut XorShift64) -> Logic {
    match rng.below(4) {
        0 => Logic::Zero,
        1 => Logic::One,
        2 => Logic::X,
        _ => Logic::Z,
    }
}

fn any_bits(rng: &mut XorShift64, lo: usize, hi: usize) -> Vec<Logic> {
    let len = lo + rng.index(hi - lo);
    (0..len).map(|_| any_logic(rng)).collect()
}

#[test]
fn and_or_are_commutative_and_associative() {
    check_n("and_or_laws", 256, |rng| {
        let (a, b, c) = (any_logic(rng), any_logic(rng), any_logic(rng));
        assert_eq!(a & b, b & a);
        assert_eq!(a | b, b | a);
        assert_eq!((a & b) & c, a & (b & c));
        assert_eq!((a | b) | c, a | (b | c));
        assert_eq!(a ^ b, b ^ a);
    });
}

#[test]
fn de_morgan_holds_for_driven_values() {
    for a in [Logic::Zero, Logic::One] {
        for b in [Logic::Zero, Logic::One] {
            assert_eq!(!(a & b), !a | !b);
            assert_eq!(!(a | b), !a & !b);
        }
    }
}

#[test]
fn resolution_is_commutative_with_z_identity() {
    check_n("resolution", 256, |rng| {
        let (a, b) = (any_logic(rng), any_logic(rng));
        assert_eq!(a.resolve(b), b.resolve(a));
        assert_eq!(Logic::Z.resolve(a), a);
    });
}

#[test]
fn u64_round_trip() {
    check_n("u64_round_trip", 256, |rng| {
        let width = 1 + rng.index(63);
        let masked = rng.next_u64() & ((1u64 << width) - 1);
        let v = LogicVec::from_u64(masked, width);
        assert_eq!(v.to_u64(), Some(masked));
        assert_eq!(v.width(), width);
    });
}

#[test]
fn i64_round_trip() {
    check_n("i64_round_trip", 256, |rng| {
        let width = 1 + rng.index(62);
        let span = 1i64 << (width - 1);
        let wrapped = rng.range_i64(-span, span - 1);
        let v = LogicVec::from_i64(wrapped, width);
        assert_eq!(v.to_i64(), Some(wrapped), "width {width}");
    });
}

#[test]
fn display_parse_round_trip() {
    check_n("display_parse", 256, |rng| {
        let v = LogicVec::from_bits(any_bits(rng, 0, 48));
        let text = v.to_string();
        let back = LogicVec::parse_binary(&text).expect("parse own display");
        assert_eq!(back, v);
    });
}

#[test]
fn concat_slice_inverse() {
    check_n("concat_slice", 256, |rng| {
        let lo = LogicVec::from_bits(any_bits(rng, 1, 16));
        let hi = LogicVec::from_bits(any_bits(rng, 1, 16));
        let cat = lo.concat(&hi);
        assert_eq!(cat.width(), lo.width() + hi.width());
        assert_eq!(cat.slice(lo.width() - 1, 0), lo);
        assert_eq!(cat.slice(cat.width() - 1, lo.width()), hi);
    });
}

#[test]
fn sign_extension_preserves_value() {
    check_n("sign_extension", 256, |rng| {
        let value = rng.range_i64(-1000, 1000);
        let extra = rng.index(12);
        let base = 11usize;
        let v = LogicVec::from_i64(value, base);
        let wrapped = v.to_i64().expect("driven");
        let extended = v.resized(base + extra, true);
        assert_eq!(extended.to_i64(), Some(wrapped));
    });
}

#[test]
fn zero_extension_preserves_unsigned() {
    check_n("zero_extension", 256, |rng| {
        let masked = rng.next_u64() & 0xFFFF;
        let extra = rng.index(12);
        let v = LogicVec::from_u64(masked, 16);
        assert_eq!(v.resized(16 + extra, false).to_u64(), Some(masked));
    });
}

#[test]
fn undriven_bits_poison_conversions() {
    check_n("poison", 256, |rng| {
        let bits = any_bits(rng, 1, 32);
        let v = LogicVec::from_bits(bits.clone());
        let has_unknown = bits.iter().any(|b| !b.is_driven());
        assert_eq!(v.to_u64().is_none(), has_unknown);
        assert_eq!(v.is_fully_driven(), !has_unknown);
    });
}
