//! Circuit statistics: primitive histograms and hierarchy summaries.
//!
//! The paper's applets display a characterization of the generated IP —
//! these statistics are the raw material for that display and for the
//! estimator.

use std::collections::BTreeMap;
use std::fmt;

use crate::cell::CellKind;
use crate::circuit::Circuit;
use crate::CellId;

/// Aggregate statistics of a circuit or subtree.
///
/// # Examples
///
/// ```
/// use ipd_hdl::{Circuit, CircuitStats};
///
/// let circuit = Circuit::new("empty");
/// let stats = CircuitStats::of(&circuit);
/// assert_eq!(stats.primitive_total(), 0);
/// assert_eq!(stats.cell_count, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Count of every primitive, keyed by `library:name`.
    pub primitives: BTreeMap<String, usize>,
    /// Total cells, including composite hierarchy levels.
    pub cell_count: usize,
    /// Composite (hierarchy) cells.
    pub composite_count: usize,
    /// Black-box cells.
    pub black_box_count: usize,
    /// Wires in all scopes.
    pub wire_count: usize,
    /// Maximum hierarchy depth (root = 1).
    pub depth: usize,
}

impl CircuitStats {
    /// Gathers statistics for the whole circuit.
    #[must_use]
    pub fn of(circuit: &Circuit) -> Self {
        Self::of_subtree(circuit, circuit.root())
    }

    /// Gathers statistics for the subtree rooted at `cell`.
    #[must_use]
    pub fn of_subtree(circuit: &Circuit, cell: CellId) -> Self {
        let mut stats = CircuitStats {
            wire_count: circuit.wire_count(),
            depth: circuit.depth(),
            ..CircuitStats::default()
        };
        for id in circuit.descendants(cell) {
            stats.cell_count += 1;
            match circuit.cell(id).kind() {
                CellKind::Primitive(p) => {
                    *stats
                        .primitives
                        .entry(format!("{}:{}", p.library, p.name))
                        .or_insert(0) += 1;
                }
                CellKind::Composite => stats.composite_count += 1,
                CellKind::BlackBox => stats.black_box_count += 1,
            }
        }
        stats
    }

    /// Total number of primitive instances.
    #[must_use]
    pub fn primitive_total(&self) -> usize {
        self.primitives.values().sum()
    }

    /// Count of one primitive kind (`library:name`).
    #[must_use]
    pub fn count_of(&self, qualified_name: &str) -> usize {
        self.primitives.get(qualified_name).copied().unwrap_or(0)
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cells: {} ({} composite, {} primitive, {} black box), wires: {}, depth: {}",
            self.cell_count,
            self.composite_count,
            self.primitive_total(),
            self.black_box_count,
            self.wire_count,
            self.depth
        )?;
        for (name, count) in &self.primitives {
            writeln!(f, "  {name:<24} {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{PortSpec, Primitive};

    #[test]
    fn counts_by_kind() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let ports = vec![PortSpec::input("i", 1), PortSpec::output("o", 1)];
        ctx.leaf(
            Primitive::new("virtex", "buf"),
            ports.clone(),
            "b0",
            &[("i", i.into())],
        )
        .unwrap();
        ctx.leaf(
            Primitive::new("virtex", "buf"),
            ports.clone(),
            "b1",
            &[("i", i.into())],
        )
        .unwrap();
        ctx.leaf(
            Primitive::new("virtex", "inv"),
            ports.clone(),
            "n0",
            &[("i", i.into())],
        )
        .unwrap();
        ctx.black_box(
            "secret",
            vec![PortSpec::input("i", 1)],
            "bb",
            &[("i", i.into())],
        )
        .unwrap();
        let stats = CircuitStats::of(&c);
        assert_eq!(stats.count_of("virtex:buf"), 2);
        assert_eq!(stats.count_of("virtex:inv"), 1);
        assert_eq!(stats.count_of("virtex:nope"), 0);
        assert_eq!(stats.primitive_total(), 3);
        assert_eq!(stats.black_box_count, 1);
        assert_eq!(stats.composite_count, 1); // the root
        assert_eq!(stats.cell_count, 5);
        let text = stats.to_string();
        assert!(text.contains("virtex:buf"));
    }
}
