//! Arena identifiers for cells, wires and flattened nets.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $name {
            /// Builds an id from a raw arena index.
            ///
            /// Intended for internal and test use; ids are normally
            /// obtained from the structure that owns the arena.
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("arena index overflow"))
            }

            /// The raw arena index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifier of a [`Cell`](crate::Cell) within a [`Circuit`](crate::Circuit).
    CellId,
    "c"
);
define_id!(
    /// Identifier of a [`Wire`](crate::Wire) within a [`Circuit`](crate::Circuit).
    WireId,
    "w"
);
define_id!(
    /// Identifier of a single-bit net in a [`FlatNetlist`](crate::FlatNetlist).
    NetId,
    "n"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_format() {
        let c = CellId::from_index(3);
        assert_eq!(c.index(), 3);
        assert_eq!(format!("{c}"), "c3");
        assert_eq!(format!("{c:?}"), "c3");
        let n = NetId::from_index(0);
        assert_eq!(n.to_string(), "n0");
        let w = WireId::from_index(9);
        assert_eq!(w.to_string(), "w9");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::from_index(1) < CellId::from_index(2));
    }
}
