//! Hierarchy elaboration into a flat, single-bit netlist.
//!
//! The simulator, the estimator and the flat netlist writers all consume
//! a [`FlatNetlist`]: every wire bit reachable through port bindings is
//! merged into one net (union-find), every primitive's connections are
//! resolved to net ids, and relative placements are accumulated into
//! absolute locations.

use std::collections::HashMap;

use crate::cell::{CellKind, PortDir, Primitive, Rloc};
use crate::circuit::Circuit;
use crate::error::Result;
use crate::{CellId, NetId};

/// One single-bit net of the flattened design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatNet {
    /// Representative hierarchical name (shallowest wire bit on the net).
    pub name: String,
}

/// What a flattened leaf is.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatKind {
    /// A technology-library primitive.
    Primitive(Primitive),
    /// A protected black box; only its interface is visible.
    BlackBox(String),
}

impl FlatKind {
    /// The primitive, if this leaf is one.
    #[must_use]
    pub fn as_primitive(&self) -> Option<&Primitive> {
        match self {
            FlatKind::Primitive(p) => Some(p),
            FlatKind::BlackBox(_) => None,
        }
    }
}

/// One resolved port connection of a flattened leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatConn {
    /// Port name on the leaf.
    pub port: String,
    /// Port direction.
    pub dir: PortDir,
    /// Net per bit, LSB first. Dangling output bits get fresh nets.
    pub nets: Vec<NetId>,
}

/// A leaf (primitive or black box) of the flattened design.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatLeaf {
    /// Primitive or black-box identity.
    pub kind: FlatKind,
    /// Full hierarchical instance path.
    pub path: String,
    /// Resolved connections in port-declaration order.
    pub conns: Vec<FlatConn>,
    /// Absolute placement accumulated from `RLOC`s, if placed.
    pub loc: Option<Rloc>,
    /// The originating cell in the hierarchical circuit.
    pub cell: CellId,
}

impl FlatLeaf {
    /// Looks up a connection by port name.
    #[must_use]
    pub fn conn(&self, port: &str) -> Option<&FlatConn> {
        self.conns.iter().find(|c| c.port == port)
    }
}

/// A primary port of the flattened design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatPort {
    /// Port name at the top level.
    pub name: String,
    /// Direction.
    pub dir: PortDir,
    /// Net per bit, LSB first.
    pub nets: Vec<NetId>,
}

/// The flattened design: bit-level nets, leaves and primary ports.
///
/// # Examples
///
/// ```
/// use ipd_hdl::{Circuit, FlatNetlist, PortSpec, Primitive};
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let mut circuit = Circuit::new("top");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.add_port(PortSpec::input("a", 1))?;
/// let y = ctx.add_port(PortSpec::output("y", 1))?;
/// ctx.leaf(
///     Primitive::new("virtex", "inv"),
///     vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
///     "n0",
///     &[("i", a.into()), ("o", y.into())],
/// )?;
/// let flat = FlatNetlist::build(&circuit)?;
/// assert_eq!(flat.leaves().len(), 1);
/// assert_eq!(flat.ports().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlatNetlist {
    nets: Vec<FlatNet>,
    leaves: Vec<FlatLeaf>,
    ports: Vec<FlatPort>,
    design_name: String,
}

impl FlatNetlist {
    /// Flattens a circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if any binding refers to stale identifiers
    /// (which cannot happen for circuits built through [`CellCtx`]).
    ///
    /// [`CellCtx`]: crate::CellCtx
    pub fn build(circuit: &Circuit) -> Result<Self> {
        Flattener::new(circuit).run()
    }

    /// Design name (root cell name).
    #[must_use]
    pub fn design_name(&self) -> &str {
        &self.design_name
    }

    /// All single-bit nets.
    #[must_use]
    pub fn nets(&self) -> &[FlatNet] {
        &self.nets
    }

    /// All leaves (primitives and black boxes).
    #[must_use]
    pub fn leaves(&self) -> &[FlatLeaf] {
        &self.leaves
    }

    /// Mutable access to the leaves — for fault-injection and
    /// mutation-testing harnesses that perturb a flattened design in
    /// place (flip a LUT init bit, swap two input connections).
    /// Structural invariants (net ids, port bindings) are the caller's
    /// responsibility.
    pub fn leaves_mut(&mut self) -> &mut [FlatLeaf] {
        &mut self.leaves
    }

    /// Primary ports of the design.
    #[must_use]
    pub fn ports(&self) -> &[FlatPort] {
        &self.ports
    }

    /// Looks up a primary port by name.
    #[must_use]
    pub fn port(&self, name: &str) -> Option<&FlatPort> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Number of nets.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// For every net, the list of `(leaf index, port index)` pairs that
    /// *drive* it (output or inout connections).
    #[must_use]
    pub fn drivers(&self) -> Vec<Vec<(usize, usize)>> {
        let mut out = vec![Vec::new(); self.nets.len()];
        for (li, leaf) in self.leaves.iter().enumerate() {
            for (pi, conn) in leaf.conns.iter().enumerate() {
                if conn.dir != PortDir::Input {
                    for &net in &conn.nets {
                        out[net.index()].push((li, pi));
                    }
                }
            }
        }
        out
    }

    /// For every net, the list of `(leaf index, port index)` pairs that
    /// *read* it.
    #[must_use]
    pub fn readers(&self) -> Vec<Vec<(usize, usize)>> {
        let mut out = vec![Vec::new(); self.nets.len()];
        for (li, leaf) in self.leaves.iter().enumerate() {
            for (pi, conn) in leaf.conns.iter().enumerate() {
                if conn.dir != PortDir::Output {
                    for &net in &conn.nets {
                        out[net.index()].push((li, pi));
                    }
                }
            }
        }
        out
    }
}

/// Union-find over circuit wire bits.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[rb as usize] = ra;
        }
    }
}

struct Flattener<'a> {
    circuit: &'a Circuit,
    wire_base: Vec<u32>,
    uf: UnionFind,
}

impl<'a> Flattener<'a> {
    fn new(circuit: &'a Circuit) -> Self {
        let mut wire_base = Vec::with_capacity(circuit.wire_count());
        let mut total = 0u32;
        for wid in circuit.wire_ids() {
            wire_base.push(total);
            total += circuit.wire(wid).width();
        }
        Flattener {
            circuit,
            wire_base,
            uf: UnionFind::new(total as usize),
        }
    }

    fn bit_key(&self, wire: crate::WireId, bit: u32) -> u32 {
        self.wire_base[wire.index()] + bit
    }

    fn run(mut self) -> Result<FlatNetlist> {
        let circuit = self.circuit;
        // 1. Union inner port wires with outer bindings for every
        //    composite cell below the root.
        for id in circuit.cell_ids() {
            let cell = circuit.cell(id);
            if !cell.kind().is_composite() || cell.parent().is_none() {
                continue;
            }
            for port in cell.ports() {
                let (Some(inner), Some(outer)) = (port.inner, port.outer.as_ref()) else {
                    continue;
                };
                for (bit, (ow, ob)) in outer.bits().enumerate() {
                    let inner_key = self.bit_key(inner, bit as u32);
                    let outer_key = self.bit_key(ow, ob);
                    self.uf.union(inner_key, outer_key);
                }
            }
        }

        // 2. Assign net ids to union-find roots, choosing the shallowest
        //    wire-bit name as the representative.
        let mut net_of_root: HashMap<u32, NetId> = HashMap::new();
        let mut nets: Vec<FlatNet> = Vec::new();
        let mut best_name: Vec<(usize, String)> = Vec::new();
        for wid in circuit.wire_ids() {
            let wire = circuit.wire(wid);
            let path = circuit.wire_path(wid);
            let depth = path.matches('/').count();
            for bit in 0..wire.width() {
                let key = self.bit_key(wid, bit);
                let root = self.uf.find(key);
                let name = if wire.width() == 1 {
                    path.clone()
                } else {
                    format!("{path}[{bit}]")
                };
                match net_of_root.get(&root) {
                    None => {
                        let id = NetId::from_index(nets.len());
                        nets.push(FlatNet { name: name.clone() });
                        best_name.push((depth, name));
                        net_of_root.insert(root, id);
                    }
                    Some(&id) => {
                        let cur = &mut best_name[id.index()];
                        if (depth, &name) < (cur.0, &cur.1) {
                            *cur = (depth, name.clone());
                            nets[id.index()].name = name;
                        }
                    }
                }
            }
        }

        // 3. Resolve leaves.
        let mut leaves = Vec::new();
        for id in circuit.cell_ids() {
            let cell = circuit.cell(id);
            let kind = match cell.kind() {
                CellKind::Primitive(p) => FlatKind::Primitive(p.clone()),
                CellKind::BlackBox => FlatKind::BlackBox(cell.type_name().to_owned()),
                CellKind::Composite => continue,
            };
            let mut conns = Vec::with_capacity(cell.ports().len());
            for port in cell.ports() {
                let mut bits = Vec::with_capacity(port.spec.width as usize);
                match port.outer.as_ref() {
                    Some(sig) => {
                        for (w, b) in sig.bits() {
                            let root = self.uf.find(self.bit_key(w, b));
                            bits.push(net_of_root[&root]);
                        }
                    }
                    None => {
                        // Dangling output: fresh unconnected nets.
                        for bit in 0..port.spec.width {
                            let net = NetId::from_index(nets.len());
                            nets.push(FlatNet {
                                name: format!(
                                    "{}/{}_open[{bit}]",
                                    circuit.cell_path(id),
                                    port.spec.name
                                ),
                            });
                            bits.push(net);
                        }
                    }
                }
                conns.push(FlatConn {
                    port: port.spec.name.clone(),
                    dir: port.spec.dir,
                    nets: bits,
                });
            }
            leaves.push(FlatLeaf {
                kind,
                path: circuit.cell_path(id),
                conns,
                loc: circuit.absolute_rloc(id),
                cell: id,
            });
        }

        // 4. Primary ports from the root cell's inner wires.
        let mut ports = Vec::new();
        let root = circuit.cell(circuit.root());
        for port in root.ports() {
            let Some(inner) = port.inner else { continue };
            let mut bits = Vec::with_capacity(port.spec.width as usize);
            for bit in 0..port.spec.width {
                let rootkey = self.uf.find(self.bit_key(inner, bit));
                bits.push(net_of_root[&rootkey]);
            }
            ports.push(FlatPort {
                name: port.spec.name.clone(),
                dir: port.spec.dir,
                nets: bits,
            });
        }

        Ok(FlatNetlist {
            nets,
            leaves,
            ports,
            design_name: circuit.name().to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::PortSpec;
    use crate::wire::Signal;

    fn buf_ports() -> Vec<PortSpec> {
        vec![PortSpec::input("i", 1), PortSpec::output("o", 1)]
    }

    fn buf() -> Primitive {
        Primitive::new("virtex", "buf")
    }

    /// top.a -> u0(i) -> inner buf -> u0(o) -> top.y
    fn two_level_circuit() -> Circuit {
        use crate::circuit::FnGenerator;
        let inner = FnGenerator::new(
            "pass",
            vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
            |ctx| {
                let i = ctx.port("i")?;
                let o = ctx.port("o")?;
                ctx.leaf(
                    buf(),
                    buf_ports(),
                    "b0",
                    &[("i", i.into()), ("o", o.into())],
                )?;
                Ok(())
            },
        );
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.instantiate(&inner, "u0", &[("i", a.into()), ("o", y.into())])
            .unwrap();
        c
    }

    #[test]
    fn port_bindings_merge_nets() {
        let c = two_level_circuit();
        let flat = FlatNetlist::build(&c).expect("flatten");
        assert_eq!(flat.leaves().len(), 1);
        let leaf = &flat.leaves()[0];
        // The buf's input net must be the same net as the primary input.
        let a_net = flat.port("a").unwrap().nets[0];
        let y_net = flat.port("y").unwrap().nets[0];
        assert_eq!(leaf.conn("i").unwrap().nets[0], a_net);
        assert_eq!(leaf.conn("o").unwrap().nets[0], y_net);
        assert_ne!(a_net, y_net);
    }

    #[test]
    fn net_names_prefer_shallowest() {
        let c = two_level_circuit();
        let flat = FlatNetlist::build(&c).expect("flatten");
        let a_net = flat.port("a").unwrap().nets[0];
        assert_eq!(flat.nets()[a_net.index()].name, "top/a");
    }

    #[test]
    fn dangling_outputs_get_fresh_nets() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        ctx.leaf(buf(), buf_ports(), "b0", &[("i", i.into())])
            .unwrap();
        let flat = FlatNetlist::build(&c).expect("flatten");
        let leaf = &flat.leaves()[0];
        let o_net = leaf.conn("o").unwrap().nets[0];
        assert!(flat.nets()[o_net.index()].name.contains("_open"));
        // Nobody drives the input wire; one net for it, one dangling.
        assert_eq!(flat.net_count(), 2);
    }

    #[test]
    fn drivers_and_readers() {
        let c = two_level_circuit();
        let flat = FlatNetlist::build(&c).expect("flatten");
        let a_net = flat.port("a").unwrap().nets[0];
        let y_net = flat.port("y").unwrap().nets[0];
        let drivers = flat.drivers();
        let readers = flat.readers();
        assert!(drivers[a_net.index()].is_empty());
        assert_eq!(drivers[y_net.index()].len(), 1);
        assert_eq!(readers[a_net.index()].len(), 1);
        assert!(readers[y_net.index()].is_empty());
    }

    #[test]
    fn multibit_bus_expands_per_bit() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 4)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 4)).unwrap();
        for b in 0..4 {
            ctx.leaf(
                buf(),
                buf_ports(),
                &format!("b{b}"),
                &[("i", Signal::bit_of(a, b)), ("o", Signal::bit_of(y, b))],
            )
            .unwrap();
        }
        let flat = FlatNetlist::build(&c).expect("flatten");
        assert_eq!(flat.leaves().len(), 4);
        assert_eq!(flat.port("a").unwrap().nets.len(), 4);
        // 4 input bits + 4 output bits.
        assert_eq!(flat.net_count(), 8);
        assert_eq!(
            flat.nets()[flat.port("a").unwrap().nets[2].index()].name,
            "top/a[2]"
        );
    }

    #[test]
    fn black_boxes_survive_flattening() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let o = ctx.wire("o", 1);
        ctx.black_box(
            "secret_ip",
            vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
            "bb0",
            &[("i", i.into()), ("o", o.into())],
        )
        .unwrap();
        let flat = FlatNetlist::build(&c).expect("flatten");
        assert_eq!(flat.leaves().len(), 1);
        assert!(matches!(flat.leaves()[0].kind, FlatKind::BlackBox(ref n) if n == "secret_ip"));
    }

    #[test]
    fn placement_is_absolute_in_flat_view() {
        use crate::circuit::FnGenerator;
        let inner = FnGenerator::new("placed", vec![PortSpec::input("i", 1)], |ctx| {
            let i = ctx.port("i")?;
            let leaf = ctx.leaf(buf(), buf_ports(), "b0", &[("i", i.into())])?;
            ctx.set_rloc(leaf, Rloc::new(1, 0));
            Ok(())
        });
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let u = ctx.instantiate(&inner, "u0", &[("i", i.into())]).unwrap();
        ctx.set_rloc(u, Rloc::new(4, 2));
        let flat = FlatNetlist::build(&c).expect("flatten");
        let placed: Vec<_> = flat.leaves().iter().filter_map(|l| l.loc).collect();
        assert_eq!(placed, vec![Rloc::new(5, 2)]);
    }
}
