//! The circuit arena, construction contexts and the [`Generator`] trait.

use std::collections::HashSet;

use crate::cell::{Cell, CellKind, Port, PortDir, PortSpec, Primitive, PropertyValue, Rloc};
use crate::error::{HdlError, Result};
use crate::wire::{Signal, Slice, Wire};
use crate::{CellId, WireId};

/// A hierarchical structural circuit.
///
/// A `Circuit` owns every [`Cell`] and [`Wire`] in an arena and exposes a
/// single root cell. Construction follows JHDL's model: executing a
/// [`Generator`] *is* elaboration — the program instances primitives and
/// child generators into the data structure, and every design aid
/// (simulator, netlister, viewer, estimator) then operates on that
/// structure through an open API.
///
/// # Examples
///
/// Building a full adder out of gates, as in the paper's JHDL listing:
///
/// ```
/// use ipd_hdl::{Circuit, FnGenerator, PortSpec, Primitive};
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let full_adder = FnGenerator::new(
///     "full_adder",
///     vec![
///         PortSpec::input("a", 1), PortSpec::input("b", 1), PortSpec::input("ci", 1),
///         PortSpec::output("s", 1), PortSpec::output("co", 1),
///     ],
///     |ctx| {
///         let (a, b, ci) = (ctx.port("a")?, ctx.port("b")?, ctx.port("ci")?);
///         let (s, co) = (ctx.port("s")?, ctx.port("co")?);
///         let t1 = ctx.wire("t1", 1);
///         let t2 = ctx.wire("t2", 1);
///         let t3 = ctx.wire("t3", 1);
///         let and2 = |i: u32| Primitive::new("virtex", "and2");
///         let ports2 = || vec![
///             PortSpec::input("i0", 1), PortSpec::input("i1", 1), PortSpec::output("o", 1),
///         ];
///         ctx.leaf(and2(0), ports2(), "and_ab", &[("i0", a.into()), ("i1", b.into()), ("o", t1.into())])?;
///         ctx.leaf(and2(1), ports2(), "and_aci", &[("i0", a.into()), ("i1", ci.into()), ("o", t2.into())])?;
///         ctx.leaf(and2(2), ports2(), "and_bci", &[("i0", b.into()), ("i1", ci.into()), ("o", t3.into())])?;
///         let ports3 = |n: &str| vec![
///             PortSpec::input("i0", 1), PortSpec::input("i1", 1), PortSpec::input("i2", 1),
///             PortSpec::output("o", 1),
///         ];
///         ctx.leaf(Primitive::new("virtex", "or3"), ports3("or3"), "carry",
///             &[("i0", t1.into()), ("i1", t2.into()), ("i2", t3.into()), ("o", co.into())])?;
///         ctx.leaf(Primitive::new("virtex", "xor3"), ports3("xor3"), "sum",
///             &[("i0", a.into()), ("i1", b.into()), ("i2", ci.into()), ("o", s.into())])?;
///         Ok(())
///     },
/// );
/// let circuit = Circuit::from_generator(&full_adder)?;
/// assert_eq!(circuit.primitive_count(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    cells: Vec<Cell>,
    wires: Vec<Wire>,
    used_names: Vec<HashSet<String>>,
    root: CellId,
}

impl Circuit {
    /// Creates a circuit with an empty composite root cell.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let root_cell = Cell {
            name: name.clone(),
            type_name: name.clone(),
            parent: None,
            children: Vec::new(),
            kind: CellKind::Composite,
            ports: Vec::new(),
            properties: Default::default(),
            rloc: None,
        };
        Circuit {
            name,
            cells: vec![root_cell],
            wires: Vec::new(),
            used_names: vec![HashSet::new()],
            root: CellId::from_index(0),
        }
    }

    /// Elaborates `generator` as the root of a new circuit.
    ///
    /// The generator's ports become the circuit's primary inputs and
    /// outputs.
    ///
    /// # Errors
    ///
    /// Propagates any construction error raised by the generator.
    pub fn from_generator(generator: &dyn Generator) -> Result<Self> {
        let mut circuit = Circuit::new(generator.type_name());
        let root = circuit.root;
        for spec in generator.ports() {
            circuit.add_port(root, spec)?;
        }
        let mut ctx = CellCtx {
            circuit: &mut circuit,
            cell: root,
        };
        generator.build(&mut ctx)?;
        Ok(circuit)
    }

    /// The circuit (and root cell) name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root cell id.
    #[must_use]
    pub fn root(&self) -> CellId {
        self.root
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Looks up a wire.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn wire(&self, id: WireId) -> &Wire {
        &self.wires[id.index()]
    }

    /// Number of cells (including the root).
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of wires.
    #[must_use]
    pub fn wire_count(&self) -> usize {
        self.wires.len()
    }

    /// Iterates over all cell ids in creation order.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(CellId::from_index)
    }

    /// Iterates over all wire ids in creation order.
    pub fn wire_ids(&self) -> impl Iterator<Item = WireId> + '_ {
        (0..self.wires.len()).map(WireId::from_index)
    }

    /// Pre-order traversal of the hierarchy from `from`.
    #[must_use]
    pub fn descendants(&self, from: CellId) -> Vec<CellId> {
        let mut out = Vec::new();
        let mut stack = vec![from];
        while let Some(id) = stack.pop() {
            out.push(id);
            let cell = self.cell(id);
            for &child in cell.children.iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Number of primitive (leaf) cells in the whole circuit.
    #[must_use]
    pub fn primitive_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_primitive()).count()
    }

    /// Maximum hierarchy depth (root = 1).
    #[must_use]
    pub fn depth(&self) -> usize {
        fn walk(c: &Circuit, id: CellId) -> usize {
            1 + c
                .cell(id)
                .children
                .iter()
                .map(|&ch| walk(c, ch))
                .max()
                .unwrap_or(0)
        }
        walk(self, self.root)
    }

    /// The `/`-separated hierarchical path of a cell, rooted at the
    /// circuit name.
    #[must_use]
    pub fn cell_path(&self, id: CellId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            parts.push(self.cell(c).name.clone());
            cur = self.cell(c).parent;
        }
        parts.reverse();
        parts.join("/")
    }

    /// The hierarchical path of a wire (`scope-path/wire-name`).
    #[must_use]
    pub fn wire_path(&self, id: WireId) -> String {
        let w = self.wire(id);
        format!("{}/{}", self.cell_path(w.scope), w.name)
    }

    /// A construction context for the root cell.
    #[must_use]
    pub fn root_ctx(&mut self) -> CellCtx<'_> {
        CellCtx {
            cell: self.root,
            circuit: self,
        }
    }

    /// A construction context for an arbitrary composite cell.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::StaleId`] when the cell is not composite.
    pub fn ctx_for(&mut self, cell: CellId) -> Result<CellCtx<'_>> {
        if !self.cell(cell).kind.is_composite() {
            return Err(HdlError::StaleId {
                kind: "composite cell",
            });
        }
        Ok(CellCtx {
            cell,
            circuit: self,
        })
    }

    /// Removes every relative-placement attribute, leaving the
    /// netlist purely logical — the "let the vendor tools place it"
    /// baseline used in placement ablation studies.
    pub fn strip_placement(&mut self) {
        for cell in &mut self.cells {
            cell.rloc = None;
        }
    }

    /// The absolute placement of a cell: the sum of `RLOC`s along its
    /// path, or `None` if the cell itself carries no placement.
    #[must_use]
    pub fn absolute_rloc(&self, id: CellId) -> Option<Rloc> {
        self.cell(id).rloc?;
        let mut acc = Rloc::default();
        let mut cur = Some(id);
        while let Some(c) = cur {
            if let Some(r) = self.cell(c).rloc {
                acc = acc.offset(r);
            }
            cur = self.cell(c).parent;
        }
        Some(acc)
    }

    /// The placement offset contributed by a cell's ancestors alone:
    /// the sum of `RLOC`s strictly above the cell. A placer that wants
    /// a leaf at absolute location `p` while its parents keep their
    /// placement must set the leaf's `RLOC` to `p` minus this offset.
    #[must_use]
    pub fn ancestor_rloc(&self, id: CellId) -> Rloc {
        let mut acc = Rloc::default();
        let mut cur = self.cell(id).parent;
        while let Some(c) = cur {
            if let Some(r) = self.cell(c).rloc {
                acc = acc.offset(r);
            }
            cur = self.cell(c).parent;
        }
        acc
    }

    fn fresh_name(&mut self, scope: CellId, base: &str) -> String {
        let used = &mut self.used_names[scope.index()];
        if used.insert(base.to_owned()) {
            return base.to_owned();
        }
        let mut n = 2usize;
        loop {
            let candidate = format!("{base}_{n}");
            if used.insert(candidate.clone()) {
                return candidate;
            }
            n += 1;
        }
    }

    fn add_port(&mut self, cell: CellId, spec: PortSpec) -> Result<WireId> {
        if spec.width == 0 {
            return Err(HdlError::InvalidParameter {
                generator: self.cell(cell).type_name.clone(),
                reason: format!("port {} has zero width", spec.name),
            });
        }
        if self.cell(cell).port(&spec.name).is_some() {
            return Err(HdlError::DuplicateName {
                name: spec.name,
                kind: "port",
            });
        }
        let name = self.fresh_name(cell, &spec.name);
        let wire = WireId::from_index(self.wires.len());
        self.wires.push(Wire {
            name,
            width: spec.width,
            scope: cell,
        });
        self.cells[cell.index()].ports.push(Port {
            spec,
            outer: None,
            inner: Some(wire),
        });
        Ok(wire)
    }

    /// Expands the whole-wire sentinel and validates a signal against a
    /// scope and an expected width.
    pub(crate) fn resolve_signal(
        &self,
        scope: CellId,
        sig: &Signal,
        port: &str,
        expected: u32,
    ) -> Result<Signal> {
        let mut segments = Vec::with_capacity(sig.segments().len());
        for seg in sig.segments() {
            if seg.wire.index() >= self.wires.len() {
                return Err(HdlError::StaleId { kind: "wire" });
            }
            let wire = self.wire(seg.wire);
            if wire.scope != scope {
                return Err(HdlError::WireOutOfScope {
                    wire: wire.name.clone(),
                    scope: self.cell(scope).name.clone(),
                });
            }
            let hi = if seg.hi == u32::MAX {
                wire.width - 1
            } else {
                seg.hi
            };
            if hi < seg.lo || hi >= wire.width {
                return Err(HdlError::SliceOutOfRange {
                    wire: wire.name.clone(),
                    width: wire.width,
                    hi,
                    lo: seg.lo,
                });
            }
            segments.push(Slice {
                wire: seg.wire,
                hi,
                lo: seg.lo,
            });
        }
        let resolved = Signal::concat(segments.into_iter().map(Signal::from));
        if resolved.width() != expected {
            return Err(HdlError::WidthMismatch {
                port: port.to_owned(),
                expected,
                found: resolved.width(),
            });
        }
        Ok(resolved)
    }

    fn new_cell(
        &mut self,
        parent: CellId,
        name: &str,
        type_name: String,
        kind: CellKind,
    ) -> CellId {
        let unique = self.fresh_name(parent, name);
        let id = CellId::from_index(self.cells.len());
        self.cells.push(Cell {
            name: unique,
            type_name,
            parent: Some(parent),
            children: Vec::new(),
            kind,
            ports: Vec::new(),
            properties: Default::default(),
            rloc: None,
        });
        self.used_names.push(HashSet::new());
        self.cells[parent.index()].children.push(id);
        id
    }

    fn bind_ports(
        &mut self,
        parent: CellId,
        child: CellId,
        specs: Vec<PortSpec>,
        conns: &[(&str, Signal)],
        make_inner: bool,
    ) -> Result<()> {
        let type_name = self.cell(child).type_name.clone();
        for (name, _) in conns {
            if !specs.iter().any(|s| &s.name == name) {
                return Err(HdlError::UnknownPort {
                    cell: type_name.clone(),
                    port: (*name).to_owned(),
                });
            }
        }
        for spec in specs {
            let conn = conns.iter().find(|(n, _)| *n == spec.name);
            let outer = match conn {
                Some((_, sig)) => Some(self.resolve_signal(parent, sig, &spec.name, spec.width)?),
                None if spec.dir == PortDir::Input => {
                    return Err(HdlError::UnboundInput {
                        cell: self.cell(child).name.clone(),
                        port: spec.name,
                    });
                }
                None => None,
            };
            let inner = if make_inner {
                let name = self.fresh_name(child, &spec.name);
                let wire = WireId::from_index(self.wires.len());
                self.wires.push(Wire {
                    name,
                    width: spec.width,
                    scope: child,
                });
                Some(wire)
            } else {
                None
            };
            self.cells[child.index()]
                .ports
                .push(Port { spec, outer, inner });
        }
        Ok(())
    }
}

/// A construction context: "the current hierarchy scope".
///
/// `CellCtx` plays the role of JHDL's `this` parent argument — new wires
/// and instances are created inside the context's cell. Obtain one from
/// [`Circuit::root_ctx`] or receive one in [`Generator::build`].
#[derive(Debug)]
pub struct CellCtx<'a> {
    circuit: &'a mut Circuit,
    cell: CellId,
}

impl<'a> CellCtx<'a> {
    /// The cell this context builds into.
    #[must_use]
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// Read access to the whole circuit under construction.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Creates a wire of `width` bits in this scope.
    ///
    /// The name is uniquified with a numeric suffix on collision, as in
    /// JHDL.
    pub fn wire(&mut self, name: &str, width: u32) -> WireId {
        assert!(width > 0, "wires must be at least one bit wide");
        let unique = self.circuit.fresh_name(self.cell, name);
        let id = WireId::from_index(self.circuit.wires.len());
        self.circuit.wires.push(Wire {
            name: unique,
            width,
            scope: self.cell,
        });
        id
    }

    /// Adds a port to this cell and returns its inner wire.
    ///
    /// Useful when assembling a top level by hand instead of through a
    /// [`Generator`].
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::DuplicateName`] if the port exists, or
    /// [`HdlError::InvalidParameter`] for zero-width ports.
    pub fn add_port(&mut self, spec: PortSpec) -> Result<WireId> {
        self.circuit.add_port(self.cell, spec)
    }

    /// The inner wire representing the named port of this cell.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::UnknownPort`] when no such port exists.
    pub fn port(&self, name: &str) -> Result<WireId> {
        let cell = self.circuit.cell(self.cell);
        cell.port(name)
            .and_then(|p| p.inner)
            .ok_or_else(|| HdlError::UnknownPort {
                cell: cell.type_name.clone(),
                port: name.to_owned(),
            })
    }

    /// Instances a child generator, binding its ports to signals of this
    /// scope, then runs its `build`. Returns the new cell.
    ///
    /// # Errors
    ///
    /// Fails when a connection names an unknown port, widths mismatch,
    /// an input is unbound, a bound wire is out of scope, or the child
    /// generator itself fails.
    pub fn instantiate(
        &mut self,
        generator: &dyn Generator,
        name: &str,
        conns: &[(&str, Signal)],
    ) -> Result<CellId> {
        let child =
            self.circuit
                .new_cell(self.cell, name, generator.type_name(), CellKind::Composite);
        self.circuit
            .bind_ports(self.cell, child, generator.ports(), conns, true)?;
        let mut ctx = CellCtx {
            circuit: self.circuit,
            cell: child,
        };
        generator.build(&mut ctx)?;
        Ok(child)
    }

    /// Instances a technology primitive (leaf cell).
    ///
    /// The caller supplies the primitive's port interface; technology
    /// libraries wrap this in typed helpers.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CellCtx::instantiate`], minus child build.
    pub fn leaf(
        &mut self,
        primitive: Primitive,
        ports: Vec<PortSpec>,
        name: &str,
        conns: &[(&str, Signal)],
    ) -> Result<CellId> {
        let type_name = primitive.name.clone();
        let child =
            self.circuit
                .new_cell(self.cell, name, type_name, CellKind::Primitive(primitive));
        self.circuit
            .bind_ports(self.cell, child, ports, conns, false)?;
        Ok(child)
    }

    /// Instances an interface-only black box (protected IP).
    ///
    /// # Errors
    ///
    /// Same binding conditions as [`CellCtx::instantiate`].
    pub fn black_box(
        &mut self,
        type_name: &str,
        ports: Vec<PortSpec>,
        name: &str,
        conns: &[(&str, Signal)],
    ) -> Result<CellId> {
        let child =
            self.circuit
                .new_cell(self.cell, name, type_name.to_owned(), CellKind::BlackBox);
        self.circuit
            .bind_ports(self.cell, child, ports, conns, false)?;
        Ok(child)
    }

    /// Sets the relative placement of a direct or indirect child (or of
    /// this cell itself).
    pub fn set_rloc(&mut self, cell: CellId, rloc: Rloc) {
        self.circuit.cells[cell.index()].rloc = Some(rloc);
    }

    /// Attaches a property to this cell.
    pub fn set_property(&mut self, key: impl Into<String>, value: impl Into<PropertyValue>) {
        self.circuit.cells[self.cell.index()]
            .properties
            .insert(key.into(), value.into());
    }

    /// Attaches a property to any cell.
    pub fn set_property_on(
        &mut self,
        cell: CellId,
        key: impl Into<String>,
        value: impl Into<PropertyValue>,
    ) {
        self.circuit.cells[cell.index()]
            .properties
            .insert(key.into(), value.into());
    }
}

/// A parameterizable module generator.
///
/// Implementations are ordinary value types whose fields are the
/// generator parameters; `build` executes the construction program. This
/// is the Rust rendering of a JHDL module-generator class constructor.
///
/// # Examples
///
/// See [`Circuit::from_generator`] and the `ipd-modgen` crate, which
/// ships the paper's constant-coefficient multiplier among many others.
pub trait Generator {
    /// The definition name for instances of this generator, ideally
    /// encoding the parameters (e.g. `"kcm_w8_p12_c-56"`).
    fn type_name(&self) -> String;

    /// The port interface exposed to the instantiating scope.
    fn ports(&self) -> Vec<PortSpec>;

    /// Constructs the generator's internals inside `ctx`.
    ///
    /// # Errors
    ///
    /// Implementations should return [`HdlError::InvalidParameter`] for
    /// unbuildable parameter combinations and propagate construction
    /// errors otherwise.
    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()>;
}

/// A [`Generator`] assembled from closures; convenient in tests and
/// examples.
pub struct FnGenerator<F>
where
    F: Fn(&mut CellCtx<'_>) -> Result<()>,
{
    type_name: String,
    ports: Vec<PortSpec>,
    build: F,
}

impl<F> FnGenerator<F>
where
    F: Fn(&mut CellCtx<'_>) -> Result<()>,
{
    /// Wraps a name, interface and build closure into a generator.
    pub fn new(type_name: impl Into<String>, ports: Vec<PortSpec>, build: F) -> Self {
        FnGenerator {
            type_name: type_name.into(),
            ports,
            build,
        }
    }
}

impl<F> std::fmt::Debug for FnGenerator<F>
where
    F: Fn(&mut CellCtx<'_>) -> Result<()>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnGenerator")
            .field("type_name", &self.type_name)
            .field("ports", &self.ports.len())
            .finish()
    }
}

impl<F> Generator for FnGenerator<F>
where
    F: Fn(&mut CellCtx<'_>) -> Result<()>,
{
    fn type_name(&self) -> String {
        self.type_name.clone()
    }

    fn ports(&self) -> Vec<PortSpec> {
        self.ports.clone()
    }

    fn build(&self, ctx: &mut CellCtx<'_>) -> Result<()> {
        (self.build)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf_ports() -> Vec<PortSpec> {
        vec![PortSpec::input("i", 1), PortSpec::output("o", 1)]
    }

    fn buf_prim() -> Primitive {
        Primitive::new("virtex", "buf")
    }

    #[test]
    fn empty_circuit_has_root() {
        let c = Circuit::new("top");
        assert_eq!(c.cell_count(), 1);
        assert_eq!(c.cell(c.root()).name(), "top");
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn wires_are_uniquified() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.wire("t", 1);
        let b = ctx.wire("t", 1);
        assert_eq!(c.wire(a).name(), "t");
        assert_eq!(c.wire(b).name(), "t_2");
    }

    #[test]
    fn leaf_binding_checks_widths() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let w8 = ctx.wire("bus", 8);
        let err = ctx
            .leaf(
                buf_prim(),
                buf_ports(),
                "b0",
                &[("i", w8.into()), ("o", w8.into())],
            )
            .unwrap_err();
        assert!(matches!(err, HdlError::WidthMismatch { .. }));
    }

    #[test]
    fn leaf_binding_accepts_slices() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let w8 = ctx.wire("bus", 8);
        let o = ctx.wire("o", 1);
        ctx.leaf(
            buf_prim(),
            buf_ports(),
            "b0",
            &[("i", Signal::bit_of(w8, 3)), ("o", o.into())],
        )
        .expect("slice binding");
        assert_eq!(c.primitive_count(), 1);
    }

    #[test]
    fn unbound_input_is_an_error() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let o = ctx.wire("o", 1);
        let err = ctx
            .leaf(buf_prim(), buf_ports(), "b0", &[("o", o.into())])
            .unwrap_err();
        assert!(matches!(err, HdlError::UnboundInput { .. }));
    }

    #[test]
    fn unbound_output_is_allowed() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        ctx.leaf(buf_prim(), buf_ports(), "b0", &[("i", i.into())])
            .expect("dangling output ok");
    }

    #[test]
    fn unknown_port_is_an_error() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let err = ctx
            .leaf(buf_prim(), buf_ports(), "b0", &[("nope", i.into())])
            .unwrap_err();
        assert!(matches!(err, HdlError::UnknownPort { .. }));
    }

    #[test]
    fn out_of_scope_wire_rejected() {
        let inner = FnGenerator::new("inner", vec![PortSpec::input("i", 1)], |_ctx| Ok(()));
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let child = ctx.instantiate(&inner, "u0", &[("i", i.into())]).unwrap();
        // Try to use the top-level wire from inside the child scope.
        let mut child_ctx = c.ctx_for(child).unwrap();
        let err = child_ctx
            .leaf(
                buf_prim(),
                buf_ports(),
                "b0",
                &[("i", i.into()), ("o", i.into())],
            )
            .unwrap_err();
        assert!(matches!(err, HdlError::WireOutOfScope { .. }));
    }

    #[test]
    fn slice_out_of_range_rejected() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let w4 = ctx.wire("w", 4);
        let o = ctx.wire("o", 1);
        let err = ctx
            .leaf(
                buf_prim(),
                buf_ports(),
                "b0",
                &[("i", Signal::bit_of(w4, 9)), ("o", o.into())],
            )
            .unwrap_err();
        assert!(matches!(err, HdlError::SliceOutOfRange { .. }));
    }

    #[test]
    fn hierarchy_paths() {
        let inner = FnGenerator::new("inner", vec![PortSpec::input("i", 1)], |ctx| {
            let i = ctx.port("i")?;
            ctx.leaf(
                Primitive::new("virtex", "buf"),
                vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
                "b0",
                &[("i", i.into())],
            )?;
            Ok(())
        });
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let child = ctx.instantiate(&inner, "u0", &[("i", i.into())]).unwrap();
        assert_eq!(c.cell_path(child), "top/u0");
        let leaf = c.cell(child).children()[0];
        assert_eq!(c.cell_path(leaf), "top/u0/b0");
        assert_eq!(c.depth(), 3);
        assert_eq!(c.descendants(c.root()).len(), 3);
    }

    #[test]
    fn absolute_rloc_accumulates() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let inner = FnGenerator::new("inner", vec![PortSpec::input("i", 1)], |ctx| {
            let i = ctx.port("i")?;
            let leaf = ctx.leaf(
                Primitive::new("virtex", "buf"),
                vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
                "b0",
                &[("i", i.into())],
            )?;
            ctx.set_rloc(leaf, Rloc::new(1, 1));
            Ok(())
        });
        let child = ctx.instantiate(&inner, "u0", &[("i", i.into())]).unwrap();
        ctx.set_rloc(child, Rloc::new(2, 3));
        let leaf = c.cell(child).children()[0];
        assert_eq!(c.absolute_rloc(leaf), Some(Rloc::new(3, 4)));
        // The composite itself is placed at (2,3).
        assert_eq!(c.absolute_rloc(child), Some(Rloc::new(2, 3)));
        // Unplaced cells report None.
        assert_eq!(c.absolute_rloc(c.root()), None);
        // The ancestor offset excludes the leaf's own RLOC and is
        // defined even for unplaced cells.
        assert_eq!(c.ancestor_rloc(leaf), Rloc::new(2, 3));
        assert_eq!(c.ancestor_rloc(child), Rloc::default());
        assert_eq!(c.ancestor_rloc(c.root()), Rloc::default());
    }

    #[test]
    fn generator_ports_become_primary_io() {
        let passthrough = FnGenerator::new(
            "pass",
            vec![PortSpec::input("i", 2), PortSpec::output("o", 2)],
            |ctx| {
                let i = ctx.port("i")?;
                let o = ctx.port("o")?;
                for b in 0..2 {
                    ctx.leaf(
                        Primitive::new("virtex", "buf"),
                        vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
                        &format!("b{b}"),
                        &[("i", Signal::bit_of(i, b)), ("o", Signal::bit_of(o, b))],
                    )?;
                }
                Ok(())
            },
        );
        let c = Circuit::from_generator(&passthrough).expect("build");
        assert_eq!(c.cell(c.root()).ports().len(), 2);
        assert_eq!(c.primitive_count(), 2);
    }

    #[test]
    fn instance_names_uniquify() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let a = ctx
            .leaf(buf_prim(), buf_ports(), "b", &[("i", i.into())])
            .unwrap();
        let b = ctx
            .leaf(buf_prim(), buf_ports(), "b", &[("i", i.into())])
            .unwrap();
        assert_eq!(c.cell(a).name(), "b");
        assert_eq!(c.cell(b).name(), "b_2");
    }

    #[test]
    fn properties_round_trip() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        ctx.set_property("vendor", "byu");
        ctx.set_property("constant", -56i64);
        let root = c.root();
        assert_eq!(
            c.cell(root).properties().get("vendor"),
            Some(&PropertyValue::Text("byu".into()))
        );
        assert_eq!(
            c.cell(root).properties().get("constant"),
            Some(&PropertyValue::Int(-56))
        );
    }
}

#[cfg(test)]
mod strip_tests {
    use super::*;
    use crate::cell::{PortSpec, Primitive, Rloc};

    #[test]
    fn strip_placement_clears_every_rloc() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let i = ctx.wire("i", 1);
        let leaf = ctx
            .leaf(
                Primitive::new("virtex", "buf"),
                vec![PortSpec::input("i", 1), PortSpec::output("o", 1)],
                "b0",
                &[("i", i.into())],
            )
            .unwrap();
        ctx.set_rloc(leaf, Rloc::new(3, 4));
        assert!(c.absolute_rloc(leaf).is_some());
        c.strip_placement();
        assert!(c.absolute_rloc(leaf).is_none());
        assert!(c.cell_ids().all(|id| c.cell(id).rloc().is_none()));
    }
}
