//! # ipd-hdl — a JHDL-style structural circuit data structure
//!
//! This crate is the foundation of the *IP Delivery for FPGAs Using
//! Applets and JHDL* reproduction: a hierarchical, technology-independent
//! structural circuit representation built by *executing* module
//! generators, exactly as JHDL builds circuits by executing Java
//! constructors.
//!
//! The main pieces:
//!
//! - [`Circuit`] — the arena owning every [`Cell`] and [`Wire`].
//! - [`CellCtx`] — a construction scope; the Rust counterpart of JHDL's
//!   `this` parent argument. Create wires, instance primitives, child
//!   generators and black boxes.
//! - [`Generator`] — the module-generator trait; parameters are ordinary
//!   struct fields and `build` is the construction program.
//! - [`Signal`] — a concatenation of wire slices, bound to ports.
//! - [`FlatNetlist`] — elaboration to single-bit nets for simulation,
//!   estimation and netlisting.
//! - [`validate`] — structural design-rule checks.
//! - [`Logic`] / [`LogicVec`] — the four-state value domain.
//!
//! # Example
//!
//! ```
//! use ipd_hdl::{Circuit, FnGenerator, PortSpec, Primitive, Signal};
//!
//! # fn main() -> Result<(), ipd_hdl::HdlError> {
//! // A 2:1 mux built from gates, JHDL style.
//! let mux = FnGenerator::new(
//!     "mux2",
//!     vec![
//!         PortSpec::input("a", 1),
//!         PortSpec::input("b", 1),
//!         PortSpec::input("sel", 1),
//!         PortSpec::output("y", 1),
//!     ],
//!     |ctx| {
//!         let (a, b, sel, y) = (
//!             ctx.port("a")?, ctx.port("b")?, ctx.port("sel")?, ctx.port("y")?,
//!         );
//!         let nsel = ctx.wire("nsel", 1);
//!         let t0 = ctx.wire("t0", 1);
//!         let t1 = ctx.wire("t1", 1);
//!         let p2 = vec![PortSpec::input("i", 1), PortSpec::output("o", 1)];
//!         ctx.leaf(Primitive::new("virtex", "inv"), p2, "inv",
//!                  &[("i", sel.into()), ("o", nsel.into())])?;
//!         let g2 = || vec![
//!             PortSpec::input("i0", 1), PortSpec::input("i1", 1), PortSpec::output("o", 1),
//!         ];
//!         ctx.leaf(Primitive::new("virtex", "and2"), g2(), "and_a",
//!                  &[("i0", a.into()), ("i1", nsel.into()), ("o", t0.into())])?;
//!         ctx.leaf(Primitive::new("virtex", "and2"), g2(), "and_b",
//!                  &[("i0", b.into()), ("i1", sel.into()), ("o", t1.into())])?;
//!         ctx.leaf(Primitive::new("virtex", "or2"), g2(), "or",
//!                  &[("i0", t0.into()), ("i1", t1.into()), ("o", y.into())])?;
//!         Ok(())
//!     },
//! );
//! let circuit = Circuit::from_generator(&mux)?;
//! assert_eq!(circuit.primitive_count(), 4);
//! assert!(ipd_hdl::validate(&circuit)?.is_clean());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cell;
mod circuit;
mod error;
mod flatten;
mod id;
mod logic;
mod stats;
mod validate;
mod wire;

pub use cell::{Cell, CellKind, Port, PortDir, PortSpec, Primitive, PropertyValue, Rloc};
pub use circuit::{CellCtx, Circuit, FnGenerator, Generator};
pub use error::{HdlError, Result};
pub use flatten::{FlatConn, FlatKind, FlatLeaf, FlatNet, FlatNetlist, FlatPort};
pub use id::{CellId, NetId, WireId};
pub use logic::{Logic, LogicVec};
pub use stats::CircuitStats;
pub use validate::{validate, validate_flat, Severity, ValidationReport, Violation};
pub use wire::{Signal, Slice, Wire};
