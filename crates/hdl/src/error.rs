//! Error type shared by all circuit-construction operations.

use std::fmt;

/// Errors produced while constructing, validating or flattening circuits.
///
/// Construction in this crate mirrors JHDL: a generator *executes* and the
/// circuit appears as a side effect, so most mistakes (width mismatches,
/// unknown ports, out-of-scope wires) are caught at the call that makes
/// them rather than at a later elaboration step.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdlError {
    /// A port binding's signal width differs from the declared port width.
    WidthMismatch {
        /// Context: `cell.port` being bound.
        port: String,
        /// Declared width of the port.
        expected: u32,
        /// Width of the signal supplied.
        found: u32,
    },
    /// A named port does not exist on the cell or generator interface.
    UnknownPort {
        /// The cell or generator type name.
        cell: String,
        /// The port name that was requested.
        port: String,
    },
    /// A required input port was left unbound when instancing a cell.
    UnboundInput {
        /// The instance name.
        cell: String,
        /// The unbound input port.
        port: String,
    },
    /// A wire used in a binding does not belong to the instantiating scope.
    WireOutOfScope {
        /// The wire's name.
        wire: String,
        /// The scope cell in which the binding was attempted.
        scope: String,
    },
    /// A bit-slice range was outside the wire's width.
    SliceOutOfRange {
        /// The wire's name.
        wire: String,
        /// Wire width.
        width: u32,
        /// Requested high bit.
        hi: u32,
        /// Requested low bit.
        lo: u32,
    },
    /// A name collided and automatic uniquification was disabled.
    DuplicateName {
        /// The colliding name.
        name: String,
        /// What kind of object collided ("port", "wire", "instance").
        kind: &'static str,
    },
    /// A generator was asked to build an invalid configuration.
    InvalidParameter {
        /// The generator type name.
        generator: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An identifier referred to a cell or wire not present in the circuit.
    StaleId {
        /// Description of the identifier kind.
        kind: &'static str,
    },
    /// More than one driver was found for a net during validation.
    MultipleDrivers {
        /// Hierarchical name of the affected net.
        net: String,
    },
    /// A combinational cycle was detected.
    CombinationalLoop {
        /// A net on the cycle, for diagnostics.
        net: String,
    },
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlError::WidthMismatch {
                port,
                expected,
                found,
            } => write!(
                f,
                "width mismatch on port {port}: expected {expected} bits, found {found}"
            ),
            HdlError::UnknownPort { cell, port } => {
                write!(f, "cell {cell} has no port named {port}")
            }
            HdlError::UnboundInput { cell, port } => {
                write!(f, "input port {port} of instance {cell} is unbound")
            }
            HdlError::WireOutOfScope { wire, scope } => {
                write!(f, "wire {wire} does not belong to scope {scope}")
            }
            HdlError::SliceOutOfRange {
                wire,
                width,
                hi,
                lo,
            } => write!(
                f,
                "slice [{hi}:{lo}] out of range for wire {wire} of width {width}"
            ),
            HdlError::DuplicateName { name, kind } => {
                write!(f, "duplicate {kind} name {name}")
            }
            HdlError::InvalidParameter { generator, reason } => {
                write!(f, "invalid parameter for generator {generator}: {reason}")
            }
            HdlError::StaleId { kind } => write!(f, "stale {kind} identifier"),
            HdlError::MultipleDrivers { net } => {
                write!(f, "net {net} has multiple drivers")
            }
            HdlError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {net}")
            }
        }
    }
}

impl std::error::Error for HdlError {}

/// Convenience alias used throughout the workspace.
pub type Result<T, E = HdlError> = std::result::Result<T, E>;
