//! Design-rule checks over the flattened design.
//!
//! IP evaluation in the browser only makes sense if the delivered
//! circuit is structurally sound, so the delivery executable runs these
//! checks after generation: single-driver rule, undriven reads, and
//! placement overlap.
//!
//! These three rules are the *seed* checks. The full static-analysis
//! engine lives in the `ipd-lint` crate, whose pass framework re-hosts
//! these rules (with hierarchical-path diagnostics, configurable
//! severities and waivers) alongside clock-domain-crossing, dead-logic,
//! X-propagation, combinational-loop and fanout analyses. [`validate`]
//! remains as the dependency-free entry point for callers that only
//! need structural soundness.

use std::collections::HashMap;
use std::fmt;

use crate::cell::{PortDir, Rloc};
use crate::circuit::Circuit;
use crate::error::Result;
use crate::flatten::FlatNetlist;

/// Severity of a rule violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; the design still simulates and netlists.
    Warning,
    /// The design is structurally ill-formed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A single design-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// How serious the problem is.
    pub severity: Severity,
    /// Short rule identifier, e.g. `"multiple-drivers"`.
    pub rule: &'static str,
    /// Human-readable description naming the offending object.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.severity, self.rule, self.message)
    }
}

/// The result of running all design-rule checks.
#[derive(Debug, Clone, Default)]
pub struct ValidationReport {
    violations: Vec<Violation>,
}

impl ValidationReport {
    /// All recorded violations, errors first.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// `true` when no error-severity violations exist.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        !self
            .violations
            .iter()
            .any(|v| v.severity == Severity::Error)
    }

    /// Count of error-severity violations.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Count of warning-severity violations.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Warning)
            .count()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return writeln!(f, "design rules: clean");
        }
        for v in &self.violations {
            writeln!(f, "{v}")?;
        }
        writeln!(
            f,
            "design rules: {} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

/// Runs every design rule on a circuit.
///
/// # Errors
///
/// Propagates flattening failures; rule violations are *reported*, not
/// returned as errors.
///
/// # Examples
///
/// ```
/// use ipd_hdl::{validate, Circuit};
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let circuit = Circuit::new("empty");
/// let report = validate(&circuit)?;
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
pub fn validate(circuit: &Circuit) -> Result<ValidationReport> {
    let flat = FlatNetlist::build(circuit)?;
    Ok(validate_flat(&flat))
}

/// Runs every design rule on an already-flattened design.
#[must_use]
pub fn validate_flat(flat: &FlatNetlist) -> ValidationReport {
    let mut violations = Vec::new();
    check_drivers(flat, &mut violations);
    check_placement_overlap(flat, &mut violations);
    violations.sort_by_key(|v| std::cmp::Reverse(v.severity));
    ValidationReport { violations }
}

fn check_drivers(flat: &FlatNetlist, out: &mut Vec<Violation>) {
    let drivers = flat.drivers();
    let readers = flat.readers();
    // Primary inputs count as drivers; primary outputs as readers.
    let mut primary_driven = vec![false; flat.net_count()];
    let mut primary_read = vec![false; flat.net_count()];
    for port in flat.ports() {
        for &net in &port.nets {
            match port.dir {
                PortDir::Input => primary_driven[net.index()] = true,
                PortDir::Output => primary_read[net.index()] = true,
                PortDir::Inout => {
                    primary_driven[net.index()] = true;
                    primary_read[net.index()] = true;
                }
            }
        }
    }
    for (i, net) in flat.nets().iter().enumerate() {
        let drive_count = drivers[i].len() + usize::from(primary_driven[i]);
        let read_count = readers[i].len() + usize::from(primary_read[i]);
        if drive_count > 1 {
            out.push(Violation {
                severity: Severity::Error,
                rule: "multiple-drivers",
                message: format!("net {} has {drive_count} drivers", net.name),
            });
        }
        if drive_count == 0 && read_count > 0 {
            out.push(Violation {
                severity: Severity::Warning,
                rule: "undriven-net",
                message: format!("net {} is read but never driven", net.name),
            });
        }
        if drive_count == 1 && read_count == 0 && !net.name.ends_with(']') {
            // Whole dangling nets are usually intentional (e.g. unused
            // carry out), so only warn.
            out.push(Violation {
                severity: Severity::Warning,
                rule: "unused-net",
                message: format!("net {} is driven but never read", net.name),
            });
        }
    }
}

/// How many placed leaves one slice site can legitimately host: two
/// LUTs, two flip-flops, two carry muxes and two carry xors.
const SLICE_CAPACITY: usize = 8;

fn check_placement_overlap(flat: &FlatNetlist, out: &mut Vec<Violation>) {
    let mut seen: HashMap<Rloc, &str> = HashMap::new();
    for leaf in flat.leaves() {
        let Some(loc) = leaf.loc else { continue };
        match seen.insert(loc, leaf.path.as_str()) {
            None => {}
            Some(first) => {
                let count = flat.leaves().iter().filter(|l| l.loc == Some(loc)).count();
                if count > SLICE_CAPACITY {
                    out.push(Violation {
                        severity: Severity::Warning,
                        rule: "placement-overlap",
                        message: format!(
                            "{count} leaves at {loc} exceed the slice capacity of \
                             {SLICE_CAPACITY} (first two: {first}, {})",
                            leaf.path
                        ),
                    });
                }
            }
        }
    }
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{PortSpec, Primitive};
    use crate::circuit::Circuit;

    fn buf_ports() -> Vec<PortSpec> {
        vec![PortSpec::input("i", 1), PortSpec::output("o", 1)]
    }

    fn buf() -> Primitive {
        Primitive::new("virtex", "buf")
    }

    #[test]
    fn clean_design_passes() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.leaf(
            buf(),
            buf_ports(),
            "b0",
            &[("i", a.into()), ("o", y.into())],
        )
        .unwrap();
        let report = validate(&c).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.warning_count(), 0);
    }

    #[test]
    fn multiple_drivers_flagged() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let a = ctx.add_port(PortSpec::input("a", 1)).unwrap();
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.leaf(
            buf(),
            buf_ports(),
            "b0",
            &[("i", a.into()), ("o", y.into())],
        )
        .unwrap();
        ctx.leaf(
            buf(),
            buf_ports(),
            "b1",
            &[("i", a.into()), ("o", y.into())],
        )
        .unwrap();
        let report = validate(&c).unwrap();
        assert!(!report.is_clean());
        assert!(report
            .violations()
            .iter()
            .any(|v| v.rule == "multiple-drivers"));
    }

    #[test]
    fn undriven_read_warns() {
        let mut c = Circuit::new("top");
        let mut ctx = c.root_ctx();
        let floating = ctx.wire("floating", 1);
        let y = ctx.add_port(PortSpec::output("y", 1)).unwrap();
        ctx.leaf(
            buf(),
            buf_ports(),
            "b0",
            &[("i", floating.into()), ("o", y.into())],
        )
        .unwrap();
        let report = validate(&c).unwrap();
        assert!(report.is_clean()); // warning only
        assert!(report.violations().iter().any(|v| v.rule == "undriven-net"));
    }

    #[test]
    fn severity_display() {
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Severity::Warning.to_string(), "warning");
    }
}
