//! Wires, bit slices and signals (slice concatenations).

use std::fmt;

use crate::{CellId, WireId};

/// A named bundle of bits owned by one hierarchy scope.
///
/// Wires are created inside a cell (via [`CellCtx::wire`]) and may be
/// bound — whole or sliced — to the ports of child instances in that
/// same scope, mirroring JHDL's `new Wire(this, width)` idiom.
///
/// [`CellCtx::wire`]: crate::CellCtx::wire
#[derive(Debug, Clone)]
pub struct Wire {
    pub(crate) name: String,
    pub(crate) width: u32,
    pub(crate) scope: CellId,
}

impl Wire {
    /// The wire's name, unique within its scope.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The cell that owns this wire.
    #[must_use]
    pub fn scope(&self) -> CellId {
        self.scope
    }
}

/// An inclusive bit-range of a wire: bits `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Slice {
    /// The sliced wire.
    pub wire: WireId,
    /// Most significant bit (inclusive).
    pub hi: u32,
    /// Least significant bit (inclusive).
    pub lo: u32,
}

impl Slice {
    /// Width of this slice in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.hi - self.lo + 1
    }
}

/// A signal: the concatenation of one or more wire slices.
///
/// Signals are what gets bound to instance ports. The first segment
/// holds the least significant bits. A bare [`WireId`] converts into a
/// full-width signal, so simple connections stay simple:
///
/// ```
/// use ipd_hdl::{Circuit, Signal};
///
/// let mut circuit = Circuit::new("top");
/// let mut root = circuit.root_ctx();
/// let bus = root.wire("bus", 8);
/// let sig: Signal = bus.into();        // whole wire
/// let nibble = Signal::slice_of(bus, 3, 0); // low nibble
/// assert_eq!(nibble.segments().len(), 1);
/// let _ = sig;
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signal {
    segments: Vec<Slice>,
}

impl Signal {
    /// A signal covering the given slice.
    #[must_use]
    pub fn slice_of(wire: WireId, hi: u32, lo: u32) -> Self {
        Signal {
            segments: vec![Slice { wire, hi, lo }],
        }
    }

    /// A single-bit signal selecting `bit` of `wire`.
    #[must_use]
    pub fn bit_of(wire: WireId, bit: u32) -> Self {
        Signal::slice_of(wire, bit, bit)
    }

    /// Concatenates signals; the first element supplies the low bits.
    #[must_use]
    pub fn concat<I: IntoIterator<Item = Signal>>(parts: I) -> Self {
        let mut segments = Vec::new();
        for part in parts {
            segments.extend(part.segments);
        }
        Signal { segments }
    }

    /// Appends `high` above `self` and returns the combined signal.
    #[must_use]
    pub fn then(mut self, high: Signal) -> Self {
        self.segments.extend(high.segments);
        self
    }

    /// Total width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.segments.iter().map(Slice::width).sum()
    }

    /// The underlying slice segments, LSB-first.
    #[must_use]
    pub fn segments(&self) -> &[Slice] {
        &self.segments
    }

    /// Iterates over the individual bits LSB-first as `(wire, bit)` pairs.
    pub fn bits(&self) -> impl Iterator<Item = (WireId, u32)> + '_ {
        self.segments
            .iter()
            .flat_map(|s| (s.lo..=s.hi).map(move |b| (s.wire, b)))
    }
}

impl From<WireId> for Signal {
    /// A full-width signal requires knowing the wire's width, which the
    /// [`Circuit`](crate::Circuit) resolves lazily: the sentinel
    /// `hi = u32::MAX` means "whole wire" and is expanded at bind time.
    fn from(wire: WireId) -> Self {
        Signal {
            segments: vec![Slice {
                wire,
                hi: u32::MAX,
                lo: 0,
            }],
        }
    }
}

impl From<Slice> for Signal {
    fn from(slice: Slice) -> Self {
        Signal {
            segments: vec![slice],
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in self.segments.iter().rev() {
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if seg.hi == u32::MAX {
                write!(f, "w{}", seg.wire.index())?;
            } else if seg.hi == seg.lo {
                write!(f, "w{}[{}]", seg.wire.index(), seg.lo)?;
            } else {
                write!(f, "w{}[{}:{}]", seg.wire.index(), seg.hi, seg.lo)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(i: u32) -> WireId {
        WireId::from_index(i as usize)
    }

    #[test]
    fn slice_width() {
        let s = Slice {
            wire: w(0),
            hi: 7,
            lo: 4,
        };
        assert_eq!(s.width(), 4);
    }

    #[test]
    fn concat_keeps_lsb_first() {
        let lo = Signal::slice_of(w(0), 3, 0);
        let hi = Signal::slice_of(w(1), 1, 0);
        let cat = Signal::concat([lo.clone(), hi]);
        assert_eq!(cat.width(), 6);
        assert_eq!(cat.segments()[0], lo.segments()[0]);
    }

    #[test]
    fn bits_enumerates_lsb_first() {
        let sig = Signal::slice_of(w(2), 2, 1);
        let bits: Vec<_> = sig.bits().collect();
        assert_eq!(bits, vec![(w(2), 1), (w(2), 2)]);
    }

    #[test]
    fn then_appends_high_bits() {
        let sig = Signal::bit_of(w(0), 0).then(Signal::bit_of(w(1), 0));
        assert_eq!(sig.width(), 2);
        assert_eq!(sig.segments()[1].wire, w(1));
    }
}
