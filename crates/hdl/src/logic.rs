//! Four-state logic values and logic vectors.
//!
//! JHDL simulates circuits over a four-state algebra so that uninitialized
//! state ([`Logic::X`]) and undriven nets ([`Logic::Z`]) are observable
//! during IP evaluation. The same algebra is used here by the simulator,
//! the technology-library behavioral models and the waveform viewers.

use std::fmt;

/// A single four-state logic value.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Logic;
///
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero); // 0 dominates AND
/// assert_eq!(Logic::One | Logic::X, Logic::One);   // 1 dominates OR
/// assert_eq!(!Logic::X, Logic::X);                 // unknown stays unknown
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Logic {
    /// Driven low.
    Zero,
    /// Driven high.
    One,
    /// Unknown (uninitialized or conflicting).
    #[default]
    X,
    /// High impedance (undriven).
    Z,
}

impl Logic {
    /// Converts a boolean into a driven logic value.
    #[must_use]
    pub fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Returns `Some(bool)` for driven values, `None` for `X`/`Z`.
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X | Logic::Z => None,
        }
    }

    /// Returns `true` when the value is `0` or `1` (not `X`/`Z`).
    #[must_use]
    pub fn is_driven(self) -> bool {
        matches!(self, Logic::Zero | Logic::One)
    }

    /// The character used in waveform and vector displays.
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'X',
            Logic::Z => 'Z',
        }
    }

    /// Parses a logic character (`0`, `1`, `x`/`X`, `z`/`Z`).
    #[must_use]
    pub fn from_char(ch: char) -> Option<Self> {
        match ch {
            '0' => Some(Logic::Zero),
            '1' => Some(Logic::One),
            'x' | 'X' => Some(Logic::X),
            'z' | 'Z' => Some(Logic::Z),
            _ => None,
        }
    }

    /// Resolution of two drivers on the same net (Verilog-style `wire`).
    ///
    /// `Z` yields to any driver; conflicting driven values resolve to `X`.
    #[must_use]
    pub fn resolve(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Z, v) | (v, Logic::Z) => v,
            (a, b) if a == b => a,
            _ => Logic::X,
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl std::ops::BitAnd for Logic {
    type Output = Logic;
    fn bitand(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }
}

impl std::ops::BitOr for Logic {
    type Output = Logic;
    fn bitor(self, rhs: Logic) -> Logic {
        match (self, rhs) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }
}

impl std::ops::BitXor for Logic {
    type Output = Logic;
    fn bitxor(self, rhs: Logic) -> Logic {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Logic::from_bool(a ^ b),
            _ => Logic::X,
        }
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X | Logic::Z => Logic::X,
        }
    }
}

/// A fixed-width vector of [`Logic`] values, bit 0 = least significant.
///
/// `LogicVec` is the value type carried by multi-bit wires in simulation
/// and testbenches. Conversions to and from integers are provided for
/// both unsigned and two's-complement signed interpretations.
///
/// # Examples
///
/// ```
/// use ipd_hdl::LogicVec;
///
/// let v = LogicVec::from_u64(0b1010, 4);
/// assert_eq!(v.to_string(), "1010");
/// assert_eq!(v.to_u64(), Some(10));
///
/// let s = LogicVec::from_i64(-56, 8);
/// assert_eq!(s.to_i64(), Some(-56));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LogicVec {
    bits: Vec<Logic>,
}

impl LogicVec {
    /// An all-`X` vector of the given width.
    #[must_use]
    pub fn unknown(width: usize) -> Self {
        LogicVec {
            bits: vec![Logic::X; width],
        }
    }

    /// An all-zero vector of the given width.
    #[must_use]
    pub fn zeros(width: usize) -> Self {
        LogicVec {
            bits: vec![Logic::Zero; width],
        }
    }

    /// An all-one vector of the given width.
    #[must_use]
    pub fn ones(width: usize) -> Self {
        LogicVec {
            bits: vec![Logic::One; width],
        }
    }

    /// An all-`Z` (undriven) vector of the given width.
    #[must_use]
    pub fn high_z(width: usize) -> Self {
        LogicVec {
            bits: vec![Logic::Z; width],
        }
    }

    /// Builds a vector from bits, index 0 being the LSB.
    #[must_use]
    pub fn from_bits(bits: Vec<Logic>) -> Self {
        LogicVec { bits }
    }

    /// The low `width` bits of `value`, LSB first.
    ///
    /// Bits above 63 are zero.
    #[must_use]
    pub fn from_u64(value: u64, width: usize) -> Self {
        let bits = (0..width)
            .map(|i| {
                if i < 64 {
                    Logic::from_bool((value >> i) & 1 == 1)
                } else {
                    Logic::Zero
                }
            })
            .collect();
        LogicVec { bits }
    }

    /// Two's-complement encoding of `value` in `width` bits.
    ///
    /// Values that do not fit are truncated, matching hardware behaviour.
    #[must_use]
    pub fn from_i64(value: i64, width: usize) -> Self {
        Self::from_u64(value as u64, width)
    }

    /// Parses a binary string, MSB first. `_` separators are ignored.
    ///
    /// Returns `None` on characters outside `01xXzZ_`.
    #[must_use]
    pub fn parse_binary(text: &str) -> Option<Self> {
        let mut bits = Vec::new();
        for ch in text.chars().rev() {
            if ch == '_' {
                continue;
            }
            bits.push(Logic::from_char(ch)?);
        }
        Some(LogicVec { bits })
    }

    /// Number of bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` when the vector has no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    #[must_use]
    pub fn bit(&self, index: usize) -> Logic {
        self.bits[index]
    }

    /// The bit at `index`, or `None` when out of range.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Logic> {
        self.bits.get(index).copied()
    }

    /// Sets the bit at `index` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.width()`.
    pub fn set_bit(&mut self, index: usize, value: Logic) {
        self.bits[index] = value;
    }

    /// Iterates over bits, LSB first.
    pub fn iter(&self) -> impl Iterator<Item = Logic> + '_ {
        self.bits.iter().copied()
    }

    /// Returns the bits as a slice, index 0 = LSB.
    #[must_use]
    pub fn as_bits(&self) -> &[Logic] {
        &self.bits
    }

    /// `true` when every bit is driven (no `X`/`Z`).
    #[must_use]
    pub fn is_fully_driven(&self) -> bool {
        self.bits.iter().all(|b| b.is_driven())
    }

    /// Unsigned integer value, or `None` if any bit is `X`/`Z` or the
    /// width exceeds 64 bits with a set high bit.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        let mut out = 0u64;
        for (i, bit) in self.bits.iter().enumerate() {
            match bit.to_bool()? {
                true if i >= 64 => return None,
                true => out |= 1 << i,
                false => {}
            }
        }
        Some(out)
    }

    /// Two's-complement signed value, or `None` if any bit is `X`/`Z`.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        if self.bits.is_empty() || self.bits.len() > 64 {
            return None;
        }
        let raw = self.to_u64()?;
        let w = self.bits.len();
        if w == 64 {
            return Some(raw as i64);
        }
        let sign = (raw >> (w - 1)) & 1;
        if sign == 1 {
            Some((raw as i64) - (1i64 << w))
        } else {
            Some(raw as i64)
        }
    }

    /// Zero- or sign-extends (or truncates) to `width` bits.
    #[must_use]
    pub fn resized(&self, width: usize, signed: bool) -> Self {
        let fill = if signed {
            self.bits.last().copied().unwrap_or(Logic::Zero)
        } else {
            Logic::Zero
        };
        let mut bits = self.bits.clone();
        bits.resize(width, fill);
        LogicVec { bits }
    }

    /// Concatenates `high` above `self` (`self` keeps the low bits).
    #[must_use]
    pub fn concat(&self, high: &LogicVec) -> Self {
        let mut bits = self.bits.clone();
        bits.extend_from_slice(&high.bits);
        LogicVec { bits }
    }

    /// The inclusive bit slice `[lo, hi]` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= self.width()`.
    #[must_use]
    pub fn slice(&self, hi: usize, lo: usize) -> Self {
        assert!(hi >= lo && hi < self.bits.len(), "slice out of range");
        LogicVec {
            bits: self.bits[lo..=hi].to_vec(),
        }
    }
}

impl fmt::Display for LogicVec {
    /// MSB-first binary rendering, e.g. `1010` for the value ten.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.bits.iter().rev() {
            write!(f, "{}", bit.to_char())?;
        }
        Ok(())
    }
}

impl From<Logic> for LogicVec {
    fn from(bit: Logic) -> Self {
        LogicVec { bits: vec![bit] }
    }
}

impl FromIterator<Logic> for LogicVec {
    fn from_iter<I: IntoIterator<Item = Logic>>(iter: I) -> Self {
        LogicVec {
            bits: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_truth_table() {
        use Logic::*;
        assert_eq!(Zero & Zero, Zero);
        assert_eq!(Zero & One, Zero);
        assert_eq!(One & One, One);
        assert_eq!(One & X, X);
        assert_eq!(Zero & X, Zero);
        assert_eq!(X & X, X);
        assert_eq!(Z & One, X);
        assert_eq!(Z & Zero, Zero);
    }

    #[test]
    fn or_truth_table() {
        use Logic::*;
        assert_eq!(Zero | Zero, Zero);
        assert_eq!(One | Zero, One);
        assert_eq!(One | X, One);
        assert_eq!(Zero | X, X);
        assert_eq!(Z | Zero, X);
    }

    #[test]
    fn xor_truth_table() {
        use Logic::*;
        assert_eq!(Zero ^ One, One);
        assert_eq!(One ^ One, Zero);
        assert_eq!(One ^ X, X);
        assert_eq!(Z ^ Zero, X);
    }

    #[test]
    fn not_truth_table() {
        use Logic::*;
        assert_eq!(!Zero, One);
        assert_eq!(!One, Zero);
        assert_eq!(!X, X);
        assert_eq!(!Z, X);
    }

    #[test]
    fn resolution() {
        use Logic::*;
        assert_eq!(Z.resolve(One), One);
        assert_eq!(Zero.resolve(Z), Zero);
        assert_eq!(One.resolve(Zero), X);
        assert_eq!(One.resolve(One), One);
        assert_eq!(Z.resolve(Z), Z);
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 2, 10, 255, 0xDEAD_BEEF] {
            let lv = LogicVec::from_u64(v, 32);
            assert_eq!(lv.to_u64(), Some(v & 0xFFFF_FFFF));
        }
    }

    #[test]
    fn i64_round_trip() {
        for v in [-128i64, -56, -1, 0, 1, 56, 127] {
            let lv = LogicVec::from_i64(v, 8);
            assert_eq!(lv.to_i64(), Some(v), "value {v}");
        }
    }

    #[test]
    fn i64_truncates_like_hardware() {
        let lv = LogicVec::from_i64(200, 8); // 200 wraps to -56 in 8 bits
        assert_eq!(lv.to_i64(), Some(-56));
    }

    #[test]
    fn x_bits_poison_conversion() {
        let mut lv = LogicVec::from_u64(5, 4);
        lv.set_bit(2, Logic::X);
        assert_eq!(lv.to_u64(), None);
        assert_eq!(lv.to_i64(), None);
        assert!(!lv.is_fully_driven());
    }

    #[test]
    fn display_is_msb_first() {
        assert_eq!(LogicVec::from_u64(0b0110, 4).to_string(), "0110");
        assert_eq!(LogicVec::unknown(3).to_string(), "XXX");
    }

    #[test]
    fn parse_binary_round_trip() {
        let lv = LogicVec::parse_binary("10_1X").expect("parse");
        assert_eq!(lv.width(), 4);
        assert_eq!(lv.to_string(), "101X");
        assert!(LogicVec::parse_binary("10f").is_none());
    }

    #[test]
    fn resize_sign_extension() {
        let lv = LogicVec::from_i64(-3, 4);
        assert_eq!(lv.resized(8, true).to_i64(), Some(-3));
        assert_eq!(lv.resized(8, false).to_u64(), Some(0b1101));
        assert_eq!(lv.resized(2, true).width(), 2);
    }

    #[test]
    fn concat_and_slice() {
        let lo = LogicVec::from_u64(0b01, 2);
        let hi = LogicVec::from_u64(0b11, 2);
        let cat = lo.concat(&hi);
        assert_eq!(cat.to_u64(), Some(0b1101));
        assert_eq!(cat.slice(3, 2).to_u64(), Some(0b11));
        assert_eq!(cat.slice(1, 0).to_u64(), Some(0b01));
    }
}
