//! Cells, ports, primitives, properties and placement attributes.

use std::collections::BTreeMap;
use std::fmt;

use crate::wire::Signal;
use crate::CellId;

/// Direction of a cell port, seen from inside the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortDir {
    /// Driven from outside the cell.
    Input,
    /// Driven by the cell.
    Output,
    /// Bidirectional (rare in FPGA fabric logic; used by pads).
    Inout,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// Declaration of one port in a cell or generator interface.
///
/// # Examples
///
/// ```
/// use ipd_hdl::{PortDir, PortSpec};
///
/// let spec = PortSpec::input("multiplicand", 8);
/// assert_eq!(spec.name, "multiplicand");
/// assert_eq!(spec.dir, PortDir::Input);
/// assert_eq!(spec.width, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PortSpec {
    /// Port name, unique within the interface.
    pub name: String,
    /// Direction seen from inside the cell.
    pub dir: PortDir,
    /// Width in bits (must be at least 1).
    pub width: u32,
}

impl PortSpec {
    /// Declares a new port.
    #[must_use]
    pub fn new(name: impl Into<String>, dir: PortDir, width: u32) -> Self {
        PortSpec {
            name: name.into(),
            dir,
            width,
        }
    }

    /// Declares an input port.
    #[must_use]
    pub fn input(name: impl Into<String>, width: u32) -> Self {
        PortSpec::new(name, PortDir::Input, width)
    }

    /// Declares an output port.
    #[must_use]
    pub fn output(name: impl Into<String>, width: u32) -> Self {
        PortSpec::new(name, PortDir::Output, width)
    }

    /// Declares a bidirectional port.
    #[must_use]
    pub fn inout(name: impl Into<String>, width: u32) -> Self {
        PortSpec::new(name, PortDir::Inout, width)
    }
}

/// A port instance on a cell: its declaration plus its connections.
#[derive(Debug, Clone)]
pub struct Port {
    /// The declared interface of this port.
    pub spec: PortSpec,
    /// The signal bound in the *parent* scope, if any.
    pub outer: Option<Signal>,
    /// The wire representing this port *inside* the cell
    /// (composite cells only; primitives have no internals).
    pub inner: Option<crate::WireId>,
}

/// Technology-library primitive reference.
///
/// The circuit data structure is technology independent: a primitive is
/// identified by its library and cell name plus an optional `INIT` value
/// (LUT contents, flip-flop init, ROM contents). The technology library
/// crate interprets these names and provides behavioral, area and delay
/// models — exactly how JHDL keeps one circuit structure across multiple
/// FPGA technology libraries.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Primitive {
    /// Library name, e.g. `"virtex"`.
    pub library: String,
    /// Primitive cell name, e.g. `"lut4"` or `"fdce"`.
    pub name: String,
    /// Optional initialization contents (LUT truth table, ROM word, …).
    pub init: Option<u64>,
}

impl Primitive {
    /// A primitive with no `INIT` value.
    #[must_use]
    pub fn new(library: impl Into<String>, name: impl Into<String>) -> Self {
        Primitive {
            library: library.into(),
            name: name.into(),
            init: None,
        }
    }

    /// A primitive carrying an `INIT` value.
    #[must_use]
    pub fn with_init(library: impl Into<String>, name: impl Into<String>, init: u64) -> Self {
        Primitive {
            library: library.into(),
            name: name.into(),
            init: Some(init),
        }
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.init {
            Some(init) => write!(f, "{}:{} (INIT={init:#x})", self.library, self.name),
            None => write!(f, "{}:{}", self.library, self.name),
        }
    }
}

/// What a cell *is*: a hierarchy level, a library primitive, or an
/// opaque protected block.
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// A hierarchical cell containing children and wires.
    Composite,
    /// A technology-library leaf.
    Primitive(Primitive),
    /// An interface-only cell whose internals are deliberately hidden —
    /// the "black box" of the paper's protected-IP delivery mode.
    BlackBox,
}

impl CellKind {
    /// Returns the primitive reference for primitive cells.
    #[must_use]
    pub fn as_primitive(&self) -> Option<&Primitive> {
        match self {
            CellKind::Primitive(p) => Some(p),
            _ => None,
        }
    }

    /// `true` for hierarchical cells.
    #[must_use]
    pub fn is_composite(&self) -> bool {
        matches!(self, CellKind::Composite)
    }
}

/// Value of a user property attached to a cell.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyValue {
    /// Free-form text.
    Text(String),
    /// Integer value.
    Int(i64),
    /// Boolean flag.
    Bool(bool),
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Text(s) => f.write_str(s),
            PropertyValue::Int(v) => write!(f, "{v}"),
            PropertyValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for PropertyValue {
    fn from(s: &str) -> Self {
        PropertyValue::Text(s.to_owned())
    }
}

impl From<String> for PropertyValue {
    fn from(s: String) -> Self {
        PropertyValue::Text(s)
    }
}

impl From<i64> for PropertyValue {
    fn from(v: i64) -> Self {
        PropertyValue::Int(v)
    }
}

impl From<bool> for PropertyValue {
    fn from(v: bool) -> Self {
        PropertyValue::Bool(v)
    }
}

/// Relative placement attribute, equivalent to a Xilinx `RLOC`.
///
/// Placement is hierarchical: a cell's location is relative to its
/// parent's origin, and absolute locations are accumulated while
/// flattening. Module generators use relative placement to produce the
/// compact, fast layouts the paper's estimator and layout viewer display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Rloc {
    /// Row offset (CLB rows, increasing downward).
    pub row: i32,
    /// Column offset (CLB columns, increasing rightward).
    pub col: i32,
}

impl Rloc {
    /// A placement at the given row/column offset.
    #[must_use]
    pub fn new(row: i32, col: i32) -> Self {
        Rloc { row, col }
    }

    /// Component-wise translation.
    #[must_use]
    pub fn offset(self, other: Rloc) -> Rloc {
        Rloc {
            row: self.row + other.row,
            col: self.col + other.col,
        }
    }
}

impl fmt::Display for Rloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}C{}", self.row, self.col)
    }
}

/// One node of the circuit hierarchy.
///
/// Cells are stored in the [`Circuit`](crate::Circuit) arena and referred
/// to by [`CellId`]. Direct field access is intentionally read-only from
/// outside the crate; mutation happens through
/// [`CellCtx`](crate::CellCtx) so invariants hold.
#[derive(Debug, Clone)]
pub struct Cell {
    pub(crate) name: String,
    pub(crate) type_name: String,
    pub(crate) parent: Option<CellId>,
    pub(crate) children: Vec<CellId>,
    pub(crate) kind: CellKind,
    pub(crate) ports: Vec<Port>,
    pub(crate) properties: BTreeMap<String, PropertyValue>,
    pub(crate) rloc: Option<Rloc>,
}

impl Cell {
    /// Instance name, unique among siblings.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Definition (type) name, e.g. `"full_adder"` or `"kcm_w8"`.
    #[must_use]
    pub fn type_name(&self) -> &str {
        &self.type_name
    }

    /// Parent cell, `None` for the root.
    #[must_use]
    pub fn parent(&self) -> Option<CellId> {
        self.parent
    }

    /// Child cells in instantiation order.
    #[must_use]
    pub fn children(&self) -> &[CellId] {
        &self.children
    }

    /// The cell's kind.
    #[must_use]
    pub fn kind(&self) -> &CellKind {
        &self.kind
    }

    /// The cell's ports in declaration order.
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Looks up a port by name.
    #[must_use]
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.spec.name == name)
    }

    /// User properties in sorted order.
    #[must_use]
    pub fn properties(&self) -> &BTreeMap<String, PropertyValue> {
        &self.properties
    }

    /// Relative placement attribute, if placed.
    #[must_use]
    pub fn rloc(&self) -> Option<Rloc> {
        self.rloc
    }

    /// `true` when this cell is a technology primitive.
    #[must_use]
    pub fn is_primitive(&self) -> bool {
        matches!(self.kind, CellKind::Primitive(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_spec_constructors() {
        let i = PortSpec::input("a", 4);
        let o = PortSpec::output("y", 1);
        let b = PortSpec::inout("pad", 2);
        assert_eq!(i.dir, PortDir::Input);
        assert_eq!(o.dir, PortDir::Output);
        assert_eq!(b.dir, PortDir::Inout);
        assert_eq!(
            format!("{} {} {}", i.dir, o.dir, b.dir),
            "input output inout"
        );
    }

    #[test]
    fn primitive_display() {
        let p = Primitive::with_init("virtex", "lut4", 0x6996);
        assert_eq!(p.to_string(), "virtex:lut4 (INIT=0x6996)");
        let q = Primitive::new("virtex", "fdce");
        assert_eq!(q.to_string(), "virtex:fdce");
    }

    #[test]
    fn rloc_offsets_compose() {
        let a = Rloc::new(1, 2);
        let b = Rloc::new(3, -1);
        assert_eq!(a.offset(b), Rloc::new(4, 1));
        assert_eq!(a.to_string(), "R1C2");
    }

    #[test]
    fn property_conversions() {
        assert_eq!(PropertyValue::from("x"), PropertyValue::Text("x".into()));
        assert_eq!(PropertyValue::from(7i64), PropertyValue::Int(7));
        assert_eq!(PropertyValue::from(true), PropertyValue::Bool(true));
        assert_eq!(PropertyValue::from(7i64).to_string(), "7");
    }
}
