//! The multiplexing client: many logical sessions over one socket.
//!
//! A [`MuxClient`] speaks the `Mux*` envelopes to a server running the
//! event-loop transport: it opens logical channels (each backed by its
//! own server-side [`WireSession`](crate::WireSession) and registry
//! slot), then issues requests on any of them over the single TCP
//! connection. Because the server handles a connection's frames in
//! order and queues replies in order, answers arrive in exactly the
//! order the questions were sent — so the client keeps one FIFO of
//! outstanding expectations and never needs per-request bookkeeping.
//!
//! That ordering is also the batching lever: [`MuxClient::call_batch`]
//! and [`MuxClient::open_many`] write every request of a batch as one
//! gathered buffer (one syscall), then collect the answers — the
//! pipelining that lets a single connection carry thousands of logical
//! sessions at throughput a thread-per-session client cannot reach.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::client::ClientConfig;
use crate::envelope::{Envelope, VERSION};
use crate::error::WireError;
use crate::frame::{read_frame_deadline, write_frame, DEFAULT_MAX_FRAME};
use crate::stats::WireStats;

/// What the client is waiting for, in send order.
#[derive(Debug)]
enum Expect {
    Open {
        channel: u32,
    },
    Call {
        channel: u32,
        id: u64,
        endpoint: u16,
        bytes_in: u64,
    },
}

/// One answer pulled off the wire.
#[derive(Debug)]
enum Answer {
    Opened { channel: u32 },
    OpenFailed { error: WireError },
    Response { result: Result<Vec<u8>, WireError> },
}

/// A client driving many logical sessions over one connection.
#[derive(Debug)]
pub struct MuxClient {
    stream: TcpStream,
    session: u64,
    recv_cap: u32,
    send_cap: u32,
    read_timeout: Option<Duration>,
    next_id: u64,
    next_channel: u32,
    pending: VecDeque<Expect>,
    stats: Arc<WireStats>,
    closed: bool,
}

impl MuxClient {
    /// Connects and performs the hello handshake. The config token
    /// authenticates the connection's implicit channel-0 session;
    /// each opened channel carries its own token.
    ///
    /// # Errors
    ///
    /// Fails on connection refusal, handshake protocol violations, or
    /// a typed refusal.
    pub fn connect(addr: SocketAddr, config: &ClientConfig) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let opt = |d: Duration| if d.is_zero() { None } else { Some(d) };
        let read_timeout = opt(config.read_timeout);
        stream.set_write_timeout(opt(config.write_timeout))?;
        let recv_cap = if config.max_frame == 0 {
            DEFAULT_MAX_FRAME
        } else {
            config.max_frame
        };
        let hello = Envelope::Hello {
            version: VERSION,
            max_frame: recv_cap,
            token: config.token.clone(),
        };
        write_frame(&stream, &hello.encode(), recv_cap)?;
        let ack = read_frame_deadline(&stream, recv_cap, read_timeout)?;
        let (session, server_cap) = match Envelope::decode(&ack)? {
            Envelope::HelloAck { session, max_frame } => (session, max_frame),
            Envelope::Error { code, message, .. } => {
                return Err(WireError::Remote { code, message })
            }
            _ => return Err(WireError::protocol("expected hello-ack envelope")),
        };
        Ok(MuxClient {
            stream,
            session,
            recv_cap,
            send_cap: server_cap.min(recv_cap).max(256),
            read_timeout,
            next_id: 1,
            next_channel: 1,
            pending: VecDeque::new(),
            stats: Arc::new(WireStats::new()),
            closed: false,
        })
    }

    /// The server-assigned id of the connection's implicit session.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// This client's traffic counters, symmetric with the server's.
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        Arc::clone(&self.stats)
    }

    /// Opens one logical channel (one round trip).
    ///
    /// # Errors
    ///
    /// [`WireError::Remote`] with [`crate::ErrorCode::Busy`] at the
    /// hard cap or [`crate::ErrorCode::Shed`] when a low-priority open
    /// is load-shed — both leave the connection usable. Transport
    /// failures close it.
    pub fn open(&mut self, token: Option<&str>, low_priority: bool) -> Result<u32, WireError> {
        let mut opened = self.open_many(1, token, low_priority)?;
        opened.remove(0)
    }

    /// Opens `count` channels pipelined: every `MuxOpen` goes out in
    /// one gathered write, then the acks are collected in order. Each
    /// element is the channel id or the per-channel refusal (a shed or
    /// busy open fails alone; the others still open).
    ///
    /// # Errors
    ///
    /// A transport-level failure (not a typed per-open refusal).
    pub fn open_many(
        &mut self,
        count: usize,
        token: Option<&str>,
        low_priority: bool,
    ) -> Result<Vec<Result<u32, WireError>>, WireError> {
        self.check_usable()?;
        let mut batch = Vec::new();
        for _ in 0..count {
            let channel = self.next_channel;
            self.next_channel += 1;
            let open = Envelope::MuxOpen {
                channel,
                token: token.map(str::to_owned),
                low_priority,
            };
            append_frame(&mut batch, &open, self.send_cap)?;
            self.pending.push_back(Expect::Open { channel });
        }
        self.send_batch(&batch)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(match self.recv_answer()? {
                Answer::Opened { channel } => Ok(channel),
                Answer::OpenFailed { error } => Err(error),
                Answer::Response { .. } => {
                    self.closed = true;
                    return Err(WireError::protocol("response while awaiting open ack"));
                }
            });
        }
        Ok(out)
    }

    /// Issues one request on a channel and waits for its response.
    ///
    /// # Errors
    ///
    /// Typed remote errors leave the channel usable; transport and
    /// protocol failures close the connection.
    pub fn call(&mut self, channel: u32, endpoint: u16, body: &[u8]) -> Result<Vec<u8>, WireError> {
        let mut answers = self.call_batch(&[(channel, endpoint, body.to_vec())])?;
        answers.remove(0)
    }

    /// Issues a batch of `(channel, endpoint, body)` requests as one
    /// gathered write, then collects every response in order. Typed
    /// per-request errors come back in their slot; the batch itself
    /// only fails on transport or protocol breakage.
    ///
    /// # Errors
    ///
    /// A transport-level failure (not a typed per-request error).
    pub fn call_batch(
        &mut self,
        calls: &[(u32, u16, Vec<u8>)],
    ) -> Result<Vec<Result<Vec<u8>, WireError>>, WireError> {
        self.check_usable()?;
        let mut batch = Vec::new();
        for (channel, endpoint, body) in calls {
            let id = self.next_id;
            self.next_id += 1;
            let request = Envelope::MuxRequest {
                channel: *channel,
                id,
                endpoint: *endpoint,
                body: body.clone(),
            };
            append_frame(&mut batch, &request, self.send_cap)?;
            self.pending.push_back(Expect::Call {
                channel: *channel,
                id,
                endpoint: *endpoint,
                bytes_in: body.len() as u64,
            });
        }
        self.send_batch(&batch)?;
        let mut out = Vec::with_capacity(calls.len());
        for _ in 0..calls.len() {
            out.push(match self.recv_answer()? {
                Answer::Response { result } => result,
                Answer::Opened { .. } | Answer::OpenFailed { .. } => {
                    self.closed = true;
                    return Err(WireError::protocol("open ack while awaiting response"));
                }
            });
        }
        Ok(out)
    }

    /// Closes one logical channel (fire and forget; the server frees
    /// its slot on receipt).
    ///
    /// # Errors
    ///
    /// Transport failures only.
    pub fn close_channel(&mut self, channel: u32) -> Result<(), WireError> {
        self.check_usable()?;
        write_frame(
            &self.stream,
            &Envelope::MuxClose { channel }.encode(),
            self.send_cap,
        )
        .inspect_err(|_| self.closed = true)
    }

    /// Sends a polite goodbye and closes the connection (and every
    /// channel on it). Idempotent; also invoked on drop (best effort).
    pub fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            let _ = write_frame(&self.stream, &Envelope::Goodbye.encode(), self.send_cap);
        }
    }

    fn check_usable(&self) -> Result<(), WireError> {
        if self.closed {
            return Err(WireError::protocol("connection already closed"));
        }
        Ok(())
    }

    fn send_batch(&mut self, batch: &[u8]) -> Result<(), WireError> {
        use std::io::Write as _;
        (&mut &self.stream).write_all(batch).map_err(|e| {
            self.closed = true;
            WireError::Io(e)
        })
    }

    /// Reads frames until one answers the front expectation.
    fn recv_answer(&mut self) -> Result<Answer, WireError> {
        loop {
            let frame = read_frame_deadline(&self.stream, self.recv_cap, self.read_timeout)
                .inspect_err(|_| self.closed = true)?;
            let envelope = Envelope::decode(&frame).inspect_err(|_| self.closed = true)?;
            match envelope {
                Envelope::MuxOpenAck { channel, .. } => match self.pending.pop_front() {
                    Some(Expect::Open { channel: want }) if want == channel => {
                        return Ok(Answer::Opened { channel });
                    }
                    _ => return self.desync("unexpected open ack"),
                },
                Envelope::MuxResponse { channel, id, body } => match self.pending.pop_front() {
                    Some(Expect::Call {
                        channel: want_chan,
                        id: want_id,
                        endpoint,
                        bytes_in,
                    }) if want_chan == channel && want_id == id => {
                        self.stats
                            .record(endpoint, bytes_in, body.len() as u64, true);
                        return Ok(Answer::Response { result: Ok(body) });
                    }
                    _ => return self.desync("unexpected response"),
                },
                Envelope::MuxError {
                    channel,
                    id,
                    code,
                    message,
                } => match self.pending.front() {
                    Some(Expect::Open { channel: want }) if *want == channel && id == 0 => {
                        self.pending.pop_front();
                        return Ok(Answer::OpenFailed {
                            error: WireError::Remote { code, message },
                        });
                    }
                    Some(Expect::Call {
                        channel: want_chan,
                        id: want_id,
                        ..
                    }) if *want_chan == channel && *want_id == id => {
                        let Some(Expect::Call {
                            endpoint, bytes_in, ..
                        }) = self.pending.pop_front()
                        else {
                            unreachable!("front was a call expectation");
                        };
                        self.stats.record(endpoint, bytes_in, 0, false);
                        return Ok(Answer::Response {
                            result: Err(WireError::Remote { code, message }),
                        });
                    }
                    _ => return self.desync("unmatched channel error"),
                },
                // The server ended a logical session after a final
                // reply; informational here.
                Envelope::MuxClose { .. } => {}
                Envelope::Error {
                    id: 0,
                    code,
                    message,
                } => {
                    // Connection-level failure (shutdown, refusal).
                    self.closed = true;
                    return Err(WireError::Remote { code, message });
                }
                _ => return self.desync("unexpected envelope kind"),
            }
        }
    }

    fn desync(&mut self, what: &str) -> Result<Answer, WireError> {
        self.closed = true;
        Err(WireError::protocol(format!(
            "{what}: request/response pipeline out of sync"
        )))
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        self.close();
    }
}

fn append_frame(batch: &mut Vec<u8>, envelope: &Envelope, cap: u32) -> Result<(), WireError> {
    let body = envelope.encode();
    if body.len() > cap as usize {
        return Err(WireError::protocol(format!(
            "refusing to send {}-byte frame over the {cap}-byte cap",
            body.len()
        )));
    }
    batch.extend_from_slice(&(body.len() as u32).to_le_bytes());
    batch.extend_from_slice(&body);
    Ok(())
}
