//! Length-prefixed framing with hard size caps and polled deadlines.
//!
//! Every byte on an `ipd` socket travels inside one of these frames:
//! a little-endian `u32` length followed by that many body bytes. The
//! length is validated against a hard cap *before* any allocation, so
//! a hostile prefix cannot reserve memory, and reads can be bounded by
//! deadlines and interrupted by a shutdown flag.

use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::error::WireError;

/// Default maximum frame body size (1 MiB) — a sanity bound against
/// corruption and hostile length prefixes.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Writes one frame as a single buffer (one syscall on a socket).
///
/// # Errors
///
/// Refuses bodies over `max_frame` (the peer would refuse them too)
/// and propagates writer failures.
pub fn write_frame<W: Write>(mut writer: W, body: &[u8], max_frame: u32) -> Result<(), WireError> {
    if body.len() > max_frame as usize {
        return Err(WireError::protocol(format!(
            "refusing to send {}-byte frame over the {max_frame}-byte cap",
            body.len()
        )));
    }
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body);
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Writes one frame whose body is scattered across `parts`, without
/// gathering them into one buffer first: the length header and each
/// part go out through [`Write::write_vectored`], so an `Arc`-shared
/// payload segment is never copied on its way to the socket.
///
/// # Errors
///
/// Refuses bodies over `max_frame` and propagates writer failures.
pub fn write_frame_parts<W: Write>(
    mut writer: W,
    parts: &[&[u8]],
    max_frame: u32,
) -> Result<(), WireError> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    if total > max_frame as usize {
        return Err(WireError::protocol(format!(
            "refusing to send {total}-byte frame over the {max_frame}-byte cap"
        )));
    }
    let header = (total as u32).to_le_bytes();
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(1 + parts.len());
    slices.push(IoSlice::new(&header));
    for part in parts {
        if !part.is_empty() {
            slices.push(IoSlice::new(part));
        }
    }
    write_all_vectored(&mut writer, &slices)?;
    writer.flush()?;
    Ok(())
}

/// Drains a slice list through `write_vectored`, advancing across
/// segment boundaries on short writes.
fn write_all_vectored<W: Write>(writer: &mut W, slices: &[IoSlice<'_>]) -> Result<(), WireError> {
    let mut seg = 0usize;
    let mut off = 0usize;
    while seg < slices.len() {
        // Rebuild the remaining window (first slice may be partial).
        let mut window: Vec<IoSlice<'_>> = Vec::with_capacity(slices.len() - seg);
        window.push(IoSlice::new(&slices[seg][off..]));
        for s in &slices[seg + 1..] {
            window.push(IoSlice::new(s));
        }
        let mut wrote = match writer.write_vectored(&window) {
            Ok(0) => return Err(WireError::Io(ErrorKind::WriteZero.into())),
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        while seg < slices.len() {
            let left = slices[seg].len() - off;
            if wrote < left {
                off += wrote;
                break;
            }
            wrote -= left;
            seg += 1;
            off = 0;
        }
    }
    Ok(())
}

/// Reads one frame from a `TcpStream`, retuning the socket's read
/// timeout each iteration to the *remaining* deadline so a short
/// timeout cannot overshoot by a whole poll increment. `deadline` of
/// `None` blocks until the stream delivers or fails.
///
/// # Errors
///
/// - [`WireError::Deadline`] when the deadline expires.
/// - [`WireError::Protocol`] on an oversized length prefix.
/// - [`WireError::Io`] on transport failures (including EOF).
pub fn read_frame_deadline(
    stream: &TcpStream,
    max_frame: u32,
    deadline: Option<Duration>,
) -> Result<Vec<u8>, WireError> {
    let due = deadline.map(|d| Instant::now() + d);
    let mut len_bytes = [0u8; 4];
    read_exact_deadline(stream, &mut len_bytes, due, "frame header")?;
    let len = u32::from_le_bytes(len_bytes);
    if len > max_frame {
        return Err(WireError::protocol(format!(
            "declared frame of {len} bytes exceeds the {max_frame}-byte cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    read_exact_deadline(stream, &mut body, due, "frame body")?;
    Ok(body)
}

/// Fills `buf` from the stream, tightening the socket read timeout to
/// the time remaining before `due` on every pass.
fn read_exact_deadline(
    stream: &TcpStream,
    buf: &mut [u8],
    due: Option<Instant>,
    during: &'static str,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    if due.is_none() {
        stream.set_read_timeout(None)?;
    }
    while filled < buf.len() {
        if let Some(due) = due {
            let remaining = due.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(WireError::Deadline { during });
            }
            // set_read_timeout(Some(ZERO)) is an error; clamp up.
            stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        }
        match (&mut &*stream).read(&mut buf[filled..]) {
            Ok(0) => return Err(WireError::Io(ErrorKind::UnexpectedEof.into())),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one frame, enforcing the size cap before allocating.
///
/// Stream timeouts (`WouldBlock`/`TimedOut`) surface as
/// [`WireError::Deadline`].
///
/// # Errors
///
/// Fails on I/O errors, timeouts and oversized length prefixes.
pub fn read_frame<R: Read>(reader: R, max_frame: u32) -> Result<Vec<u8>, WireError> {
    match read_frame_polled(reader, max_frame, &Deadlines::blocking(), &|| false)? {
        Some(body) => Ok(body),
        None => Err(WireError::Io(ErrorKind::UnexpectedEof.into())),
    }
}

/// Read-side deadline policy for [`read_frame_polled`].
#[derive(Debug, Clone, Copy)]
pub struct Deadlines {
    /// How long to wait for the *first* byte of a frame (`None` =
    /// forever). An expired idle wait means the peer went quiet.
    pub idle: Option<Duration>,
    /// How long a frame may take to *complete* once its first byte
    /// arrived (`None` = forever). An expired frame wait means the
    /// peer stalled mid-frame — trickle attacks land here.
    pub frame: Option<Duration>,
}

impl Deadlines {
    /// No deadlines: block until the stream delivers or fails.
    #[must_use]
    pub fn blocking() -> Self {
        Deadlines {
            idle: None,
            frame: None,
        }
    }
}

/// Reads one frame from a stream whose read timeout doubles as the
/// poll interval: between short blocking reads, the shutdown flag is
/// consulted and the [`Deadlines`] enforced. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer hung up between frames).
///
/// # Errors
///
/// - [`WireError::Shutdown`] when `should_stop` turns true.
/// - [`WireError::Deadline`] when a deadline expires.
/// - [`WireError::Protocol`] on an oversized length prefix.
/// - [`WireError::Io`] on transport failures (including EOF
///   mid-frame).
pub fn read_frame_polled<R: Read>(
    mut reader: R,
    max_frame: u32,
    deadlines: &Deadlines,
    should_stop: &dyn Fn() -> bool,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_bytes = [0u8; 4];
    if !read_full(
        &mut reader,
        &mut len_bytes,
        true,
        deadlines.idle,
        "frame header",
        should_stop,
    )? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > max_frame {
        return Err(WireError::protocol(format!(
            "declared frame of {len} bytes exceeds the {max_frame}-byte cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    read_full(
        &mut reader,
        &mut body,
        false,
        deadlines.frame,
        "frame body",
        should_stop,
    )?;
    Ok(Some(body))
}

/// Fills `buf` completely. Returns `Ok(false)` only when
/// `eof_ok_before_first` is set and EOF arrives before any byte.
fn read_full<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    eof_ok_before_first: bool,
    limit: Option<Duration>,
    during: &'static str,
    should_stop: &dyn Fn() -> bool,
) -> Result<bool, WireError> {
    let start = Instant::now();
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok_before_first {
                    return Ok(false);
                }
                return Err(WireError::Io(ErrorKind::UnexpectedEof.into()));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if should_stop() {
                    return Err(WireError::Shutdown);
                }
                if let Some(limit) = limit {
                    if start.elapsed() >= limit {
                        return Err(WireError::Deadline { during });
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"hello"
        );
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn scattered_parts_match_a_gathered_write() {
        let mut gathered = Vec::new();
        write_frame(&mut gathered, b"abcdefgh", DEFAULT_MAX_FRAME).unwrap();
        let mut scattered = Vec::new();
        write_frame_parts(
            &mut scattered,
            &[b"abc", b"", b"defg", b"h"],
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        assert_eq!(gathered, scattered);
        // Empty bodies frame identically too.
        let mut empty = Vec::new();
        write_frame_parts(&mut empty, &[], DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(empty, 0u32.to_le_bytes());
        // The cap counts the sum of the parts.
        assert!(write_frame_parts(Vec::new(), &[&[0u8; 9], &[0u8; 8]], 16).is_err());
    }

    /// A writer that accepts at most one byte per call — exercises the
    /// short-write resume path across segment boundaries.
    struct Trickle(Vec<u8>);
    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            self.0.push(buf[0]);
            Ok(1)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_writes_survive_short_writes() {
        let mut gathered = Vec::new();
        write_frame(&mut gathered, b"wxyz", DEFAULT_MAX_FRAME).unwrap();
        let mut out = Trickle(Vec::new());
        write_frame_parts(&mut out, &[b"wx", b"yz"], DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(out.0, gathered);
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(Cursor::new(buf), DEFAULT_MAX_FRAME),
            Err(WireError::Protocol { .. })
        ));
        // Refusing to *send* oversized frames, too.
        let big = vec![0u8; 17];
        assert!(write_frame(Vec::new(), &big, 16).is_err());
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let out = read_frame_polled(
            Cursor::new(Vec::new()),
            DEFAULT_MAX_FRAME,
            &Deadlines::blocking(),
            &|| false,
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        buf.truncate(6); // header + 2 body bytes
        assert!(matches!(
            read_frame(Cursor::new(buf), DEFAULT_MAX_FRAME),
            Err(WireError::Io(_))
        ));
    }

    /// A reader that always times out — deadline and shutdown paths.
    struct AlwaysBlocked;
    impl Read for AlwaysBlocked {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(ErrorKind::WouldBlock.into())
        }
    }

    #[test]
    fn shutdown_flag_interrupts_reads() {
        let out = read_frame_polled(
            AlwaysBlocked,
            DEFAULT_MAX_FRAME,
            &Deadlines::blocking(),
            &|| true,
        );
        assert!(matches!(out, Err(WireError::Shutdown)));
    }

    #[test]
    fn idle_deadline_expires() {
        let deadlines = Deadlines {
            idle: Some(Duration::ZERO),
            frame: None,
        };
        let out = read_frame_polled(AlwaysBlocked, DEFAULT_MAX_FRAME, &deadlines, &|| false);
        assert!(matches!(out, Err(WireError::Deadline { .. })));
    }
}
