//! Length-prefixed framing with hard size caps and polled deadlines.
//!
//! Every byte on an `ipd` socket travels inside one of these frames:
//! a little-endian `u32` length followed by that many body bytes. The
//! length is validated against a hard cap *before* any allocation, so
//! a hostile prefix cannot reserve memory, and reads can be bounded by
//! deadlines and interrupted by a shutdown flag.

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

use crate::error::WireError;

/// Default maximum frame body size (1 MiB) — a sanity bound against
/// corruption and hostile length prefixes.
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Writes one frame as a single buffer (one syscall on a socket).
///
/// # Errors
///
/// Refuses bodies over `max_frame` (the peer would refuse them too)
/// and propagates writer failures.
pub fn write_frame<W: Write>(mut writer: W, body: &[u8], max_frame: u32) -> Result<(), WireError> {
    if body.len() > max_frame as usize {
        return Err(WireError::protocol(format!(
            "refusing to send {}-byte frame over the {max_frame}-byte cap",
            body.len()
        )));
    }
    let mut buf = Vec::with_capacity(4 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(body);
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame, enforcing the size cap before allocating.
///
/// Stream timeouts (`WouldBlock`/`TimedOut`) surface as
/// [`WireError::Deadline`].
///
/// # Errors
///
/// Fails on I/O errors, timeouts and oversized length prefixes.
pub fn read_frame<R: Read>(reader: R, max_frame: u32) -> Result<Vec<u8>, WireError> {
    match read_frame_polled(reader, max_frame, &Deadlines::blocking(), &|| false)? {
        Some(body) => Ok(body),
        None => Err(WireError::Io(ErrorKind::UnexpectedEof.into())),
    }
}

/// Read-side deadline policy for [`read_frame_polled`].
#[derive(Debug, Clone, Copy)]
pub struct Deadlines {
    /// How long to wait for the *first* byte of a frame (`None` =
    /// forever). An expired idle wait means the peer went quiet.
    pub idle: Option<Duration>,
    /// How long a frame may take to *complete* once its first byte
    /// arrived (`None` = forever). An expired frame wait means the
    /// peer stalled mid-frame — trickle attacks land here.
    pub frame: Option<Duration>,
}

impl Deadlines {
    /// No deadlines: block until the stream delivers or fails.
    #[must_use]
    pub fn blocking() -> Self {
        Deadlines {
            idle: None,
            frame: None,
        }
    }
}

/// Reads one frame from a stream whose read timeout doubles as the
/// poll interval: between short blocking reads, the shutdown flag is
/// consulted and the [`Deadlines`] enforced. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer hung up between frames).
///
/// # Errors
///
/// - [`WireError::Shutdown`] when `should_stop` turns true.
/// - [`WireError::Deadline`] when a deadline expires.
/// - [`WireError::Protocol`] on an oversized length prefix.
/// - [`WireError::Io`] on transport failures (including EOF
///   mid-frame).
pub fn read_frame_polled<R: Read>(
    mut reader: R,
    max_frame: u32,
    deadlines: &Deadlines,
    should_stop: &dyn Fn() -> bool,
) -> Result<Option<Vec<u8>>, WireError> {
    let mut len_bytes = [0u8; 4];
    if !read_full(
        &mut reader,
        &mut len_bytes,
        true,
        deadlines.idle,
        "frame header",
        should_stop,
    )? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(len_bytes);
    if len > max_frame {
        return Err(WireError::protocol(format!(
            "declared frame of {len} bytes exceeds the {max_frame}-byte cap"
        )));
    }
    let mut body = vec![0u8; len as usize];
    read_full(
        &mut reader,
        &mut body,
        false,
        deadlines.frame,
        "frame body",
        should_stop,
    )?;
    Ok(Some(body))
}

/// Fills `buf` completely. Returns `Ok(false)` only when
/// `eof_ok_before_first` is set and EOF arrives before any byte.
fn read_full<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    eof_ok_before_first: bool,
    limit: Option<Duration>,
    during: &'static str,
    should_stop: &dyn Fn() -> bool,
) -> Result<bool, WireError> {
    let start = Instant::now();
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 && eof_ok_before_first {
                    return Ok(false);
                }
                return Err(WireError::Io(ErrorKind::UnexpectedEof.into()));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                if should_stop() {
                    return Err(WireError::Shutdown);
                }
                if let Some(limit) = limit {
                    if start.elapsed() >= limit {
                        return Err(WireError::Deadline { during });
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            b"hello"
        );
        assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME),
            Err(WireError::Io(_))
        ));
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(Cursor::new(buf), DEFAULT_MAX_FRAME),
            Err(WireError::Protocol { .. })
        ));
        // Refusing to *send* oversized frames, too.
        let big = vec![0u8; 17];
        assert!(write_frame(Vec::new(), &big, 16).is_err());
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let out = read_frame_polled(
            Cursor::new(Vec::new()),
            DEFAULT_MAX_FRAME,
            &Deadlines::blocking(),
            &|| false,
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        buf.truncate(6); // header + 2 body bytes
        assert!(matches!(
            read_frame(Cursor::new(buf), DEFAULT_MAX_FRAME),
            Err(WireError::Io(_))
        ));
    }

    /// A reader that always times out — deadline and shutdown paths.
    struct AlwaysBlocked;
    impl Read for AlwaysBlocked {
        fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
            Err(ErrorKind::WouldBlock.into())
        }
    }

    #[test]
    fn shutdown_flag_interrupts_reads() {
        let out = read_frame_polled(
            AlwaysBlocked,
            DEFAULT_MAX_FRAME,
            &Deadlines::blocking(),
            &|| true,
        );
        assert!(matches!(out, Err(WireError::Shutdown)));
    }

    #[test]
    fn idle_deadline_expires() {
        let deadlines = Deadlines {
            idle: Some(Duration::ZERO),
            frame: None,
        };
        let out = read_frame_polled(AlwaysBlocked, DEFAULT_MAX_FRAME, &deadlines, &|| false);
        assert!(matches!(out, Err(WireError::Deadline { .. })));
    }
}
