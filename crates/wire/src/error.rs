//! Wire-layer errors and the typed error-frame codes.

use std::fmt;
use std::io;

/// Machine-readable error categories carried by
/// [`Envelope::Error`](crate::Envelope::Error) frames. A peer can act
/// on the code (retry on [`ErrorCode::Busy`], re-authenticate on
/// [`ErrorCode::Unauthorized`]) without parsing the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Malformed envelope or payload bytes.
    Protocol,
    /// Missing or rejected authentication token.
    Unauthorized,
    /// The request named an endpoint the service does not serve.
    UnknownEndpoint,
    /// The server is at its session cap; try again later.
    Busy,
    /// A frame exceeded the negotiated size cap.
    TooLarge,
    /// The server is shutting down.
    Shutdown,
    /// The application handler failed; the message carries its error.
    App,
    /// The request was load-shed: the server is above its shed
    /// threshold and the request (or session open) declared low
    /// priority. Unlike [`ErrorCode::Busy`], the connection survives —
    /// retry later or re-open at normal priority.
    Shed,
}

impl ErrorCode {
    /// Short stable name (used in reports and logs).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Unauthorized => "unauthorized",
            ErrorCode::UnknownEndpoint => "unknown-endpoint",
            ErrorCode::Busy => "busy",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::App => "app",
            ErrorCode::Shed => "shed",
        }
    }

    pub(crate) fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::Unauthorized => 2,
            ErrorCode::UnknownEndpoint => 3,
            ErrorCode::Busy => 4,
            ErrorCode::TooLarge => 5,
            ErrorCode::Shutdown => 6,
            ErrorCode::App => 7,
            ErrorCode::Shed => 8,
        }
    }

    pub(crate) fn from_u16(raw: u16) -> Option<Self> {
        Some(match raw {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::Unauthorized,
            3 => ErrorCode::UnknownEndpoint,
            4 => ErrorCode::Busy,
            5 => ErrorCode::TooLarge,
            6 => ErrorCode::Shutdown,
            7 => ErrorCode::App,
            8 => ErrorCode::Shed,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors raised by the framed transport.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// Socket or pipe failure.
    Io(io::Error),
    /// Malformed bytes: a bad length prefix, an unknown envelope kind,
    /// trailing garbage, or a payload that fails to decode.
    Protocol {
        /// What was wrong.
        reason: String,
    },
    /// The peer reported a typed error frame.
    Remote {
        /// The machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// A read or write missed its deadline.
    Deadline {
        /// What the deadline covered (e.g. `"frame body"`).
        during: &'static str,
    },
    /// The operation was interrupted by a server shutdown.
    Shutdown,
}

impl WireError {
    /// A protocol error with a formatted reason.
    #[must_use]
    pub fn protocol(reason: impl Into<String>) -> Self {
        WireError::Protocol {
            reason: reason.into(),
        }
    }

    /// A typed application error (travels as an error frame).
    #[must_use]
    pub fn app(message: impl Into<String>) -> Self {
        WireError::Remote {
            code: ErrorCode::App,
            message: message.into(),
        }
    }

    /// The error-frame code and message this error maps to when a
    /// server handler returns it: [`WireError::Remote`] passes through
    /// verbatim, protocol errors keep their category, everything else
    /// is reported as [`ErrorCode::App`].
    #[must_use]
    pub fn as_frame(&self) -> (ErrorCode, String) {
        match self {
            WireError::Remote { code, message } => (*code, message.clone()),
            WireError::Protocol { reason } => (ErrorCode::Protocol, reason.clone()),
            WireError::Shutdown => (ErrorCode::Shutdown, "server shutting down".to_owned()),
            other => (ErrorCode::App, other.to_string()),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Protocol { reason } => write!(f, "wire protocol error: {reason}"),
            WireError::Remote { code, message } => write!(f, "remote error [{code}]: {message}"),
            WireError::Deadline { during } => write!(f, "deadline exceeded during {during}"),
            WireError::Shutdown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in [
            ErrorCode::Protocol,
            ErrorCode::Unauthorized,
            ErrorCode::UnknownEndpoint,
            ErrorCode::Busy,
            ErrorCode::TooLarge,
            ErrorCode::Shutdown,
            ErrorCode::App,
            ErrorCode::Shed,
        ] {
            assert_eq!(ErrorCode::from_u16(code.to_u16()), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn frame_mapping_preserves_codes() {
        let e = WireError::Remote {
            code: ErrorCode::Busy,
            message: "full".into(),
        };
        assert_eq!(e.as_frame(), (ErrorCode::Busy, "full".to_owned()));
        let (code, _) = WireError::protocol("bad").as_frame();
        assert_eq!(code, ErrorCode::Protocol);
        let (code, _) = WireError::Deadline { during: "x" }.as_frame();
        assert_eq!(code, ErrorCode::App);
    }
}
