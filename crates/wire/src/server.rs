//! The concurrent multi-session wire server.
//!
//! A [`WireServer`] accepts any number of connections (up to a cap)
//! and serves them through one of two transports selected by
//! [`ServerMode`]: the classic thread-per-session protocol loop, or
//! the readiness-driven event loop in [`crate::evloop`] that
//! multiplexes many logical sessions per connection. Either way each
//! logical session runs a [`WireSession`] opened by the
//! [`WireService`], live sessions are tracked in a
//! [`SessionRegistry`], traffic is counted in a shared [`WireStats`],
//! and shutdown is graceful: in-flight sessions are interrupted at the
//! next poll and joined before [`ServerHandle::shutdown`] returns.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::envelope::{self, Envelope, VERSION};
use crate::error::{ErrorCode, WireError};
use crate::evloop::run_event_loop;
use crate::frame::{
    read_frame_polled, write_frame, write_frame_parts, Deadlines, DEFAULT_MAX_FRAME,
};
use crate::stats::WireStats;

/// Which transport a [`WireServer`] runs its sessions on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// One OS thread per connection (the original transport).
    #[default]
    Threaded,
    /// A single readiness-driven event loop over nonblocking sockets,
    /// multiplexing every connection — and every logical channel on
    /// each connection — on one thread.
    EventLoop,
}

impl ServerMode {
    /// The mode selected by the `IPD_WIRE_MODE` environment variable
    /// (`"evloop"` → [`ServerMode::EventLoop`], anything else →
    /// [`ServerMode::Threaded`]). This is how CI runs the whole test
    /// suite over both transports without code changes.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("IPD_WIRE_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("evloop") => ServerMode::EventLoop,
            _ => ServerMode::Threaded,
        }
    }
}

/// Transport tuning knobs shared by servers and clients.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Hard cap on received frame bodies (checked before allocation).
    pub max_frame: u32,
    /// Maximum concurrent sessions; excess connections are refused
    /// with a [`ErrorCode::Busy`] error frame.
    pub max_sessions: usize,
    /// How long a session may sit idle between requests before it is
    /// closed (`Duration::ZERO` = forever).
    pub idle_timeout: Duration,
    /// How long a started frame may take to complete
    /// (`Duration::ZERO` = forever) — the trickle-attack bound.
    pub frame_timeout: Duration,
    /// Socket write timeout (`Duration::ZERO` = none).
    pub write_timeout: Duration,
    /// How often blocked reads wake to check deadlines and shutdown.
    pub poll_interval: Duration,
    /// Which transport serves the sessions. Defaults to
    /// [`ServerMode::from_env`].
    pub mode: ServerMode,
    /// Soft session cap: above this many active logical sessions new
    /// opens are still admitted but counted as queued
    /// ([`WireStats::sessions_queued`]). `0` disables the tier.
    pub queue_sessions: usize,
    /// Shed threshold: above this many active logical sessions,
    /// *low-priority* channel opens are refused with
    /// [`ErrorCode::Shed`] (the connection survives). `0` disables the
    /// tier. [`WireConfig::max_sessions`] stays the hard refusal cap.
    pub shed_sessions: usize,
    /// Per-connection cap on queued unsent response bytes in the event
    /// loop. A connection whose peer stops reading is not read from
    /// again until its backlog drains below this, so one slow reader
    /// cannot pin the loop's memory or stall other connections.
    pub max_backlog: usize,
    /// Event-loop sleep when no socket made progress in a pass.
    pub evloop_tick: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_frame: DEFAULT_MAX_FRAME,
            max_sessions: 64,
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            mode: ServerMode::from_env(),
            queue_sessions: 0,
            shed_sessions: 0,
            max_backlog: 4 << 20,
            evloop_tick: Duration::from_micros(500),
        }
    }
}

impl WireConfig {
    fn deadlines(&self) -> Deadlines {
        let opt = |d: Duration| if d.is_zero() { None } else { Some(d) };
        Deadlines {
            idle: opt(self.idle_timeout),
            frame: opt(self.frame_timeout),
        }
    }

    fn apply_to(&self, stream: &TcpStream) -> Result<(), WireError> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(self.poll_interval.max(Duration::from_millis(1))))?;
        let write = if self.write_timeout.is_zero() {
            None
        } else {
            Some(self.write_timeout)
        };
        stream.set_write_timeout(write)?;
        Ok(())
    }
}

/// A reply payload: owned bytes built for this response, or a shared
/// reference-counted segment (e.g. a packed bundle from a store) that
/// travels to the socket without ever being copied.
#[derive(Debug, Clone)]
pub enum ReplyBody {
    /// Bytes built for this one response.
    Owned(Vec<u8>),
    /// A shared segment, written zero-copy as its own vectored-write
    /// slice.
    Shared(Arc<[u8]>),
}

impl ReplyBody {
    /// The payload bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        match self {
            ReplyBody::Owned(v) => v,
            ReplyBody::Shared(a) => a,
        }
    }

    /// Payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the payload is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// The payload as owned bytes (copies only the shared variant).
    #[must_use]
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            ReplyBody::Owned(v) => v,
            ReplyBody::Shared(a) => a.to_vec(),
        }
    }
}

/// A successful reply from a session handler.
#[derive(Debug)]
pub struct Reply {
    body: ReplyBody,
    end_session: bool,
}

impl Reply {
    /// A normal reply; the session continues.
    #[must_use]
    pub fn body(body: Vec<u8>) -> Self {
        Reply {
            body: ReplyBody::Owned(body),
            end_session: false,
        }
    }

    /// A normal reply whose payload is a shared segment, served
    /// zero-copy.
    #[must_use]
    pub fn shared(body: Arc<[u8]>) -> Self {
        Reply {
            body: ReplyBody::Shared(body),
            end_session: false,
        }
    }

    /// A final reply; the session closes after it is sent.
    #[must_use]
    pub fn end(body: Vec<u8>) -> Self {
        Reply {
            body: ReplyBody::Owned(body),
            end_session: true,
        }
    }

    /// The reply payload.
    #[must_use]
    pub fn payload(&self) -> &ReplyBody {
        &self.body
    }

    /// Whether the session closes after this reply is sent.
    #[must_use]
    pub fn ends_session(&self) -> bool {
        self.end_session
    }

    pub(crate) fn into_parts(self) -> (ReplyBody, bool) {
        (self.body, self.end_session)
    }
}

/// Per-connection request handler state.
pub trait WireSession: Send {
    /// Handles one request payload for an endpoint.
    ///
    /// # Errors
    ///
    /// Errors are sent to the peer as typed error frames (via
    /// [`WireError::as_frame`]); the session survives them.
    fn handle(&mut self, endpoint: u16, body: &[u8]) -> Result<Reply, WireError>;
}

/// A connection-scoped service: opens one [`WireSession`] per
/// accepted connection.
pub trait WireService: Send + Sync {
    /// Opens a session for a newly accepted connection. The `token` is
    /// the authentication token from the client's hello frame.
    ///
    /// # Errors
    ///
    /// An error refuses the connection with a typed error frame.
    fn open_session(
        &self,
        peer: SocketAddr,
        token: Option<&str>,
    ) -> Result<Box<dyn WireSession>, WireError>;

    /// Display name for an endpoint id (stats reports).
    fn endpoint_name(&self, endpoint: u16) -> String {
        format!("endpoint-{endpoint:#06x}")
    }
}

/// One live session's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// Server-assigned session id.
    pub id: u64,
    /// The peer's socket address.
    pub peer: SocketAddr,
}

/// The live-session table: who is connected, under a connection cap.
#[derive(Debug)]
pub struct SessionRegistry {
    next: AtomicU64,
    served: AtomicU64,
    max_sessions: usize,
    active: Mutex<HashMap<u64, SessionInfo>>,
}

impl SessionRegistry {
    fn new(max_sessions: usize) -> Self {
        SessionRegistry {
            next: AtomicU64::new(1),
            served: AtomicU64::new(0),
            max_sessions: max_sessions.max(1),
            active: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a new session, or `None` at the connection cap.
    pub(crate) fn register(&self, peer: SocketAddr) -> Option<u64> {
        let mut active = self.active.lock().expect("registry lock");
        if active.len() >= self.max_sessions {
            return None;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        active.insert(id, SessionInfo { id, peer });
        Some(id)
    }

    pub(crate) fn unregister(&self, id: u64) {
        if self
            .active
            .lock()
            .expect("registry lock")
            .remove(&id)
            .is_some()
        {
            self.served.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Currently connected sessions, sorted by id.
    #[must_use]
    pub fn active(&self) -> Vec<SessionInfo> {
        let mut rows: Vec<SessionInfo> = self
            .active
            .lock()
            .expect("registry lock")
            .values()
            .copied()
            .collect();
        rows.sort_unstable_by_key(|s| s.id);
        rows
    }

    /// Number of currently connected sessions.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.lock().expect("registry lock").len()
    }

    /// Sessions that have connected and finished.
    #[must_use]
    pub fn sessions_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }
}

/// A bound, not-yet-started wire server.
#[derive(Debug)]
pub struct WireServer {
    listener: TcpListener,
    addr: SocketAddr,
    config: WireConfig,
    stats: Arc<WireStats>,
    registry: Arc<SessionRegistry>,
}

impl WireServer {
    /// Binds on an ephemeral loopback port.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: WireConfig) -> Result<Self, WireError> {
        Self::bind_addr("127.0.0.1:0", config)
    }

    /// Binds on an explicit address.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_addr(addr: &str, config: WireConfig) -> Result<Self, WireError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(SessionRegistry::new(config.max_sessions));
        Ok(WireServer {
            listener,
            addr,
            config,
            stats: Arc::new(WireStats::new()),
            registry,
        })
    }

    /// The bound address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared traffic counters.
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        Arc::clone(&self.stats)
    }

    /// The live-session table.
    #[must_use]
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry)
    }

    /// Accepts and serves exactly one connection on the current
    /// thread, then returns; the server (address, stats, registry)
    /// stays usable. This is the single-shot path legacy callers
    /// build on.
    ///
    /// # Errors
    ///
    /// Propagates accept failures; protocol failures inside the
    /// session are reported to the peer and end the session normally.
    pub fn serve_next(&self, service: &dyn WireService) -> Result<(), WireError> {
        let (stream, peer) = self.listener.accept()?;
        let Some(id) = self.registry.register(peer) else {
            self.stats.note_session_refused();
            refuse(&stream, &self.config);
            return Err(WireError::Remote {
                code: ErrorCode::Busy,
                message: "session cap reached".to_owned(),
            });
        };
        self.stats.note_session_opened();
        let outcome = serve_connection(
            &stream,
            peer,
            id,
            service,
            &self.config,
            &self.stats,
            &|| false,
        );
        self.registry.unregister(id);
        self.stats.note_session_closed();
        outcome
    }

    /// Starts serving on a background thread until
    /// [`ServerHandle::shutdown`]: the thread-per-session accept loop
    /// under [`ServerMode::Threaded`], or the readiness-driven event
    /// loop under [`ServerMode::EventLoop`].
    #[must_use]
    pub fn start(self, service: Arc<dyn WireService>) -> ServerHandle {
        let WireServer {
            listener,
            addr,
            config,
            stats,
            registry,
        } = self;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let registry = Arc::clone(&registry);
            let config = config.clone();
            std::thread::spawn(move || match config.mode {
                ServerMode::Threaded => {
                    accept_loop(&listener, &service, &config, &stats, &registry, &shutdown);
                }
                ServerMode::EventLoop => {
                    run_event_loop(&listener, &service, &config, &stats, &registry, &shutdown);
                }
            })
        };
        ServerHandle {
            addr,
            stats,
            registry,
            shutdown,
            accept: Some(accept),
        }
    }
}

/// Control handle for a running server.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stats: Arc<WireStats>,
    registry: Arc<SessionRegistry>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address clients connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared traffic counters.
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        Arc::clone(&self.stats)
    }

    /// The live-session table.
    #[must_use]
    pub fn registry(&self) -> Arc<SessionRegistry> {
        Arc::clone(&self.registry)
    }

    /// Currently connected sessions.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.registry.active_count()
    }

    /// Stops accepting, interrupts every live session at its next
    /// poll, and joins all session threads.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for join
    /// diagnostics.
    pub fn shutdown(mut self) -> Result<(), WireError> {
        self.request_stop();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        Ok(())
    }

    fn request_stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.request_stop();
            let _ = accept.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<dyn WireService>,
    config: &WireConfig,
    stats: &Arc<WireStats>,
    registry: &Arc<SessionRegistry>,
    shutdown: &Arc<AtomicBool>,
) {
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break; // the shutdown unblock connection
        }
        workers.retain(|w| !w.is_finished());
        let Some(id) = registry.register(peer) else {
            stats.note_session_refused();
            refuse(&stream, config);
            continue;
        };
        stats.note_session_opened();
        let service = Arc::clone(service);
        let config = config.clone();
        let stats = Arc::clone(stats);
        let registry = Arc::clone(registry);
        let shutdown = Arc::clone(shutdown);
        workers.push(std::thread::spawn(move || {
            let _ = serve_connection(&stream, peer, id, &*service, &config, &stats, &|| {
                shutdown.load(Ordering::SeqCst)
            });
            registry.unregister(id);
            stats.note_session_closed();
        }));
    }
    for worker in workers {
        let _ = worker.join();
    }
}

/// Best-effort busy rejection for connections over the cap.
fn refuse(stream: &TcpStream, config: &WireConfig) {
    let _ = config.apply_to(stream);
    let _ = send_envelope(
        stream,
        &Envelope::Error {
            id: 0,
            code: ErrorCode::Busy,
            message: "session cap reached".to_owned(),
        },
        config.max_frame,
    );
}

fn send_envelope(stream: &TcpStream, envelope: &Envelope, cap: u32) -> Result<(), WireError> {
    write_frame(stream, &envelope.encode(), cap)
}

/// Runs the handshake and request loop for one connection.
fn serve_connection(
    stream: &TcpStream,
    peer: SocketAddr,
    session_id: u64,
    service: &dyn WireService,
    config: &WireConfig,
    stats: &WireStats,
    should_stop: &dyn Fn() -> bool,
) -> Result<(), WireError> {
    config.apply_to(stream)?;
    let deadlines = config.deadlines();

    // ---- handshake -------------------------------------------------
    let hello = match read_frame_polled(stream, config.max_frame, &deadlines, should_stop) {
        Ok(Some(body)) => body,
        Ok(None) | Err(WireError::Io(_)) => return Ok(()),
        Err(e) => {
            note_malformed(stream, stats, config, &e);
            return Ok(());
        }
    };
    let (token, client_cap) = match Envelope::decode(&hello) {
        Ok(Envelope::Hello {
            version,
            max_frame,
            token,
        }) if version == VERSION => (token, max_frame),
        Ok(Envelope::Hello { version, .. }) => {
            let e = WireError::protocol(format!("unsupported protocol version {version}"));
            note_malformed(stream, stats, config, &e);
            return Ok(());
        }
        Ok(_) => {
            let e = WireError::protocol("expected hello envelope");
            note_malformed(stream, stats, config, &e);
            return Ok(());
        }
        Err(e) => {
            note_malformed(stream, stats, config, &e);
            return Ok(());
        }
    };
    // Never send the peer more than it declared it accepts.
    let send_cap = client_cap.min(config.max_frame).max(256);
    let mut session = match service.open_session(peer, token.as_deref()) {
        Ok(session) => session,
        Err(e) => {
            let (code, message) = e.as_frame();
            let _ = send_envelope(
                stream,
                &Envelope::Error {
                    id: 0,
                    code,
                    message,
                },
                send_cap,
            );
            return Ok(());
        }
    };
    send_envelope(
        stream,
        &Envelope::HelloAck {
            session: session_id,
            max_frame: config.max_frame,
        },
        send_cap,
    )?;

    // ---- request loop ----------------------------------------------
    loop {
        let body = match read_frame_polled(stream, config.max_frame, &deadlines, should_stop) {
            Ok(Some(body)) => body,
            Ok(None) | Err(WireError::Io(_)) => return Ok(()),
            Err(WireError::Shutdown) => {
                let _ = send_envelope(
                    stream,
                    &Envelope::Error {
                        id: 0,
                        code: ErrorCode::Shutdown,
                        message: "server shutting down".to_owned(),
                    },
                    send_cap,
                );
                return Ok(());
            }
            Err(WireError::Deadline { .. }) => return Ok(()), // idle peer
            Err(e) => {
                // Oversized or garbled framing: the stream can no
                // longer be trusted to be in sync — report and close.
                note_malformed(stream, stats, config, &e);
                return Ok(());
            }
        };
        let envelope = match Envelope::decode(&body) {
            Ok(envelope) => envelope,
            Err(e) => {
                note_malformed(stream, stats, config, &e);
                return Ok(());
            }
        };
        match envelope {
            Envelope::Goodbye => return Ok(()),
            Envelope::Request { id, endpoint, body } => {
                let bytes_in = body.len() as u64;
                match session.handle(endpoint, &body) {
                    Ok(reply) => {
                        let (reply_body, end) = reply.into_parts();
                        let bytes_out = reply_body.len() as u64;
                        let header = envelope::response_header(id, reply_body.len());
                        if (header.len() + reply_body.len()) as u64 > u64::from(send_cap) {
                            stats.record(endpoint, bytes_in, 0, false);
                            send_envelope(
                                stream,
                                &Envelope::Error {
                                    id,
                                    code: ErrorCode::TooLarge,
                                    message: format!(
                                        "response of {bytes_out} bytes exceeds the peer's frame cap"
                                    ),
                                },
                                send_cap,
                            )?;
                        } else {
                            // Record before the write: any response a
                            // client has observed is then guaranteed to
                            // already be in the server totals, so the
                            // two sides reconcile exactly at any
                            // moment. Shared payloads go out as their
                            // own vectored-write slice, uncopied.
                            stats.record(endpoint, bytes_in, bytes_out, true);
                            write_frame_parts(stream, &[&header, reply_body.bytes()], send_cap)?;
                            if end {
                                return Ok(());
                            }
                        }
                    }
                    Err(e) => {
                        stats.record(endpoint, bytes_in, 0, false);
                        let (code, message) = e.as_frame();
                        send_envelope(stream, &Envelope::Error { id, code, message }, send_cap)?;
                    }
                }
            }
            _ => {
                let e = WireError::protocol("unexpected envelope kind mid-session");
                note_malformed(stream, stats, config, &e);
                return Ok(());
            }
        }
    }
}

/// Counts a malformed frame and reports it to the peer (best effort).
fn note_malformed(stream: &TcpStream, stats: &WireStats, config: &WireConfig, error: &WireError) {
    stats.note_protocol_error();
    let (code, message) = error.as_frame();
    let _ = send_envelope(
        stream,
        &Envelope::Error {
            id: 0,
            code,
            message,
        },
        config.max_frame,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_enforces_the_cap() {
        let registry = SessionRegistry::new(2);
        let peer: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let a = registry.register(peer).unwrap();
        let _b = registry.register(peer).unwrap();
        assert!(registry.register(peer).is_none(), "cap of 2");
        assert_eq!(registry.active_count(), 2);
        registry.unregister(a);
        assert_eq!(registry.active_count(), 1);
        assert_eq!(registry.sessions_served(), 1);
        assert!(registry.register(peer).is_some(), "slot freed");
        // Double-unregister is harmless and not double-counted.
        registry.unregister(a);
        assert_eq!(registry.sessions_served(), 1);
    }

    #[test]
    fn config_defaults_are_sane() {
        let config = WireConfig::default();
        assert_eq!(config.max_frame, DEFAULT_MAX_FRAME);
        assert!(config.max_sessions >= 16);
        let deadlines = config.deadlines();
        assert!(deadlines.idle.is_some());
        assert!(deadlines.frame.is_some());
    }
}
