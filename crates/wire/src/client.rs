//! The blocking wire client: handshake, request/response matching,
//! symmetric traffic counters.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::envelope::{Envelope, VERSION};
use crate::error::WireError;
use crate::frame::{read_frame_deadline, write_frame, DEFAULT_MAX_FRAME};
use crate::stats::WireStats;

/// Client-side connection settings.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Authentication token sent in the hello frame (e.g. a customer
    /// id); the service decides what it means.
    pub token: Option<String>,
    /// The largest frame this client accepts; `0` means
    /// [`DEFAULT_MAX_FRAME`]. Both sides send at most the *minimum*
    /// of the two declared caps.
    pub max_frame: u32,
    /// Per-call read timeout (`Duration::ZERO` = none).
    pub read_timeout: Duration,
    /// Socket write timeout (`Duration::ZERO` = none).
    pub write_timeout: Duration,
}

impl ClientConfig {
    /// A config carrying an authentication token.
    #[must_use]
    pub fn with_token(token: impl Into<String>) -> Self {
        ClientConfig {
            token: Some(token.into()),
            ..ClientConfig::default()
        }
    }
}

/// A connected wire session from the client side.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    session: u64,
    next_id: u64,
    /// The cap we enforce on received frames.
    recv_cap: u32,
    /// The cap we respect when sending (server's declared cap, capped
    /// by ours).
    send_cap: u32,
    stats: Arc<WireStats>,
    /// Per-call read budget; each socket wait is tightened to the time
    /// *remaining* under it, so a short timeout cannot overshoot.
    read_timeout: Option<Duration>,
    closed: bool,
}

impl WireClient {
    /// Connects and performs the hello handshake.
    ///
    /// # Errors
    ///
    /// Fails on connection refusal, handshake protocol violations, or
    /// a typed refusal (e.g. [`crate::ErrorCode::Busy`] at the
    /// session cap, surfaced as [`WireError::Remote`]).
    pub fn connect(addr: SocketAddr, config: &ClientConfig) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let opt = |d: Duration| if d.is_zero() { None } else { Some(d) };
        let read_timeout = opt(config.read_timeout);
        stream.set_write_timeout(opt(config.write_timeout))?;
        let recv_cap = if config.max_frame == 0 {
            DEFAULT_MAX_FRAME
        } else {
            config.max_frame
        };
        let hello = Envelope::Hello {
            version: VERSION,
            max_frame: recv_cap,
            token: config.token.clone(),
        };
        write_frame(&stream, &hello.encode(), recv_cap)?;
        let ack = read_frame_deadline(&stream, recv_cap, read_timeout)?;
        let (session, server_cap) = match Envelope::decode(&ack)? {
            Envelope::HelloAck { session, max_frame } => (session, max_frame),
            Envelope::Error { code, message, .. } => {
                return Err(WireError::Remote { code, message })
            }
            _ => return Err(WireError::protocol("expected hello-ack envelope")),
        };
        Ok(WireClient {
            stream,
            session,
            next_id: 1,
            recv_cap,
            send_cap: server_cap.min(recv_cap).max(256),
            stats: Arc::new(WireStats::new()),
            read_timeout,
            closed: false,
        })
    }

    /// The server-assigned session id.
    #[must_use]
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// This client's traffic counters (mirrors the server's view of
    /// this session: `bytes_in` = request bytes sent, `bytes_out` =
    /// response bytes received).
    #[must_use]
    pub fn stats(&self) -> Arc<WireStats> {
        Arc::clone(&self.stats)
    }

    /// Issues one request and waits for its response.
    ///
    /// # Errors
    ///
    /// - [`WireError::Remote`] when the server answers with a typed
    ///   error frame.
    /// - [`WireError::Protocol`] on framing/envelope violations or a
    ///   response id mismatch.
    /// - [`WireError::Io`] / [`WireError::Deadline`] on transport
    ///   failures and read timeouts.
    pub fn call(&mut self, endpoint: u16, body: &[u8]) -> Result<Vec<u8>, WireError> {
        if self.closed {
            return Err(WireError::protocol("session already closed"));
        }
        let id = self.next_id;
        self.next_id += 1;
        let bytes_in = body.len() as u64;
        let request = Envelope::Request {
            id,
            endpoint,
            body: body.to_vec(),
        };
        let outcome = self.round_trip(id, &request);
        match &outcome {
            Ok(response) => self
                .stats
                .record(endpoint, bytes_in, response.len() as u64, true),
            Err(_) => self.stats.record(endpoint, bytes_in, 0, false),
        }
        outcome
    }

    fn round_trip(&mut self, id: u64, request: &Envelope) -> Result<Vec<u8>, WireError> {
        write_frame(&self.stream, &request.encode(), self.send_cap).inspect_err(|_| {
            self.closed = true;
        })?;
        let frame = map_read(
            read_frame_deadline(&self.stream, self.recv_cap, self.read_timeout),
            &mut self.closed,
        )?;
        match Envelope::decode(&frame).inspect_err(|_| self.closed = true)? {
            Envelope::Response { id: got, body } => {
                if got != id {
                    self.closed = true;
                    return Err(WireError::protocol(format!(
                        "response id {got} does not match request id {id}"
                    )));
                }
                Ok(body)
            }
            Envelope::Error {
                id: got,
                code,
                message,
            } => {
                if got != id && got != 0 {
                    self.closed = true;
                    return Err(WireError::protocol(format!(
                        "error frame for id {got} while awaiting {id}"
                    )));
                }
                // Typed app errors leave the session usable; session-
                // level refusals (id 0) end it.
                if got == 0 {
                    self.closed = true;
                }
                Err(WireError::Remote { code, message })
            }
            _ => {
                self.closed = true;
                Err(WireError::protocol("unexpected envelope kind in response"))
            }
        }
    }

    /// Sends a polite goodbye and closes. Idempotent; also invoked on
    /// drop (best effort).
    pub fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            let _ = write_frame(&self.stream, &Envelope::Goodbye.encode(), self.send_cap);
        }
    }
}

/// Any failed read — transport error or timeout — desynchronises
/// request/response matching, so the session must close.
fn map_read(result: Result<Vec<u8>, WireError>, closed: &mut bool) -> Result<Vec<u8>, WireError> {
    if result.is_err() {
        *closed = true;
    }
    result
}

impl Drop for WireClient {
    fn drop(&mut self) {
        self.close();
    }
}
