//! The readiness-driven event-loop transport.
//!
//! One thread serves every connection: the listener and all accepted
//! sockets are switched to nonblocking mode and the loop repeatedly
//! sweeps them — accepting, reading whatever bytes are ready, slicing
//! complete frames out of per-connection buffers, dispatching
//! envelopes, and draining per-connection write queues with vectored
//! writes. When a full sweep makes no progress the loop sleeps for
//! [`WireConfig::evloop_tick`], so an idle server costs microseconds
//! of wakeup, not a thread per session.
//!
//! On top of the plain protocol the loop speaks the `Mux*` envelopes:
//! many logical sessions (channels) ride one TCP connection, each with
//! its own [`WireSession`], registry slot and stats. Admission is
//! graduated rather than binary: below the soft cap opens are plainly
//! accepted; above [`WireConfig::queue_sessions`] they are admitted
//! but counted queued; above [`WireConfig::shed_sessions`]
//! low-priority opens are refused with [`ErrorCode::Shed`] (the
//! connection survives); at [`WireConfig::max_sessions`] everything is
//! refused with [`ErrorCode::Busy`].
//!
//! Replies whose payload is a [`ReplyBody::Shared`] segment are queued
//! as their own write segment: the `Arc` is cloned, never the bytes,
//! and the socket write gathers header and payload with
//! `write_vectored` — the zero-copy path a [`BundleStore`]-backed
//! delivery server takes for packed segments.
//!
//! [`BundleStore`]: ../../ipd_core/store/struct.BundleStore.html

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::envelope::{self, Envelope, VERSION};
use crate::error::{ErrorCode, WireError};
use crate::server::{ReplyBody, SessionRegistry, WireConfig, WireService, WireSession};
use crate::stats::WireStats;

/// Where a new logical session lands in the graduated backpressure
/// ladder, judged against the number of currently active sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admission {
    /// Below every threshold: plain accept.
    Accept,
    /// Above the soft cap: accept, but count as queued.
    Queue,
    /// Above the shed threshold: refuse low-priority opens with
    /// [`ErrorCode::Shed`]; normal-priority opens fall back to
    /// [`Admission::Queue`].
    Shed,
    /// At the hard cap: refuse with [`ErrorCode::Busy`].
    Refuse,
}

fn admission(config: &WireConfig, active: usize) -> Admission {
    if active >= config.max_sessions {
        Admission::Refuse
    } else if config.shed_sessions > 0 && active >= config.shed_sessions {
        Admission::Shed
    } else if config.queue_sessions > 0 && active >= config.queue_sessions {
        Admission::Queue
    } else {
        Admission::Accept
    }
}

/// One queued write segment: bytes built for this connection, or a
/// shared payload written without copying.
enum Seg {
    Owned(Vec<u8>),
    Shared(Arc<[u8]>),
}

impl Seg {
    fn bytes(&self) -> &[u8] {
        match self {
            Seg::Owned(v) => v,
            Seg::Shared(a) => a,
        }
    }
}

/// A connection's pending output: a deque of segments drained with
/// vectored writes; `head_off` is the progress into the front segment.
#[derive(Default)]
struct OutQueue {
    segs: VecDeque<Seg>,
    head_off: usize,
    bytes: usize,
}

/// How many segments one `write_vectored` call gathers.
const WRITEV_BATCH: usize = 16;

impl OutQueue {
    fn push(&mut self, seg: Seg) {
        if seg.bytes().is_empty() {
            return;
        }
        self.bytes += seg.bytes().len();
        self.segs.push_back(seg);
    }

    fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Writes as much as the socket accepts. Returns whether any bytes
    /// moved; errors mean the connection is dead.
    fn flush(&mut self, stream: &TcpStream) -> Result<bool, std::io::Error> {
        let mut progress = false;
        while !self.segs.is_empty() {
            let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(WRITEV_BATCH);
            for (i, seg) in self.segs.iter().take(WRITEV_BATCH).enumerate() {
                let b = seg.bytes();
                slices.push(IoSlice::new(if i == 0 { &b[self.head_off..] } else { b }));
            }
            match (&mut &*stream).write_vectored(&slices) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.consume(n);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(progress)
    }

    fn consume(&mut self, mut n: usize) {
        self.bytes -= n;
        while n > 0 {
            let left = self.segs[0].bytes().len() - self.head_off;
            if n < left {
                self.head_off += n;
                return;
            }
            n -= left;
            self.segs.pop_front();
            self.head_off = 0;
        }
    }
}

/// One logical session riding a connection.
struct Channel {
    session: Box<dyn WireSession>,
    registry_id: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accepted; the hello frame has not arrived yet.
    AwaitHello,
    /// Handshake done; requests flow.
    Open,
    /// No longer reading; drains the write queue, then closes.
    Closing,
}

/// One connection's full state.
struct Conn {
    stream: TcpStream,
    peer: SocketAddr,
    inbuf: Vec<u8>,
    out: OutQueue,
    state: ConnState,
    send_cap: u32,
    /// Open logical sessions; the implicit hello session is channel 0.
    channels: HashMap<u32, Channel>,
    last_activity: Instant,
    frame_started: Option<Instant>,
    close_at: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, peer: SocketAddr, config: &WireConfig) -> Self {
        Conn {
            stream,
            peer,
            inbuf: Vec::new(),
            out: OutQueue::default(),
            state: ConnState::AwaitHello,
            send_cap: config.max_frame,
            channels: HashMap::new(),
            last_activity: Instant::now(),
            frame_started: None,
            close_at: None,
        }
    }

    fn push_envelope(&mut self, envelope: &Envelope) {
        let body = envelope.encode();
        let mut buf = Vec::with_capacity(4 + body.len());
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&body);
        self.out.push(Seg::Owned(buf));
    }

    /// Queues a response whose payload stays in place: one owned
    /// segment for the frame length plus envelope header, then the
    /// payload as its own segment (an `Arc` clone when shared).
    fn push_response(&mut self, header: Vec<u8>, body: ReplyBody) {
        let total = header.len() + body.len();
        let mut head = Vec::with_capacity(4 + header.len());
        head.extend_from_slice(&(total as u32).to_le_bytes());
        head.extend_from_slice(&header);
        self.out.push(Seg::Owned(head));
        match body {
            ReplyBody::Owned(v) => self.out.push(Seg::Owned(v)),
            ReplyBody::Shared(a) => self.out.push(Seg::Shared(a)),
        }
    }

    /// Switches to the draining state; the connection closes once the
    /// write queue empties (or the grace period expires).
    fn begin_close(&mut self, config: &WireConfig) {
        if self.state != ConnState::Closing {
            self.state = ConnState::Closing;
            let grace = if config.write_timeout.is_zero() {
                Duration::from_secs(5)
            } else {
                config.write_timeout
            };
            self.close_at = Some(Instant::now() + grace);
        }
    }
}

/// Shared context threaded through the per-connection handlers.
struct LoopCtx<'a> {
    service: &'a Arc<dyn WireService>,
    config: &'a WireConfig,
    stats: &'a Arc<WireStats>,
    registry: &'a Arc<SessionRegistry>,
}

impl LoopCtx<'_> {
    /// Counts a malformed frame, reports it to the peer and starts
    /// draining the connection — the stream can no longer be trusted
    /// to be in sync.
    fn malformed(&self, conn: &mut Conn, error: &WireError) {
        self.stats.note_protocol_error();
        let (code, message) = error.as_frame();
        conn.push_envelope(&Envelope::Error {
            id: 0,
            code,
            message,
        });
        conn.begin_close(self.config);
    }

    /// Admits one logical session through the backpressure ladder.
    /// `Ok` carries the registry id; `Err` carries the refusal frame's
    /// code and message.
    fn admit(&self, peer: SocketAddr, low_priority: bool) -> Result<u64, (ErrorCode, String)> {
        let tier = admission(self.config, self.registry.active_count());
        match tier {
            Admission::Refuse => {
                self.stats.note_session_refused();
                return Err((ErrorCode::Busy, "session cap reached".to_owned()));
            }
            Admission::Shed if low_priority => {
                self.stats.note_session_shed();
                return Err((
                    ErrorCode::Shed,
                    "low-priority session shed under load".to_owned(),
                ));
            }
            _ => {}
        }
        let Some(id) = self.registry.register(peer) else {
            // Lost a race to the hard cap.
            self.stats.note_session_refused();
            return Err((ErrorCode::Busy, "session cap reached".to_owned()));
        };
        self.stats.note_session_opened();
        if matches!(tier, Admission::Queue | Admission::Shed) {
            self.stats.note_session_queued();
        }
        Ok(id)
    }

    /// Runs one request through a channel's session, recording stats
    /// before any output is queued so server totals always cover what
    /// a client has observed. Returns whether the reply asked to end
    /// the session.
    fn dispatch(&self, conn: &mut Conn, channel: u32, id: u64, endpoint: u16, body: &[u8]) -> bool {
        let Some(chan) = conn.channels.get_mut(&channel) else {
            let frame = Envelope::MuxError {
                channel,
                id,
                code: ErrorCode::Protocol,
                message: format!("channel {channel} is not open"),
            };
            self.stats.note_protocol_error();
            conn.push_envelope(&frame);
            return false;
        };
        let bytes_in = body.len() as u64;
        let outcome = catch_unwind(AssertUnwindSafe(|| chan.session.handle(endpoint, body)));
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(_) => Err(WireError::app("handler panicked")),
        };
        match outcome {
            Ok(reply) => {
                let (reply_body, end) = reply.into_parts();
                let bytes_out = reply_body.len() as u64;
                let header = if channel == 0 {
                    envelope::response_header(id, reply_body.len())
                } else {
                    envelope::mux_response_header(channel, id, reply_body.len())
                };
                if (header.len() + reply_body.len()) as u64 > u64::from(conn.send_cap) {
                    self.stats.record(endpoint, bytes_in, 0, false);
                    let message =
                        format!("response of {bytes_out} bytes exceeds the peer's frame cap");
                    conn.push_envelope(&error_frame(channel, id, ErrorCode::TooLarge, message));
                    false
                } else {
                    self.stats.record(endpoint, bytes_in, bytes_out, true);
                    conn.push_response(header, reply_body);
                    end
                }
            }
            Err(e) => {
                self.stats.record(endpoint, bytes_in, 0, false);
                let (code, message) = e.as_frame();
                conn.push_envelope(&error_frame(channel, id, code, message));
                false
            }
        }
    }

    fn close_channel(&self, conn: &mut Conn, channel: u32) {
        if let Some(chan) = conn.channels.remove(&channel) {
            self.registry.unregister(chan.registry_id);
            self.stats.note_session_closed();
        }
    }

    /// Handles one decoded envelope. Protocol violations start the
    /// drain; everything else queues output and keeps reading.
    fn handle(&self, conn: &mut Conn, envelope: Envelope) {
        match (conn.state, envelope) {
            (
                ConnState::AwaitHello,
                Envelope::Hello {
                    version,
                    max_frame,
                    token,
                },
            ) => {
                if version != VERSION {
                    let e = WireError::protocol(format!("unsupported protocol version {version}"));
                    self.malformed(conn, &e);
                    return;
                }
                conn.send_cap = max_frame.min(self.config.max_frame).max(256);
                let id = match self.admit(conn.peer, false) {
                    Ok(id) => id,
                    Err((code, message)) => {
                        conn.push_envelope(&Envelope::Error {
                            id: 0,
                            code,
                            message,
                        });
                        conn.begin_close(self.config);
                        return;
                    }
                };
                match self.service.open_session(conn.peer, token.as_deref()) {
                    Ok(session) => {
                        conn.channels.insert(
                            0,
                            Channel {
                                session,
                                registry_id: id,
                            },
                        );
                        conn.state = ConnState::Open;
                        conn.push_envelope(&Envelope::HelloAck {
                            session: id,
                            max_frame: self.config.max_frame,
                        });
                    }
                    Err(e) => {
                        self.registry.unregister(id);
                        self.stats.note_session_closed();
                        let (code, message) = e.as_frame();
                        conn.push_envelope(&Envelope::Error {
                            id: 0,
                            code,
                            message,
                        });
                        conn.begin_close(self.config);
                    }
                }
            }
            (ConnState::Open, Envelope::Goodbye) => {
                conn.begin_close(self.config);
            }
            (ConnState::Open, Envelope::Request { id, endpoint, body }) => {
                if self.dispatch(conn, 0, id, endpoint, &body) {
                    conn.begin_close(self.config);
                }
            }
            (
                ConnState::Open,
                Envelope::MuxOpen {
                    channel,
                    token,
                    low_priority,
                },
            ) => {
                if channel == 0 || conn.channels.contains_key(&channel) {
                    self.stats.note_protocol_error();
                    conn.push_envelope(&Envelope::MuxError {
                        channel,
                        id: 0,
                        code: ErrorCode::Protocol,
                        message: format!("channel {channel} is reserved or already open"),
                    });
                    return;
                }
                let id = match self.admit(conn.peer, low_priority) {
                    Ok(id) => id,
                    Err((code, message)) => {
                        conn.push_envelope(&Envelope::MuxError {
                            channel,
                            id: 0,
                            code,
                            message,
                        });
                        return;
                    }
                };
                match self.service.open_session(conn.peer, token.as_deref()) {
                    Ok(session) => {
                        conn.channels.insert(
                            channel,
                            Channel {
                                session,
                                registry_id: id,
                            },
                        );
                        conn.push_envelope(&Envelope::MuxOpenAck {
                            channel,
                            session: id,
                        });
                    }
                    Err(e) => {
                        self.registry.unregister(id);
                        self.stats.note_session_closed();
                        let (code, message) = e.as_frame();
                        conn.push_envelope(&Envelope::MuxError {
                            channel,
                            id: 0,
                            code,
                            message,
                        });
                    }
                }
            }
            (
                ConnState::Open,
                Envelope::MuxRequest {
                    channel,
                    id,
                    endpoint,
                    body,
                },
            ) => {
                if channel == 0 {
                    let e = WireError::protocol("mux request on the hello channel");
                    self.malformed(conn, &e);
                    return;
                }
                if self.dispatch(conn, channel, id, endpoint, &body) {
                    // The handler ended this logical session: confirm
                    // to the peer, free the slot, keep the connection.
                    conn.push_envelope(&Envelope::MuxClose { channel });
                    self.close_channel(conn, channel);
                }
            }
            (ConnState::Open, Envelope::MuxClose { channel }) => {
                self.close_channel(conn, channel);
            }
            (_, _) => {
                let e = WireError::protocol("unexpected envelope kind mid-session");
                self.malformed(conn, &e);
            }
        }
    }
}

fn error_frame(channel: u32, id: u64, code: ErrorCode, message: String) -> Envelope {
    if channel == 0 {
        Envelope::Error { id, code, message }
    } else {
        Envelope::MuxError {
            channel,
            id,
            code,
            message,
        }
    }
}

/// Slices complete frames out of `conn.inbuf` and handles them.
/// Returns whether at least one frame was handled; protocol failures
/// start the connection drain.
fn drain_frames(ctx: &LoopCtx<'_>, conn: &mut Conn) -> bool {
    let mut consumed = 0usize;
    let mut progress = false;
    loop {
        if conn.state == ConnState::Closing {
            break;
        }
        let avail = conn.inbuf.len() - consumed;
        if avail < 4 {
            break;
        }
        let len = u32::from_le_bytes(
            conn.inbuf[consumed..consumed + 4]
                .try_into()
                .expect("4-byte slice"),
        );
        if len > ctx.config.max_frame {
            let e = WireError::protocol(format!(
                "declared frame of {len} bytes exceeds the {}-byte cap",
                ctx.config.max_frame
            ));
            ctx.malformed(conn, &e);
            break;
        }
        let total = 4 + len as usize;
        if avail < total {
            break;
        }
        let frame = &conn.inbuf[consumed + 4..consumed + total];
        match Envelope::decode(frame) {
            Ok(envelope) => ctx.handle(conn, envelope),
            Err(e) => ctx.malformed(conn, &e),
        }
        consumed += total;
        progress = true;
    }
    if consumed > 0 {
        conn.inbuf.drain(..consumed);
    }
    conn.frame_started = if conn.inbuf.is_empty() {
        None
    } else if conn.frame_started.is_some() {
        conn.frame_started
    } else {
        Some(Instant::now())
    };
    progress
}

/// One sweep over a single connection: flush, read, parse, deadline
/// checks, flush again. Returns `false` when the connection is done
/// and must be torn down.
fn serve_conn_pass(
    ctx: &LoopCtx<'_>,
    conn: &mut Conn,
    scratch: &mut [u8],
    progress: &mut bool,
) -> bool {
    // Drain pending output first: readiness to write is the cheapest
    // progress to make.
    match conn.out.flush(&conn.stream) {
        Ok(moved) => *progress |= moved,
        Err(_) => return false,
    }
    if conn.state == ConnState::Closing {
        if conn.out.is_empty() {
            return false;
        }
        return conn.close_at.is_none_or(|due| Instant::now() < due);
    }
    // Backpressure: a peer that stops reading stops being read. Its
    // requests wait in the socket until the backlog drains, so one
    // slow reader cannot balloon the queue or stall other connections.
    if conn.out.bytes <= ctx.config.max_backlog {
        loop {
            match (&mut &conn.stream).read(scratch) {
                Ok(0) => {
                    // Peer hung up. Parity with the threaded loop: a
                    // clean EOF ends the session without ceremony.
                    return false;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = Instant::now();
                    *progress = true;
                    if n < scratch.len() {
                        break;
                    }
                    // A full scratch buffer may mean more is ready,
                    // but cap the inbuf so one firehose connection
                    // cannot starve the sweep.
                    if conn.inbuf.len() >= scratch.len() * 4 {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return false,
            }
        }
    }
    *progress |= drain_frames(ctx, conn);
    // Deadlines, in parity with the threaded loop: an idle peer is
    // closed quietly, a mid-frame stall (trickle attack) likewise.
    if conn.state != ConnState::Closing {
        let idle = ctx.config.idle_timeout;
        if !idle.is_zero() && conn.last_activity.elapsed() >= idle {
            return false;
        }
        let frame = ctx.config.frame_timeout;
        if !frame.is_zero() {
            if let Some(started) = conn.frame_started {
                if started.elapsed() >= frame {
                    return false;
                }
            }
        }
    }
    match conn.out.flush(&conn.stream) {
        Ok(moved) => {
            *progress |= moved;
            if conn.state == ConnState::Closing && conn.out.is_empty() {
                return false;
            }
            true
        }
        Err(_) => false,
    }
}

/// Releases every logical session a finished connection still holds.
fn teardown(ctx: &LoopCtx<'_>, conn: &mut Conn) {
    for (_, chan) in conn.channels.drain() {
        ctx.registry.unregister(chan.registry_id);
        ctx.stats.note_session_closed();
    }
}

/// Runs the event loop until the shutdown flag turns true. This is the
/// body of the server thread under [`crate::ServerMode::EventLoop`].
pub(crate) fn run_event_loop(
    listener: &TcpListener,
    service: &Arc<dyn WireService>,
    config: &WireConfig,
    stats: &Arc<WireStats>,
    registry: &Arc<SessionRegistry>,
    shutdown: &Arc<AtomicBool>,
) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let ctx = LoopCtx {
        service,
        config,
        stats,
        registry,
    };
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let tick = config.evloop_tick.max(Duration::from_micros(50));
    while !shutdown.load(Ordering::SeqCst) {
        let mut progress = false;
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    progress = true;
                    if stream.set_nonblocking(true).is_ok() && stream.set_nodelay(true).is_ok() {
                        conns.push(Conn::new(stream, peer, config));
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let mut i = 0;
        while i < conns.len() {
            if serve_conn_pass(&ctx, &mut conns[i], &mut scratch, &mut progress) {
                i += 1;
            } else {
                let mut conn = conns.swap_remove(i);
                teardown(&ctx, &mut conn);
            }
        }
        if !progress {
            std::thread::sleep(tick);
        }
    }
    // Graceful exit: tell every open connection, give the frames one
    // brief chance to flush, release every session.
    for conn in &mut conns {
        if conn.state != ConnState::Closing {
            conn.push_envelope(&Envelope::Error {
                id: 0,
                code: ErrorCode::Shutdown,
                message: "server shutting down".to_owned(),
            });
        }
        let _ = conn.out.flush(&conn.stream);
    }
    for conn in &mut conns {
        teardown(&ctx, conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_ladder_orders_the_tiers() {
        let config = WireConfig {
            max_sessions: 8,
            queue_sessions: 2,
            shed_sessions: 4,
            ..WireConfig::default()
        };
        assert_eq!(admission(&config, 0), Admission::Accept);
        assert_eq!(admission(&config, 1), Admission::Accept);
        assert_eq!(admission(&config, 2), Admission::Queue);
        assert_eq!(admission(&config, 3), Admission::Queue);
        assert_eq!(admission(&config, 4), Admission::Shed);
        assert_eq!(admission(&config, 7), Admission::Shed);
        assert_eq!(admission(&config, 8), Admission::Refuse);
        // Disabled tiers collapse to accept-or-refuse.
        let plain = WireConfig {
            max_sessions: 2,
            ..WireConfig::default()
        };
        assert_eq!(admission(&plain, 1), Admission::Accept);
        assert_eq!(admission(&plain, 2), Admission::Refuse);
    }

    #[test]
    fn out_queue_consumes_across_segments() {
        let mut q = OutQueue::default();
        q.push(Seg::Owned(vec![1, 2, 3]));
        q.push(Seg::Shared(Arc::from(&[4u8, 5][..])));
        q.push(Seg::Owned(Vec::new())); // empty segments are dropped
        assert_eq!(q.bytes, 5);
        q.consume(2);
        assert_eq!(q.bytes, 3);
        assert_eq!(q.head_off, 2);
        q.consume(2); // crosses the segment boundary
        assert_eq!(q.bytes, 1);
        assert_eq!(q.head_off, 1);
        q.consume(1);
        assert!(q.is_empty());
        assert_eq!(q.bytes, 0);
    }
}
