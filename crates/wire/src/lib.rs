//! `ipd-wire` — the one framed transport under every `ipd` socket.
//!
//! Before this crate, the co-simulation stack and the delivery stack
//! each carried their own ad-hoc framing, limits and timeouts. Now a
//! single layer owns all of it:
//!
//! - [`frame`]: length-prefixed frames with hard size caps validated
//!   *before* allocation, plus polled reads bounded by [`Deadlines`]
//!   and interruptible by a shutdown flag.
//! - [`codec`]: a hardened bounds-checked [`Reader`] and `put_*`
//!   writers shared by every payload encoding.
//! - [`envelope`]: the hello handshake (magic, version, frame-cap
//!   negotiation, optional auth token) and request-id'd
//!   request/response/error envelopes.
//! - [`server`]: a concurrent [`WireServer`] with a
//!   [`SessionRegistry`], connection cap, and graceful shutdown via
//!   [`ServerHandle`]. Two transports, selected by [`ServerMode`]
//!   (and the `IPD_WIRE_MODE` environment variable): the classic
//!   thread-per-session loop, or a readiness-driven event loop over
//!   nonblocking sockets that multiplexes many logical sessions per
//!   connection, applies graduated load-shed tiers instead of a hard
//!   `Busy`, and writes `Arc`-shared payloads zero-copy with vectored
//!   writes.
//! - [`client`]: the blocking [`WireClient`], plus the [`MuxClient`]
//!   that drives many logical sessions over one connection.
//! - [`stats`]: symmetric per-endpoint [`WireStats`] so server totals
//!   reconcile exactly against the sum of client-observed counts.
//!
//! Higher layers (`ipd-cosim`, `ipd-core`) define *what* the payload
//! bytes mean; this crate defines *how* they travel.

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod envelope;
mod error;
mod evloop;
pub mod frame;
pub mod mux;
pub mod server;
pub mod stats;

pub use client::{ClientConfig, WireClient};
pub use envelope::{Envelope, MAGIC, VERSION};
pub use error::{ErrorCode, WireError};
pub use frame::{
    read_frame, read_frame_deadline, read_frame_polled, write_frame, write_frame_parts, Deadlines,
    DEFAULT_MAX_FRAME,
};
pub use mux::MuxClient;
pub use server::{
    Reply, ReplyBody, ServerHandle, ServerMode, SessionInfo, SessionRegistry, WireConfig,
    WireServer, WireService, WireSession,
};
pub use stats::{EndpointStats, WireStats};

// Re-export the reader at the crate root: every payload codec in the
// workspace starts with `ipd_wire::Reader::new(body)`.
pub use codec::Reader;
