//! `ipd-wire` — the one framed transport under every `ipd` socket.
//!
//! Before this crate, the co-simulation stack and the delivery stack
//! each carried their own ad-hoc framing, limits and timeouts. Now a
//! single layer owns all of it:
//!
//! - [`frame`]: length-prefixed frames with hard size caps validated
//!   *before* allocation, plus polled reads bounded by [`Deadlines`]
//!   and interruptible by a shutdown flag.
//! - [`codec`]: a hardened bounds-checked [`Reader`] and `put_*`
//!   writers shared by every payload encoding.
//! - [`envelope`]: the hello handshake (magic, version, frame-cap
//!   negotiation, optional auth token) and request-id'd
//!   request/response/error envelopes.
//! - [`server`]: a concurrent thread-per-session [`WireServer`] with a
//!   [`SessionRegistry`], connection cap, and graceful shutdown via
//!   [`ServerHandle`].
//! - [`client`]: the blocking [`WireClient`].
//! - [`stats`]: symmetric per-endpoint [`WireStats`] so server totals
//!   reconcile exactly against the sum of client-observed counts.
//!
//! Higher layers (`ipd-cosim`, `ipd-core`) define *what* the payload
//! bytes mean; this crate defines *how* they travel.

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod envelope;
mod error;
pub mod frame;
pub mod server;
pub mod stats;

pub use client::{ClientConfig, WireClient};
pub use envelope::{Envelope, MAGIC, VERSION};
pub use error::{ErrorCode, WireError};
pub use frame::{read_frame, read_frame_polled, write_frame, Deadlines, DEFAULT_MAX_FRAME};
pub use server::{
    Reply, ServerHandle, SessionInfo, SessionRegistry, WireConfig, WireServer, WireService,
    WireSession,
};
pub use stats::{EndpointStats, WireStats};

// Re-export the reader at the crate root: every payload codec in the
// workspace starts with `ipd_wire::Reader::new(body)`.
pub use codec::Reader;
