//! Bounded binary codec shared by every protocol riding the wire.
//!
//! Writers are plain helpers over `Vec<u8>`; the [`Reader`] is a
//! hardened cursor: every read is bounds-checked, every declared count
//! or length is capped against the bytes actually present *before* any
//! allocation, and [`Reader::finish`] rejects trailing garbage. This is
//! the one place a hostile peer's declared sizes are contained.

use crate::error::WireError;

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a string with a `u16` length prefix (names, reasons).
///
/// # Panics
///
/// Panics if the string exceeds 65535 bytes — wire names and messages
/// are short by construction; long payloads use [`put_bytes`].
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("wire string over 64 KiB");
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a byte payload with a `u32` length prefix.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    let len = u32::try_from(bytes.len()).expect("wire payload over 4 GiB");
    put_u32(out, len);
    out.extend_from_slice(bytes);
}

/// Appends an optional string: presence flag then the string.
pub fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        Some(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
        None => put_u8(out, 0),
    }
}

/// A bounds-checked cursor over received bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over a received payload.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::protocol(format!(
                "truncated payload: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on truncation.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on truncation.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on truncation.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on truncation.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u16`-prefixed string.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on truncation or invalid UTF-8.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::protocol("string is not UTF-8"))
    }

    /// Reads a `u32`-prefixed byte payload. The declared length is
    /// checked against the remaining bytes before any allocation, so a
    /// hostile prefix cannot trigger a huge reservation.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on truncation.
    pub fn bytes(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads the optional-string encoding of [`put_opt_str`].
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on truncation or a bad presence flag.
    pub fn opt_str(&mut self) -> Result<Option<String>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(WireError::protocol(format!("bad option flag {other}"))),
        }
    }

    /// Validates a declared element count against the bytes remaining:
    /// each element needs at least `min_elem_bytes`, so a count that
    /// could not possibly fit is rejected *before* any
    /// `Vec::with_capacity` runs on it.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] when `count` elements cannot fit.
    pub fn cap_count(&self, count: usize, min_elem_bytes: usize) -> Result<usize, WireError> {
        let fits = self.remaining() / min_elem_bytes.max(1);
        if count > fits {
            return Err(WireError::protocol(format!(
                "declared count {count} exceeds the {fits} that could fit in {} bytes",
                self.remaining()
            )));
        }
        Ok(count)
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] when trailing bytes remain.
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos != self.bytes.len() {
            return Err(WireError::protocol(format!(
                "{} trailing bytes after payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut out = Vec::new();
        put_u8(&mut out, 7);
        put_u16(&mut out, 1234);
        put_u32(&mut out, 777_777);
        put_u64(&mut out, u64::MAX - 3);
        put_str(&mut out, "hello");
        put_bytes(&mut out, &[9, 8, 7]);
        put_opt_str(&mut out, None);
        put_opt_str(&mut out, Some("tok"));
        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 1234);
        assert_eq!(r.u32().unwrap(), 777_777);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), vec![9, 8, 7]);
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.opt_str().unwrap(), Some("tok".to_owned()));
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_rejected() {
        let mut out = Vec::new();
        put_str(&mut out, "abc");
        for len in 0..out.len() {
            let mut r = Reader::new(&out[..len]);
            assert!(r.str().is_err(), "prefix {len}");
        }
        let mut r = Reader::new(&out);
        r.str().unwrap();
        assert!(Reader::new(&out[..2]).finish().is_err());
        r.finish().unwrap();
        let mut with_trailing = out.clone();
        with_trailing.push(0);
        let mut r = Reader::new(&with_trailing);
        r.str().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn hostile_lengths_fail_before_allocation() {
        // A bytes field declaring 4 GiB backed by 2 bytes.
        let mut out = Vec::new();
        put_u32(&mut out, u32::MAX);
        out.extend_from_slice(&[1, 2]);
        assert!(Reader::new(&out).bytes().is_err());
        // A count that cannot possibly fit.
        let r = Reader::new(&[0u8; 16]);
        assert!(r.cap_count(17, 1).is_err());
        assert_eq!(r.cap_count(4, 4).unwrap(), 4);
        assert!(r.cap_count(5, 4).is_err());
    }
}
