//! Request/response envelopes — what frame bodies contain.
//!
//! Every session starts with a [`Envelope::Hello`] /
//! [`Envelope::HelloAck`] handshake (protocol magic, version, frame
//! cap, optional auth token), then exchanges request-id'd
//! [`Envelope::Request`] / [`Envelope::Response`] pairs. Failures
//! travel as typed [`Envelope::Error`] frames so a client can react to
//! the [`ErrorCode`] without string matching.

use crate::codec::{self, Reader};
use crate::error::{ErrorCode, WireError};

/// Protocol magic carried by the hello frame (`"IPDW"`).
pub const MAGIC: u32 = 0x4950_4457;

/// Wire protocol version.
pub const VERSION: u16 = 1;

/// One envelope — the decoded body of a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Envelope {
    /// Client greeting: magic, version, the client's frame cap, and an
    /// optional authentication token (e.g. a customer id).
    Hello {
        /// Protocol version the client speaks.
        version: u16,
        /// The client's maximum acceptable frame size.
        max_frame: u32,
        /// Optional authentication token, passed to the service.
        token: Option<String>,
    },
    /// Server acceptance: the session id and the server's frame cap.
    /// Both sides thereafter cap frames at the *minimum* of the two.
    HelloAck {
        /// Server-assigned session id (unique per server lifetime).
        session: u64,
        /// The server's maximum acceptable frame size.
        max_frame: u32,
    },
    /// A request: client-chosen id, endpoint selector, payload.
    Request {
        /// Client-chosen id echoed by the response.
        id: u64,
        /// Which endpoint handles the payload.
        endpoint: u16,
        /// Endpoint-specific payload bytes.
        body: Vec<u8>,
    },
    /// A successful response to the request with the same id.
    Response {
        /// The request id this answers.
        id: u64,
        /// Endpoint-specific payload bytes.
        body: Vec<u8>,
    },
    /// A typed failure response (id 0 when no request is at fault,
    /// e.g. a refused connection).
    Error {
        /// The request id this answers, or 0.
        id: u64,
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Polite end of session.
    Goodbye,
    /// Opens a logical channel (a multiplexed session) on this
    /// connection. The channel id is client-chosen and scopes every
    /// `Mux*` envelope that follows; `low_priority` marks the channel
    /// sheddable under load.
    MuxOpen {
        /// Client-chosen channel id, unique on this connection.
        channel: u32,
        /// Optional authentication token, passed to the service.
        token: Option<String>,
        /// Volunteer for load-shedding when the server is saturated.
        low_priority: bool,
    },
    /// Server acceptance of a [`Envelope::MuxOpen`].
    MuxOpenAck {
        /// The channel id being acknowledged.
        channel: u32,
        /// Server-assigned session id for this logical session.
        session: u64,
    },
    /// A request on a logical channel.
    MuxRequest {
        /// Which open channel carries this request.
        channel: u32,
        /// Client-chosen id echoed by the response.
        id: u64,
        /// Which endpoint handles the payload.
        endpoint: u16,
        /// Endpoint-specific payload bytes.
        body: Vec<u8>,
    },
    /// A successful response on a logical channel.
    MuxResponse {
        /// Which open channel carries this response.
        channel: u32,
        /// The request id this answers.
        id: u64,
        /// Endpoint-specific payload bytes.
        body: Vec<u8>,
    },
    /// A typed failure scoped to one channel (the connection and its
    /// other channels survive; id 0 when no request is at fault, e.g.
    /// a refused or shed open).
    MuxError {
        /// Which channel failed.
        channel: u32,
        /// The request id this answers, or 0.
        id: u64,
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Polite end of one logical channel; the connection stays up.
    MuxClose {
        /// Which channel is closing.
        channel: u32,
    },
}

const TAG_HELLO: u8 = 0;
const TAG_HELLO_ACK: u8 = 1;
const TAG_REQUEST: u8 = 2;
const TAG_RESPONSE: u8 = 3;
const TAG_ERROR: u8 = 4;
const TAG_GOODBYE: u8 = 5;
const TAG_MUX_OPEN: u8 = 6;
const TAG_MUX_OPEN_ACK: u8 = 7;
const TAG_MUX_REQUEST: u8 = 8;
const TAG_MUX_RESPONSE: u8 = 9;
const TAG_MUX_ERROR: u8 = 10;
const TAG_MUX_CLOSE: u8 = 11;

/// The envelope header of a [`Envelope::Response`] for a body of
/// `body_len` bytes, without the body: the event loop appends the
/// `Arc`-shared body as its own vectored write segment, so shared
/// payloads are never copied into an encode buffer.
pub(crate) fn response_header(id: u64, body_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(13);
    codec::put_u8(&mut out, TAG_RESPONSE);
    codec::put_u64(&mut out, id);
    codec::put_u32(
        &mut out,
        u32::try_from(body_len).expect("wire payload over 4 GiB"),
    );
    out
}

/// The [`Envelope::MuxResponse`] analogue of [`response_header`].
pub(crate) fn mux_response_header(channel: u32, id: u64, body_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    codec::put_u8(&mut out, TAG_MUX_RESPONSE);
    codec::put_u32(&mut out, channel);
    codec::put_u64(&mut out, id);
    codec::put_u32(
        &mut out,
        u32::try_from(body_len).expect("wire payload over 4 GiB"),
    );
    out
}

impl Envelope {
    /// Encodes the envelope as a frame body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Envelope::Hello {
                version,
                max_frame,
                token,
            } => {
                codec::put_u8(&mut out, TAG_HELLO);
                codec::put_u32(&mut out, MAGIC);
                codec::put_u16(&mut out, *version);
                codec::put_u32(&mut out, *max_frame);
                codec::put_opt_str(&mut out, token.as_deref());
            }
            Envelope::HelloAck { session, max_frame } => {
                codec::put_u8(&mut out, TAG_HELLO_ACK);
                codec::put_u64(&mut out, *session);
                codec::put_u32(&mut out, *max_frame);
            }
            Envelope::Request { id, endpoint, body } => {
                codec::put_u8(&mut out, TAG_REQUEST);
                codec::put_u64(&mut out, *id);
                codec::put_u16(&mut out, *endpoint);
                codec::put_bytes(&mut out, body);
            }
            Envelope::Response { id, body } => {
                codec::put_u8(&mut out, TAG_RESPONSE);
                codec::put_u64(&mut out, *id);
                codec::put_bytes(&mut out, body);
            }
            Envelope::Error { id, code, message } => {
                codec::put_u8(&mut out, TAG_ERROR);
                codec::put_u64(&mut out, *id);
                codec::put_u16(&mut out, code.to_u16());
                codec::put_str(&mut out, message);
            }
            Envelope::Goodbye => codec::put_u8(&mut out, TAG_GOODBYE),
            Envelope::MuxOpen {
                channel,
                token,
                low_priority,
            } => {
                codec::put_u8(&mut out, TAG_MUX_OPEN);
                codec::put_u32(&mut out, *channel);
                codec::put_opt_str(&mut out, token.as_deref());
                codec::put_u8(&mut out, u8::from(*low_priority));
            }
            Envelope::MuxOpenAck { channel, session } => {
                codec::put_u8(&mut out, TAG_MUX_OPEN_ACK);
                codec::put_u32(&mut out, *channel);
                codec::put_u64(&mut out, *session);
            }
            Envelope::MuxRequest {
                channel,
                id,
                endpoint,
                body,
            } => {
                codec::put_u8(&mut out, TAG_MUX_REQUEST);
                codec::put_u32(&mut out, *channel);
                codec::put_u64(&mut out, *id);
                codec::put_u16(&mut out, *endpoint);
                codec::put_bytes(&mut out, body);
            }
            Envelope::MuxResponse { channel, id, body } => {
                codec::put_u8(&mut out, TAG_MUX_RESPONSE);
                codec::put_u32(&mut out, *channel);
                codec::put_u64(&mut out, *id);
                codec::put_bytes(&mut out, body);
            }
            Envelope::MuxError {
                channel,
                id,
                code,
                message,
            } => {
                codec::put_u8(&mut out, TAG_MUX_ERROR);
                codec::put_u32(&mut out, *channel);
                codec::put_u64(&mut out, *id);
                codec::put_u16(&mut out, code.to_u16());
                codec::put_str(&mut out, message);
            }
            Envelope::MuxClose { channel } => {
                codec::put_u8(&mut out, TAG_MUX_CLOSE);
                codec::put_u32(&mut out, *channel);
            }
        }
        out
    }

    /// Decodes a frame body, rejecting unknown tags, bad magic and
    /// trailing garbage.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] on any malformation.
    pub fn decode(bytes: &[u8]) -> Result<Envelope, WireError> {
        let mut r = Reader::new(bytes);
        let envelope = match r.u8()? {
            TAG_HELLO => {
                let magic = r.u32()?;
                if magic != MAGIC {
                    return Err(WireError::protocol(format!(
                        "bad protocol magic {magic:#x}"
                    )));
                }
                Envelope::Hello {
                    version: r.u16()?,
                    max_frame: r.u32()?,
                    token: r.opt_str()?,
                }
            }
            TAG_HELLO_ACK => Envelope::HelloAck {
                session: r.u64()?,
                max_frame: r.u32()?,
            },
            TAG_REQUEST => Envelope::Request {
                id: r.u64()?,
                endpoint: r.u16()?,
                body: r.bytes()?,
            },
            TAG_RESPONSE => Envelope::Response {
                id: r.u64()?,
                body: r.bytes()?,
            },
            TAG_ERROR => {
                let id = r.u64()?;
                let raw = r.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| WireError::protocol(format!("unknown error code {raw}")))?;
                Envelope::Error {
                    id,
                    code,
                    message: r.str()?,
                }
            }
            TAG_GOODBYE => Envelope::Goodbye,
            TAG_MUX_OPEN => {
                let channel = r.u32()?;
                let token = r.opt_str()?;
                let low_priority = match r.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(WireError::protocol(format!("bad priority flag {other}"))),
                };
                Envelope::MuxOpen {
                    channel,
                    token,
                    low_priority,
                }
            }
            TAG_MUX_OPEN_ACK => Envelope::MuxOpenAck {
                channel: r.u32()?,
                session: r.u64()?,
            },
            TAG_MUX_REQUEST => Envelope::MuxRequest {
                channel: r.u32()?,
                id: r.u64()?,
                endpoint: r.u16()?,
                body: r.bytes()?,
            },
            TAG_MUX_RESPONSE => Envelope::MuxResponse {
                channel: r.u32()?,
                id: r.u64()?,
                body: r.bytes()?,
            },
            TAG_MUX_ERROR => {
                let channel = r.u32()?;
                let id = r.u64()?;
                let raw = r.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| WireError::protocol(format!("unknown error code {raw}")))?;
                Envelope::MuxError {
                    channel,
                    id,
                    code,
                    message: r.str()?,
                }
            }
            TAG_MUX_CLOSE => Envelope::MuxClose { channel: r.u32()? },
            other => return Err(WireError::protocol(format!("unknown envelope tag {other}"))),
        };
        r.finish()?;
        Ok(envelope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(env: Envelope) {
        let bytes = env.encode();
        assert_eq!(Envelope::decode(&bytes).expect("decode"), env);
    }

    #[test]
    fn all_envelopes_round_trip() {
        round_trip(Envelope::Hello {
            version: VERSION,
            max_frame: 1 << 20,
            token: None,
        });
        round_trip(Envelope::Hello {
            version: VERSION,
            max_frame: 4096,
            token: Some("acme".into()),
        });
        round_trip(Envelope::HelloAck {
            session: 42,
            max_frame: 1 << 16,
        });
        round_trip(Envelope::Request {
            id: 7,
            endpoint: 0x21,
            body: vec![1, 2, 3],
        });
        round_trip(Envelope::Response {
            id: 7,
            body: Vec::new(),
        });
        round_trip(Envelope::Error {
            id: 9,
            code: ErrorCode::Busy,
            message: "session cap reached".into(),
        });
        round_trip(Envelope::Goodbye);
        round_trip(Envelope::MuxOpen {
            channel: 3,
            token: Some("acme".into()),
            low_priority: true,
        });
        round_trip(Envelope::MuxOpen {
            channel: 0,
            token: None,
            low_priority: false,
        });
        round_trip(Envelope::MuxOpenAck {
            channel: 3,
            session: 99,
        });
        round_trip(Envelope::MuxRequest {
            channel: 3,
            id: 12,
            endpoint: 0x20,
            body: vec![4, 5],
        });
        round_trip(Envelope::MuxResponse {
            channel: 3,
            id: 12,
            body: vec![6],
        });
        round_trip(Envelope::MuxError {
            channel: 3,
            id: 0,
            code: ErrorCode::Shed,
            message: "low priority shed".into(),
        });
        round_trip(Envelope::MuxClose { channel: 3 });
    }

    #[test]
    fn zero_copy_headers_match_the_full_encoding() {
        let body = vec![7u8, 8, 9];
        let mut split = response_header(42, body.len());
        split.extend_from_slice(&body);
        assert_eq!(
            split,
            Envelope::Response {
                id: 42,
                body: body.clone()
            }
            .encode()
        );
        let mut split = mux_response_header(5, 42, body.len());
        split.extend_from_slice(&body);
        assert_eq!(
            split,
            Envelope::MuxResponse {
                channel: 5,
                id: 42,
                body
            }
            .encode()
        );
    }

    #[test]
    fn malformations_rejected() {
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[200]).is_err());
        // Bad magic.
        let mut hello = Envelope::Hello {
            version: VERSION,
            max_frame: 16,
            token: None,
        }
        .encode();
        hello[1] ^= 0xFF;
        assert!(Envelope::decode(&hello).is_err());
        // Trailing garbage.
        let mut bytes = Envelope::Goodbye.encode();
        bytes.push(0);
        assert!(Envelope::decode(&bytes).is_err());
        // Unknown error code.
        let mut err = Envelope::Error {
            id: 1,
            code: ErrorCode::App,
            message: "x".into(),
        }
        .encode();
        err[9] = 0xEE;
        err[10] = 0xEE;
        assert!(Envelope::decode(&err).is_err());
    }

    #[test]
    fn every_truncation_of_every_envelope_is_rejected() {
        let envelopes = [
            Envelope::Hello {
                version: VERSION,
                max_frame: 1024,
                token: Some("tok".into()),
            },
            Envelope::Request {
                id: u64::MAX,
                endpoint: 3,
                body: vec![0; 9],
            },
            Envelope::Error {
                id: 2,
                code: ErrorCode::Protocol,
                message: "m".into(),
            },
            Envelope::MuxOpen {
                channel: 1,
                token: Some("t".into()),
                low_priority: true,
            },
            Envelope::MuxRequest {
                channel: 1,
                id: 3,
                endpoint: 0xE0,
                body: vec![0; 5],
            },
            Envelope::MuxError {
                channel: 1,
                id: 0,
                code: ErrorCode::Busy,
                message: "m".into(),
            },
        ];
        for env in envelopes {
            let bytes = env.encode();
            for len in 0..bytes.len() {
                assert!(Envelope::decode(&bytes[..len]).is_err(), "prefix {len}");
            }
        }
    }
}
