//! Per-endpoint wire counters — the vendor's audit surface.
//!
//! A [`WireStats`] is shared (behind an `Arc`) between every session
//! of a server, and each [`WireClient`](crate::WireClient) keeps its
//! own. Counts are symmetric: a server's `bytes_in` for an endpoint
//! equals the sum of its clients' `bytes_out`, so an operator can
//! reconcile the two sides exactly.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counters for one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Requests handled (or issued, on a client).
    pub requests: u64,
    /// Requests answered with a typed error frame.
    pub errors: u64,
    /// Request payload bytes received (sent, on a client).
    pub bytes_in: u64,
    /// Response payload bytes sent (received, on a client).
    pub bytes_out: u64,
}

impl EndpointStats {
    fn absorb(&mut self, other: &EndpointStats) {
        self.requests += other.requests;
        self.errors += other.errors;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
    }
}

impl fmt::Display for EndpointStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} request(s), {} error(s), {} B in, {} B out",
            self.requests, self.errors, self.bytes_in, self.bytes_out
        )
    }
}

/// Shared request/byte/error counters, per endpoint plus session
/// gauges.
#[derive(Debug, Default)]
pub struct WireStats {
    endpoints: Mutex<HashMap<u16, EndpointStats>>,
    sessions_opened: AtomicU64,
    sessions_refused: AtomicU64,
    sessions_active: AtomicU64,
    sessions_queued: AtomicU64,
    sessions_shed: AtomicU64,
    protocol_errors: AtomicU64,
}

impl WireStats {
    /// Fresh zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        WireStats::default()
    }

    /// Records one completed request on an endpoint.
    pub fn record(&self, endpoint: u16, bytes_in: u64, bytes_out: u64, ok: bool) {
        let mut map = self.endpoints.lock().expect("stats lock");
        let slot = map.entry(endpoint).or_default();
        slot.requests += 1;
        if !ok {
            slot.errors += 1;
        }
        slot.bytes_in += bytes_in;
        slot.bytes_out += bytes_out;
    }

    /// Counters for one endpoint (zeroes when never hit).
    #[must_use]
    pub fn endpoint(&self, endpoint: u16) -> EndpointStats {
        self.endpoints
            .lock()
            .expect("stats lock")
            .get(&endpoint)
            .copied()
            .unwrap_or_default()
    }

    /// All per-endpoint counters, sorted by endpoint id.
    #[must_use]
    pub fn per_endpoint(&self) -> Vec<(u16, EndpointStats)> {
        let mut rows: Vec<(u16, EndpointStats)> = self
            .endpoints
            .lock()
            .expect("stats lock")
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        rows.sort_unstable_by_key(|(k, _)| *k);
        rows
    }

    /// Counters summed over every endpoint.
    #[must_use]
    pub fn totals(&self) -> EndpointStats {
        let mut total = EndpointStats::default();
        for (_, stats) in self.per_endpoint() {
            total.absorb(&stats);
        }
        total
    }

    /// Notes an accepted session. Returns the updated active gauge.
    pub fn note_session_opened(&self) -> u64 {
        self.sessions_opened.fetch_add(1, Ordering::Relaxed);
        self.sessions_active.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Notes a finished session.
    pub fn note_session_closed(&self) {
        self.sessions_active.fetch_sub(1, Ordering::Relaxed);
    }

    /// Notes a connection refused at the session cap.
    pub fn note_session_refused(&self) {
        self.sessions_refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a session admitted above the soft cap (the queue tier of
    /// graduated backpressure): accepted, but flagged so an operator
    /// can see sustained over-subscription.
    pub fn note_session_queued(&self) {
        self.sessions_queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a low-priority open load-shed at the shed tier. Unlike a
    /// refusal the connection survives and may retry.
    pub fn note_session_shed(&self) {
        self.sessions_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a malformed frame or envelope (the flood counter).
    pub fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Sessions accepted over the server's lifetime.
    #[must_use]
    pub fn sessions_opened(&self) -> u64 {
        self.sessions_opened.load(Ordering::Relaxed)
    }

    /// Connections refused at the session cap.
    #[must_use]
    pub fn sessions_refused(&self) -> u64 {
        self.sessions_refused.load(Ordering::Relaxed)
    }

    /// Currently active sessions.
    #[must_use]
    pub fn sessions_active(&self) -> u64 {
        self.sessions_active.load(Ordering::Relaxed)
    }

    /// Sessions admitted above the soft cap (queue tier).
    #[must_use]
    pub fn sessions_queued(&self) -> u64 {
        self.sessions_queued.load(Ordering::Relaxed)
    }

    /// Low-priority opens load-shed at the shed tier.
    #[must_use]
    pub fn sessions_shed(&self) -> u64 {
        self.sessions_shed.load(Ordering::Relaxed)
    }

    /// Malformed frames/envelopes seen.
    #[must_use]
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// A human-readable audit table; `name_of` maps endpoint ids to
    /// display names.
    pub fn report(&self, name_of: impl Fn(u16) -> String) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "sessions: {} opened, {} active, {} queued, {} shed, {} refused; {} protocol error(s)",
            self.sessions_opened(),
            self.sessions_active(),
            self.sessions_queued(),
            self.sessions_shed(),
            self.sessions_refused(),
            self.protocol_errors()
        );
        for (endpoint, stats) in self.per_endpoint() {
            let _ = writeln!(out, "  {:<24} {stats}", name_of(endpoint));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_endpoint() {
        let stats = WireStats::new();
        stats.record(1, 10, 20, true);
        stats.record(1, 5, 0, false);
        stats.record(2, 1, 1, true);
        let e1 = stats.endpoint(1);
        assert_eq!(e1.requests, 2);
        assert_eq!(e1.errors, 1);
        assert_eq!(e1.bytes_in, 15);
        assert_eq!(e1.bytes_out, 20);
        assert_eq!(stats.endpoint(3), EndpointStats::default());
        let total = stats.totals();
        assert_eq!(total.requests, 3);
        assert_eq!(total.bytes_in, 16);
        assert_eq!(stats.per_endpoint().len(), 2);
    }

    #[test]
    fn session_gauges_track() {
        let stats = WireStats::new();
        assert_eq!(stats.note_session_opened(), 1);
        assert_eq!(stats.note_session_opened(), 2);
        stats.note_session_closed();
        assert_eq!(stats.sessions_active(), 1);
        assert_eq!(stats.sessions_opened(), 2);
        stats.note_session_refused();
        stats.note_protocol_error();
        stats.note_session_queued();
        stats.note_session_shed();
        stats.note_session_shed();
        assert_eq!(stats.sessions_queued(), 1);
        assert_eq!(stats.sessions_shed(), 2);
        let report = stats.report(|e| format!("ep{e}"));
        assert!(report.contains("2 opened"));
        assert!(report.contains("1 refused"));
        assert!(report.contains("1 queued"));
        assert!(report.contains("2 shed"));
    }
}
