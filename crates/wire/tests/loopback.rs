//! Loopback integration tests for the wire layer itself: echo
//! round-trips, concurrency, the session cap, malformed-frame floods,
//! and property tests over mutated frames.

use std::net::SocketAddr;
use std::sync::Arc;

use ipd_testutil::XorShift64;
use ipd_wire::{
    ClientConfig, ErrorCode, Reply, WireClient, WireConfig, WireError, WireServer, WireService,
    WireSession,
};

/// Echoes the body back; endpoint 0xE0 reverses, 0xEE errors, 0xFF
/// ends the session.
struct EchoService;

struct EchoSession {
    customer: Option<String>,
}

impl WireService for EchoService {
    fn open_session(
        &self,
        _peer: SocketAddr,
        token: Option<&str>,
    ) -> Result<Box<dyn WireSession>, WireError> {
        if token == Some("banned") {
            return Err(WireError::Remote {
                code: ErrorCode::Unauthorized,
                message: "no license".to_owned(),
            });
        }
        Ok(Box::new(EchoSession {
            customer: token.map(str::to_owned),
        }))
    }
}

impl WireSession for EchoSession {
    fn handle(&mut self, endpoint: u16, body: &[u8]) -> Result<Reply, WireError> {
        match endpoint {
            0xE0 => {
                let mut reversed = body.to_vec();
                reversed.reverse();
                Ok(Reply::body(reversed))
            }
            0xEE => Err(WireError::app("requested failure")),
            0xF0 => Ok(Reply::body(
                self.customer.clone().unwrap_or_default().into_bytes(),
            )),
            0xFF => Ok(Reply::end(Vec::new())),
            _ => Ok(Reply::body(body.to_vec())),
        }
    }
}

fn start_echo(config: WireConfig) -> ipd_wire::ServerHandle {
    WireServer::bind(config)
        .expect("bind")
        .start(Arc::new(EchoService))
}

#[test]
fn echo_round_trip_and_typed_errors() {
    let handle = start_echo(WireConfig::default());
    let mut client = WireClient::connect(handle.addr(), &ClientConfig::default()).expect("connect");
    assert_eq!(client.call(0x01, b"hello").unwrap(), b"hello");
    assert_eq!(client.call(0xE0, b"abc").unwrap(), b"cba");
    // A typed app error leaves the session usable.
    match client.call(0xEE, b"x") {
        Err(WireError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::App);
            assert!(message.contains("requested failure"));
        }
        other => panic!("expected remote error, got {other:?}"),
    }
    assert_eq!(client.call(0x01, b"still alive").unwrap(), b"still alive");
    client.close();
    handle.shutdown().unwrap();
}

#[test]
fn auth_token_reaches_the_service_and_refusals_are_typed() {
    let handle = start_echo(WireConfig::default());
    let mut client =
        WireClient::connect(handle.addr(), &ClientConfig::with_token("acme")).expect("connect");
    assert_eq!(client.call(0xF0, b"").unwrap(), b"acme");
    match WireClient::connect(handle.addr(), &ClientConfig::with_token("banned")) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Unauthorized),
        other => panic!("expected unauthorized refusal, got {other:?}"),
    }
    handle.shutdown().unwrap();
}

#[test]
fn sixteen_concurrent_sessions_echo_correctly_and_stats_reconcile() {
    let handle = start_echo(WireConfig::default());
    let addr = handle.addr();
    let workers: Vec<_> = (0..16u64)
        .map(|lane| {
            std::thread::spawn(move || {
                let mut rng = XorShift64::new(0xC0FFEE ^ lane);
                let mut client =
                    WireClient::connect(addr, &ClientConfig::default()).expect("connect");
                for _ in 0..20 {
                    let len = rng.below(512) as usize;
                    let body = rng.bytes(len);
                    let mut expect = body.clone();
                    let endpoint = if rng.bool() { 0x01 } else { 0xE0 };
                    if endpoint == 0xE0 {
                        expect.reverse();
                    }
                    assert_eq!(client.call(endpoint, &body).unwrap(), expect);
                }
                let totals = client.stats().totals();
                client.close();
                totals
            })
        })
        .collect();
    let mut client_requests = 0u64;
    let mut client_bytes_in = 0u64;
    let mut client_bytes_out = 0u64;
    for worker in workers {
        let totals = worker.join().expect("worker");
        client_requests += totals.requests;
        client_bytes_in += totals.bytes_in;
        client_bytes_out += totals.bytes_out;
    }
    // Let the server finish recording the final requests.
    let stats = handle.stats();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while stats.totals().requests < client_requests && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let server = stats.totals();
    assert_eq!(server.requests, client_requests);
    assert_eq!(server.bytes_in, client_bytes_in);
    assert_eq!(server.bytes_out, client_bytes_out);
    assert_eq!(server.errors, 0);
    assert_eq!(stats.sessions_opened(), 16);
    handle.shutdown().unwrap();
}

#[test]
fn session_cap_refuses_with_busy_and_frees_up() {
    let config = WireConfig {
        max_sessions: 2,
        ..WireConfig::default()
    };
    let handle = start_echo(config);
    let mut a = WireClient::connect(handle.addr(), &ClientConfig::default()).expect("a");
    let b = WireClient::connect(handle.addr(), &ClientConfig::default()).expect("b");
    // Make sure both sessions are registered before probing the cap.
    assert_eq!(a.call(0x01, b"warm").unwrap(), b"warm");
    match WireClient::connect(handle.addr(), &ClientConfig::default()) {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected busy refusal, got {other:?}"),
    }
    assert!(handle.stats().sessions_refused() >= 1);
    drop(b);
    // A freed slot admits a new session (registry drains asynchronously).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    let admitted = loop {
        match WireClient::connect(handle.addr(), &ClientConfig::default()) {
            Ok(client) => break Some(client),
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(_) => break None,
        }
    };
    assert!(admitted.is_some(), "slot never freed");
    handle.shutdown().unwrap();
}

#[test]
fn malformed_floods_do_not_stall_healthy_sessions() {
    use std::io::Write as _;
    let handle = start_echo(WireConfig::default());
    let addr = handle.addr();
    // A healthy client working throughout the flood.
    let good = std::thread::spawn(move || {
        let mut client = WireClient::connect(addr, &ClientConfig::default()).expect("connect");
        for i in 0..50u32 {
            let body = i.to_le_bytes();
            assert_eq!(client.call(0x01, &body).unwrap(), body);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        client.close();
    });
    let mut rng = XorShift64::new(0xBAD);
    for round in 0..30 {
        let mut socket = std::net::TcpStream::connect(addr).expect("connect");
        match round % 3 {
            0 => {
                // Hostile length prefix: declares 4 GiB.
                let _ = socket.write_all(&u32::MAX.to_le_bytes());
            }
            1 => {
                // Random garbage of random length.
                let len = 1 + rng.below(64) as usize;
                let junk = rng.bytes(len);
                let _ = socket.write_all(&junk);
            }
            _ => {
                // A truncated frame: header promises more than is sent.
                let _ = socket.write_all(&100u32.to_le_bytes());
                let _ = socket.write_all(&[1, 2, 3]);
            }
        }
        drop(socket);
    }
    good.join().expect("healthy client survived the flood");
    handle.shutdown().unwrap();
}

#[test]
fn property_mutated_hello_frames_never_panic_the_server() {
    use std::io::Write as _;
    let handle = start_echo(WireConfig::default());
    let addr = handle.addr();
    let hello = ipd_wire::Envelope::Hello {
        version: ipd_wire::VERSION,
        max_frame: 4096,
        token: Some("acme".to_owned()),
    }
    .encode();
    ipd_testutil::check_n("mutated hello frames", 60, |rng| {
        let mut frame = Vec::new();
        ipd_wire::write_frame(&mut frame, &hello, 4096).expect("encode");
        match rng.below(3) {
            0 => {
                // Bit flip anywhere in the frame.
                let i = rng.index(frame.len());
                frame[i] ^= 1 << rng.below(8);
            }
            1 => {
                // Truncate.
                let keep = rng.index(frame.len());
                frame.truncate(keep);
            }
            _ => {
                // Append trailing garbage.
                let len = 1 + rng.below(16) as usize;
                let junk = rng.bytes(len);
                frame.extend_from_slice(&junk);
            }
        }
        let mut socket = std::net::TcpStream::connect(addr).expect("connect");
        let _ = socket.write_all(&frame);
        drop(socket);
        // The server survives if a fresh, healthy session still works.
        let mut client = WireClient::connect(addr, &ClientConfig::default()).expect("reconnect");
        assert_eq!(client.call(0x01, b"ping").expect("server alive"), b"ping");
    });
    handle.shutdown().unwrap();
}

#[test]
fn end_session_reply_closes_after_sending() {
    let handle = start_echo(WireConfig::default());
    let mut client = WireClient::connect(handle.addr(), &ClientConfig::default()).expect("connect");
    assert_eq!(client.call(0xFF, b"").unwrap(), b"");
    // The server hung up; the next call fails rather than hanging.
    assert!(client.call(0x01, b"late").is_err());
    handle.shutdown().unwrap();
}

#[test]
fn serve_next_handles_exactly_one_connection() {
    let server = WireServer::bind(WireConfig::default()).expect("bind");
    let addr = server.addr();
    let worker = std::thread::spawn(move || {
        server.serve_next(&EchoService).expect("serve one");
        server
    });
    let mut client = WireClient::connect(addr, &ClientConfig::default()).expect("connect");
    assert_eq!(client.call(0x01, b"one-shot").unwrap(), b"one-shot");
    client.close();
    let server = worker.join().expect("server thread");
    assert_eq!(server.stats().totals().requests, 1);
    assert_eq!(server.registry().sessions_served(), 1);
}

#[test]
fn shutdown_interrupts_idle_sessions() {
    let handle = start_echo(WireConfig::default());
    let mut client = WireClient::connect(handle.addr(), &ClientConfig::default()).expect("connect");
    assert_eq!(client.call(0x01, b"x").unwrap(), b"x");
    // Shutdown while the session sits idle: must not hang on join.
    handle.shutdown().unwrap();
}
