//! Event-loop transport integration tests: plain clients over the
//! readiness loop, multiplexed channels, the graduated load-shed
//! ladder (with exact stats reconciliation), head-of-line isolation
//! under a slow reader, and the client deadline regression.

use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ipd_wire::{
    ClientConfig, Envelope, ErrorCode, MuxClient, Reply, ServerMode, WireClient, WireConfig,
    WireError, WireServer, WireService, WireSession, VERSION,
};

/// Echoes the body back; endpoint 0xE0 reverses, 0xEE errors, 0xF0
/// returns the session token, 0xFF ends the session.
struct EchoService;

struct EchoSession {
    customer: Option<String>,
}

impl WireService for EchoService {
    fn open_session(
        &self,
        _peer: SocketAddr,
        token: Option<&str>,
    ) -> Result<Box<dyn WireSession>, WireError> {
        if token == Some("banned") {
            return Err(WireError::Remote {
                code: ErrorCode::Unauthorized,
                message: "no license".to_owned(),
            });
        }
        Ok(Box::new(EchoSession {
            customer: token.map(str::to_owned),
        }))
    }
}

impl WireSession for EchoSession {
    fn handle(&mut self, endpoint: u16, body: &[u8]) -> Result<Reply, WireError> {
        match endpoint {
            0xE0 => {
                let mut reversed = body.to_vec();
                reversed.reverse();
                Ok(Reply::body(reversed))
            }
            0xEE => Err(WireError::app("requested failure")),
            0xF0 => Ok(Reply::body(
                self.customer.clone().unwrap_or_default().into_bytes(),
            )),
            0xFF => Ok(Reply::end(Vec::new())),
            _ => Ok(Reply::body(body.to_vec())),
        }
    }
}

fn evloop_config() -> WireConfig {
    WireConfig {
        mode: ServerMode::EventLoop,
        ..WireConfig::default()
    }
}

fn start_echo(config: WireConfig) -> ipd_wire::ServerHandle {
    WireServer::bind(config)
        .expect("bind")
        .start(Arc::new(EchoService))
}

/// The plain (non-mux) client behaves identically on the event loop:
/// echo, typed app errors that leave the session usable, the token
/// path, and the end-session reply that hangs up after sending.
#[test]
fn plain_client_rides_the_event_loop_unchanged() {
    let handle = start_echo(evloop_config());
    let mut client =
        WireClient::connect(handle.addr(), &ClientConfig::with_token("acme")).expect("connect");
    assert_eq!(client.call(0x01, b"hello").unwrap(), b"hello");
    assert_eq!(client.call(0xE0, b"abc").unwrap(), b"cba");
    assert_eq!(client.call(0xF0, b"").unwrap(), b"acme");
    match client.call(0xEE, b"x") {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::App),
        other => panic!("expected remote error, got {other:?}"),
    }
    assert_eq!(client.call(0x01, b"still alive").unwrap(), b"still alive");
    assert_eq!(client.call(0xFF, b"").unwrap(), b"");
    // The server hung up; the next call fails rather than hanging.
    assert!(client.call(0x01, b"late").is_err());
    handle.shutdown().unwrap();
}

/// Many logical sessions multiplexed over one socket: every channel
/// echoes independently, batches pipeline correctly, and the server's
/// counters reconcile exactly with the client's.
#[test]
fn mux_channels_echo_independently_and_stats_reconcile() {
    let handle = start_echo(evloop_config());
    let mut client =
        MuxClient::connect(handle.addr(), &ClientConfig::with_token("acme")).expect("connect");
    let channels: Vec<u32> = client
        .open_many(32, Some("acme"), false)
        .expect("open batch")
        .into_iter()
        .map(|c| c.expect("channel opens"))
        .collect();
    assert_eq!(channels.len(), 32);
    // One logical session per channel, plus the connection's implicit
    // channel-0 session.
    assert_eq!(handle.stats().sessions_opened(), 33);

    // Three pipelined rounds: each channel gets a distinct body so a
    // cross-channel mixup cannot cancel out.
    for round in 0..3u32 {
        let calls: Vec<(u32, u16, Vec<u8>)> = channels
            .iter()
            .enumerate()
            .map(|(i, &ch)| {
                let body = format!("round {round} lane {i}").into_bytes();
                let endpoint = if i % 2 == 0 { 0x01 } else { 0xE0 };
                (ch, endpoint, body)
            })
            .collect();
        let answers = client.call_batch(&calls).expect("batch");
        for (i, answer) in answers.into_iter().enumerate() {
            let mut expect = format!("round {round} lane {i}").into_bytes();
            if i % 2 == 1 {
                expect.reverse();
            }
            assert_eq!(answer.expect("echo ok"), expect, "lane {i} differs");
        }
    }
    // A typed error on one channel leaves every channel usable.
    match client.call(channels[3], 0xEE, b"x") {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::App),
        other => panic!("expected remote error, got {other:?}"),
    }
    assert_eq!(client.call(channels[3], 0x01, b"alive").unwrap(), b"alive");

    let client_totals = client.stats().totals();
    let server_totals = handle.stats().totals();
    assert_eq!(server_totals.requests, client_totals.requests);
    assert_eq!(server_totals.bytes_in, client_totals.bytes_in);
    assert_eq!(server_totals.bytes_out, client_totals.bytes_out);
    assert_eq!(server_totals.errors, client_totals.errors);

    // Closing channels frees registry slots while the socket stays up.
    for &ch in &channels {
        client.close_channel(ch).expect("close channel");
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.active_sessions() > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.active_sessions(), 1, "channels never drained");
    // The freed channel is gone: the server answers with a typed
    // protocol error rather than silence.
    match client.call(channels[0], 0x01, b"stale") {
        Err(WireError::Remote { code, .. }) => assert_eq!(code, ErrorCode::Protocol),
        other => panic!("expected protocol error on closed channel, got {other:?}"),
    }
    client.close();
    handle.shutdown().unwrap();
}

/// A session ending its own reply (`Reply::end`) on a mux channel
/// frees that channel but keeps the connection and its siblings alive.
#[test]
fn end_session_on_a_channel_leaves_the_connection_usable() {
    let handle = start_echo(evloop_config());
    let mut client = MuxClient::connect(handle.addr(), &ClientConfig::default()).expect("connect");
    let a = client.open(None, false).expect("open a");
    let b = client.open(None, false).expect("open b");
    assert_eq!(client.call(a, 0xFF, b"").unwrap(), b"");
    // Channel `a` is gone; `b` and the connection still work.
    assert_eq!(client.call(b, 0x01, b"sibling").unwrap(), b"sibling");
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.active_sessions() > 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.active_sessions(), 2);
    client.close();
    handle.shutdown().unwrap();
}

/// The graduated ladder under a deliberately tiny config: accepts,
/// then queued admissions, then low-priority sheds, then hard Busy —
/// and every counter reconciles exactly with what the client saw.
#[test]
fn load_shed_ladder_reconciles_exactly() {
    let config = WireConfig {
        max_sessions: 8,
        queue_sessions: 2,
        shed_sessions: 4,
        ..evloop_config()
    };
    let handle = start_echo(config);
    let stats = handle.stats();
    let mut client = MuxClient::connect(handle.addr(), &ClientConfig::default()).expect("connect");
    // The hello session occupies slot 1 below the queue tier.
    assert_eq!(stats.sessions_queued(), 0);

    let mut opened = Vec::new();
    let mut shed = 0u64;
    let mut busy = 0u64;
    // Low-priority opens, one at a time so tier boundaries are exact:
    // active starts at 1 (hello). Opens at active 1 accept; 2 and 3
    // queue; from 4 on, low-priority is shed without consuming a slot.
    for _ in 0..6 {
        match client.open(None, true) {
            Ok(ch) => opened.push(ch),
            Err(WireError::Remote { code, message }) => {
                assert_eq!(code, ErrorCode::Shed, "unexpected refusal: {message}");
                shed += 1;
            }
            Err(other) => panic!("transport failure: {other:?}"),
        }
    }
    assert_eq!(opened.len(), 3, "accept + two queued admissions");
    assert_eq!(shed, 3, "every open above the shed tier is shed");

    // High-priority opens sail past the shed tier up to the hard cap.
    let mut high = Vec::new();
    for _ in 0..6 {
        match client.open(None, false) {
            Ok(ch) => high.push(ch),
            Err(WireError::Remote { code, .. }) => {
                assert_eq!(code, ErrorCode::Busy);
                busy += 1;
            }
            Err(other) => panic!("transport failure: {other:?}"),
        }
    }
    assert_eq!(high.len(), 4, "active 4..=7 admit high-priority opens");
    assert_eq!(busy, 2, "the hard cap refuses with Busy");

    // Exact reconciliation: the server counted precisely what the
    // client observed, tier by tier.
    assert_eq!(stats.sessions_shed(), shed);
    assert_eq!(stats.sessions_refused(), busy);
    // Queued admissions: opens that landed while active >= queue tier —
    // two low-priority plus all four high-priority ones.
    assert_eq!(stats.sessions_queued(), 6);
    assert_eq!(
        stats.sessions_opened(),
        1 + opened.len() as u64 + high.len() as u64
    );

    // A shed refusal is per-open, not per-connection: every admitted
    // channel still round-trips.
    for &ch in opened.iter().chain(&high) {
        assert_eq!(client.call(ch, 0x01, b"ok").unwrap(), b"ok");
    }
    client.close();
    handle.shutdown().unwrap();
}

/// A connection that stops reading its responses must not stall other
/// connections: the loop parks the slow reader once its output backlog
/// passes the cap and keeps serving everyone else promptly.
#[test]
fn slow_reader_does_not_stall_other_connections() {
    let config = WireConfig {
        // A small backlog cap so the slow reader parks quickly.
        max_backlog: 32 << 10,
        ..evloop_config()
    };
    let handle = start_echo(config);
    let addr = handle.addr();

    // The slow reader: a real handshake, then a pile of large echo
    // requests with no reads. Its responses jam its output queue.
    let slow = std::net::TcpStream::connect(addr).expect("connect slow");
    slow.set_write_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let hello = Envelope::Hello {
        version: VERSION,
        max_frame: 1 << 20,
        token: None,
    }
    .encode();
    let mut frame = (hello.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&hello);
    (&slow).write_all(&frame).unwrap();
    let mut header = [0u8; 4];
    (&slow).read_exact(&mut header).unwrap();
    let mut ack = vec![0u8; u32::from_le_bytes(header) as usize];
    (&slow).read_exact(&mut ack).unwrap();
    assert!(matches!(
        Envelope::decode(&ack),
        Ok(Envelope::HelloAck { .. })
    ));
    let body = vec![0xABu8; 16 << 10];
    for id in 1..=64u64 {
        let request = Envelope::Request {
            id,
            endpoint: 0x01,
            body: body.clone(),
        }
        .encode();
        let mut frame = (request.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&request);
        // Stop once the kernel buffers fill: the server has parked us.
        if (&slow).write_all(&frame).is_err() {
            break;
        }
    }

    // A healthy client round-trips promptly throughout. The read
    // timeout is the assertion: a stalled loop would blow it.
    let healthy_config = ClientConfig {
        read_timeout: Duration::from_secs(2),
        ..ClientConfig::default()
    };
    let started = Instant::now();
    let mut client = WireClient::connect(addr, &healthy_config).expect("connect healthy");
    for i in 0..50u32 {
        let body = i.to_le_bytes();
        assert_eq!(client.call(0x01, &body).expect("prompt echo"), body);
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "healthy session took {:?} behind a slow reader",
        started.elapsed()
    );
    client.close();
    drop(slow);
    handle.shutdown().unwrap();
}

/// Regression: a server that acks the handshake and then goes silent
/// must trip the client's read deadline once, on time — not re-arm the
/// socket timeout forever.
#[test]
fn stalled_server_trips_the_read_deadline_on_time() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stall = std::thread::spawn(move || {
        let (mut socket, _) = listener.accept().unwrap();
        // Complete the handshake…
        let mut header = [0u8; 4];
        socket.read_exact(&mut header).unwrap();
        let mut hello = vec![0u8; u32::from_le_bytes(header) as usize];
        socket.read_exact(&mut hello).unwrap();
        let ack = Envelope::HelloAck {
            session: 1,
            max_frame: 1 << 20,
        }
        .encode();
        let mut frame = (ack.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&ack);
        socket.write_all(&frame).unwrap();
        // …swallow the request, then stall until the client hangs up.
        socket.read_exact(&mut header).unwrap();
        let mut request = vec![0u8; u32::from_le_bytes(header) as usize];
        socket.read_exact(&mut request).unwrap();
        let mut sink = [0u8; 16];
        let _ = socket.read(&mut sink);
    });

    let config = ClientConfig {
        read_timeout: Duration::from_millis(100),
        ..ClientConfig::default()
    };
    let mut client = WireClient::connect(addr, &config).expect("connect");
    let started = Instant::now();
    let outcome = client.call(0x01, b"into the void");
    let elapsed = started.elapsed();
    assert!(
        matches!(outcome, Err(WireError::Deadline { .. })),
        "expected a deadline error, got {outcome:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline fired after {elapsed:?}; the budget was 100ms"
    );
    drop(client);
    stall.join().unwrap();
}
