//! Technology-library errors.

use std::fmt;

/// Errors raised while interpreting primitives against the Virtex-like
/// technology library.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TechError {
    /// The primitive's library is not supported by this technology.
    UnknownLibrary {
        /// The offending library name.
        library: String,
    },
    /// The primitive name is not in the library.
    UnknownPrimitive {
        /// The offending primitive name.
        name: String,
    },
    /// A primitive that requires an `INIT` value lacks one.
    MissingInit {
        /// The primitive name.
        name: String,
    },
    /// An `INIT` value is out of range for the primitive.
    InvalidInit {
        /// The primitive name.
        name: String,
        /// The supplied value.
        init: u64,
    },
}

impl fmt::Display for TechError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechError::UnknownLibrary { library } => {
                write!(f, "unsupported technology library {library}")
            }
            TechError::UnknownPrimitive { name } => {
                write!(f, "unknown primitive {name}")
            }
            TechError::MissingInit { name } => {
                write!(f, "primitive {name} requires an INIT value")
            }
            TechError::InvalidInit { name, init } => {
                write!(f, "INIT value {init:#x} out of range for primitive {name}")
            }
        }
    }
}

impl std::error::Error for TechError {}
