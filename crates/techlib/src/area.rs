//! Per-primitive area costs and slice packing for the Virtex-like fabric.

use std::ops::{Add, AddAssign};

use crate::prim::PrimKind;

/// Resource cost of a primitive or an aggregate of primitives.
///
/// Virtex organizes logic into *slices* of two 4-input LUTs and two
/// flip-flops plus dedicated carry logic; a CLB holds two slices. The
/// packing estimate below mirrors the numbers the paper's circuit
/// estimator shows to evaluating customers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct AreaCost {
    /// Function generators (LUTs), including LUT-mode RAM/ROM/SRL.
    pub luts: u32,
    /// Flip-flops/latches.
    pub ffs: u32,
    /// Carry-chain elements (MUXCY/XORCY/MULT_AND).
    pub carries: u32,
    /// I/O pad buffers.
    pub pads: u32,
}

impl AreaCost {
    /// A zero cost.
    #[must_use]
    pub fn zero() -> Self {
        AreaCost::default()
    }

    /// Estimated slice usage: LUT pairs and FF pairs share slices; carry
    /// elements ride along with their LUT.
    #[must_use]
    pub fn slices(&self) -> u32 {
        let lut_slices = self.luts.div_ceil(2);
        let ff_slices = self.ffs.div_ceil(2);
        let carry_slices = self.carries.div_ceil(2);
        lut_slices.max(ff_slices).max(carry_slices)
    }

    /// Estimated CLB usage (two slices per CLB).
    #[must_use]
    pub fn clbs(&self) -> u32 {
        self.slices().div_ceil(2)
    }
}

impl Add for AreaCost {
    type Output = AreaCost;
    fn add(self, rhs: AreaCost) -> AreaCost {
        AreaCost {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            carries: self.carries + rhs.carries,
            pads: self.pads + rhs.pads,
        }
    }
}

impl AddAssign for AreaCost {
    fn add_assign(&mut self, rhs: AreaCost) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for AreaCost {
    fn sum<I: Iterator<Item = AreaCost>>(iter: I) -> AreaCost {
        iter.fold(AreaCost::zero(), Add::add)
    }
}

/// The area cost of one primitive instance.
#[must_use]
pub fn area_of(kind: &PrimKind) -> AreaCost {
    match kind {
        // Simple gates map one-per-LUT; buffers are absorbed into
        // routing, constants into unused inputs.
        PrimKind::Inv
        | PrimKind::And(_)
        | PrimKind::Or(_)
        | PrimKind::Nand(_)
        | PrimKind::Nor(_)
        | PrimKind::Xor(_)
        | PrimKind::Xnor2
        | PrimKind::Mux2
        | PrimKind::Lut { .. }
        | PrimKind::Rom16x1 { .. } => AreaCost {
            luts: 1,
            ..AreaCost::zero()
        },
        PrimKind::Srl16 { .. } | PrimKind::Ram16x1 { .. } => AreaCost {
            luts: 1,
            ..AreaCost::zero()
        },
        PrimKind::Muxcy | PrimKind::Xorcy | PrimKind::MultAnd => AreaCost {
            carries: 1,
            ..AreaCost::zero()
        },
        PrimKind::Ff { .. } => AreaCost {
            ffs: 1,
            ..AreaCost::zero()
        },
        PrimKind::Buf | PrimKind::Gnd | PrimKind::Vcc => AreaCost::zero(),
        PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => AreaCost {
            pads: 1,
            ..AreaCost::zero()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Logic;

    #[test]
    fn primitive_costs() {
        assert_eq!(area_of(&PrimKind::And(2)).luts, 1);
        assert_eq!(area_of(&PrimKind::Buf), AreaCost::zero());
        assert_eq!(area_of(&PrimKind::Muxcy).carries, 1);
        assert_eq!(
            area_of(&PrimKind::Ff {
                has_ce: true,
                control: crate::prim::FfControl::AsyncClear,
                init: Logic::Zero,
            })
            .ffs,
            1
        );
        assert_eq!(area_of(&PrimKind::Ibuf).pads, 1);
        assert_eq!(area_of(&PrimKind::Srl16 { init: 0 }).luts, 1);
    }

    #[test]
    fn slice_packing() {
        let a = AreaCost {
            luts: 5,
            ffs: 2,
            carries: 0,
            pads: 0,
        };
        assert_eq!(a.slices(), 3); // ceil(5/2)=3 dominates ceil(2/2)=1
        assert_eq!(a.clbs(), 2);
        let b = AreaCost {
            luts: 0,
            ffs: 7,
            carries: 0,
            pads: 0,
        };
        assert_eq!(b.slices(), 4);
    }

    #[test]
    fn sum_and_add() {
        let total: AreaCost = [
            area_of(&PrimKind::And(2)),
            area_of(&PrimKind::Xor(2)),
            area_of(&PrimKind::Muxcy),
        ]
        .into_iter()
        .sum();
        assert_eq!(total.luts, 2);
        assert_eq!(total.carries, 1);
        let mut acc = AreaCost::zero();
        acc += total;
        assert_eq!(acc, total);
    }
}
