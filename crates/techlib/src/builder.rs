//! Ergonomic construction helpers for the Virtex-like library.
//!
//! The [`LogicCtx`] extension trait gives [`CellCtx`] the same flavour
//! JHDL's library gives Java code: `new and2(this, a, b, t1)` becomes
//! `ctx.and2(a, b, t1)?`.

use ipd_hdl::{CellCtx, CellId, LogicVec, Primitive, Result, Signal};

use crate::prim::{FfControl, PrimKind, LIBRARY};

fn place(
    ctx: &mut CellCtx<'_>,
    kind: PrimKind,
    init: Option<u64>,
    conns: &[(&str, Signal)],
) -> Result<CellId> {
    let name = kind.name();
    let prim = match init {
        Some(v) => Primitive::with_init(LIBRARY, name, v),
        None => Primitive::new(LIBRARY, name),
    };
    ctx.leaf(prim, kind.ports(), name, conns)
}

/// Gate- and primitive-level construction methods for [`CellCtx`].
///
/// All arguments accept anything convertible into a [`Signal`] — a bare
/// [`WireId`](ipd_hdl::WireId), a [`Slice`](ipd_hdl::Slice) or a built
/// [`Signal`]. Each method creates one primitive instance and returns
/// its cell id.
///
/// # Examples
///
/// ```
/// use ipd_hdl::Circuit;
/// use ipd_techlib::LogicCtx;
///
/// # fn main() -> Result<(), ipd_hdl::HdlError> {
/// let mut circuit = Circuit::new("demo");
/// let mut ctx = circuit.root_ctx();
/// let a = ctx.wire("a", 1);
/// let b = ctx.wire("b", 1);
/// let y = ctx.wire("y", 1);
/// ctx.and2(a, b, y)?;
/// assert_eq!(circuit.primitive_count(), 1);
/// # Ok(())
/// # }
/// ```
#[allow(clippy::too_many_arguments)]
pub trait LogicCtx {
    /// Inverter: `o = !i`.
    ///
    /// # Errors
    /// Fails on binding errors (width, scope) as documented on
    /// [`CellCtx::leaf`].
    fn inv(&mut self, i: impl Into<Signal>, o: impl Into<Signal>) -> Result<CellId>;
    /// Buffer: `o = i`.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn buffer(&mut self, i: impl Into<Signal>, o: impl Into<Signal>) -> Result<CellId>;
    /// 2-input AND.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn and2(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 3-input AND.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn and3(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        c: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 4-input AND.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn and4(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        c: impl Into<Signal>,
        d: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 2-input OR.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn or2(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 3-input OR.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn or3(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        c: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 2-input XOR.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn xor2(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 3-input XOR.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn xor3(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        c: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 2:1 mux: `o = sel ? i1 : i0`.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn mux2(
        &mut self,
        i0: impl Into<Signal>,
        i1: impl Into<Signal>,
        sel: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// N-input LUT (1–4 inputs) with truth table `init`.
    ///
    /// `inputs` supplies the LUT inputs LSB-first.
    ///
    /// # Errors
    /// Fails on binding errors or if `inputs` is empty or longer than 4.
    fn lut(&mut self, init: u16, inputs: &[Signal], o: impl Into<Signal>) -> Result<CellId>;
    /// Carry-chain mux: `o = s ? ci : di`.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn muxcy(
        &mut self,
        ci: impl Into<Signal>,
        di: impl Into<Signal>,
        s: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// Carry-chain XOR: `o = ci ^ li`.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn xorcy(
        &mut self,
        ci: impl Into<Signal>,
        li: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// Dedicated multiplier AND.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn mult_and(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// Plain D flip-flop.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn fd(
        &mut self,
        c: impl Into<Signal>,
        d: impl Into<Signal>,
        q: impl Into<Signal>,
    ) -> Result<CellId>;
    /// D flip-flop with clock enable and asynchronous clear.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn fdce(
        &mut self,
        c: impl Into<Signal>,
        ce: impl Into<Signal>,
        clr: impl Into<Signal>,
        d: impl Into<Signal>,
        q: impl Into<Signal>,
    ) -> Result<CellId>;
    /// D flip-flop with clock enable and synchronous reset.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn fdre(
        &mut self,
        c: impl Into<Signal>,
        ce: impl Into<Signal>,
        r: impl Into<Signal>,
        d: impl Into<Signal>,
        q: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 16-bit shift-register LUT; `a` is the 4-bit tap address.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn srl16(
        &mut self,
        init: u16,
        c: impl Into<Signal>,
        ce: impl Into<Signal>,
        d: impl Into<Signal>,
        a: impl Into<Signal>,
        q: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 16×1 RAM with synchronous write, asynchronous read.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn ram16x1(
        &mut self,
        init: u16,
        c: impl Into<Signal>,
        we: impl Into<Signal>,
        d: impl Into<Signal>,
        a: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId>;
    /// 16×1 ROM.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn rom16x1(&mut self, init: u16, a: impl Into<Signal>, o: impl Into<Signal>) -> Result<CellId>;
    /// Constant 0 driver.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn gnd(&mut self, o: impl Into<Signal>) -> Result<CellId>;
    /// Constant 1 driver.
    ///
    /// # Errors
    /// See [`LogicCtx::inv`].
    fn vcc(&mut self, o: impl Into<Signal>) -> Result<CellId>;
    /// Drives every bit of `sig` with the corresponding bit of `value`
    /// using `gnd`/`vcc` primitives.
    ///
    /// # Errors
    /// Fails on width mismatch between `sig` and `value`, or on binding
    /// errors.
    fn constant(&mut self, sig: impl Into<Signal>, value: &LogicVec) -> Result<()>;
}

impl LogicCtx for CellCtx<'_> {
    fn inv(&mut self, i: impl Into<Signal>, o: impl Into<Signal>) -> Result<CellId> {
        place(
            self,
            PrimKind::Inv,
            None,
            &[("i", i.into()), ("o", o.into())],
        )
    }

    fn buffer(&mut self, i: impl Into<Signal>, o: impl Into<Signal>) -> Result<CellId> {
        place(
            self,
            PrimKind::Buf,
            None,
            &[("i", i.into()), ("o", o.into())],
        )
    }

    fn and2(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::And(2),
            None,
            &[("i0", a.into()), ("i1", b.into()), ("o", o.into())],
        )
    }

    fn and3(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        c: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::And(3),
            None,
            &[
                ("i0", a.into()),
                ("i1", b.into()),
                ("i2", c.into()),
                ("o", o.into()),
            ],
        )
    }

    fn and4(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        c: impl Into<Signal>,
        d: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::And(4),
            None,
            &[
                ("i0", a.into()),
                ("i1", b.into()),
                ("i2", c.into()),
                ("i3", d.into()),
                ("o", o.into()),
            ],
        )
    }

    fn or2(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Or(2),
            None,
            &[("i0", a.into()), ("i1", b.into()), ("o", o.into())],
        )
    }

    fn or3(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        c: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Or(3),
            None,
            &[
                ("i0", a.into()),
                ("i1", b.into()),
                ("i2", c.into()),
                ("o", o.into()),
            ],
        )
    }

    fn xor2(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Xor(2),
            None,
            &[("i0", a.into()), ("i1", b.into()), ("o", o.into())],
        )
    }

    fn xor3(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        c: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Xor(3),
            None,
            &[
                ("i0", a.into()),
                ("i1", b.into()),
                ("i2", c.into()),
                ("o", o.into()),
            ],
        )
    }

    fn mux2(
        &mut self,
        i0: impl Into<Signal>,
        i1: impl Into<Signal>,
        sel: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Mux2,
            None,
            &[
                ("i0", i0.into()),
                ("i1", i1.into()),
                ("sel", sel.into()),
                ("o", o.into()),
            ],
        )
    }

    fn lut(&mut self, init: u16, inputs: &[Signal], o: impl Into<Signal>) -> Result<CellId> {
        let n = inputs.len();
        if n == 0 || n > 4 {
            return Err(ipd_hdl::HdlError::InvalidParameter {
                generator: "lut".to_owned(),
                reason: format!("lut supports 1-4 inputs, got {n}"),
            });
        }
        let kind = PrimKind::Lut {
            inputs: n as u8,
            init,
        };
        let mut conns: Vec<(String, Signal)> = inputs
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("i{i}"), s.clone()))
            .collect();
        conns.push(("o".to_owned(), o.into()));
        let refs: Vec<(&str, Signal)> =
            conns.iter().map(|(n, s)| (n.as_str(), s.clone())).collect();
        place(self, kind, Some(u64::from(init)), &refs)
    }

    fn muxcy(
        &mut self,
        ci: impl Into<Signal>,
        di: impl Into<Signal>,
        s: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Muxcy,
            None,
            &[
                ("ci", ci.into()),
                ("di", di.into()),
                ("s", s.into()),
                ("o", o.into()),
            ],
        )
    }

    fn xorcy(
        &mut self,
        ci: impl Into<Signal>,
        li: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Xorcy,
            None,
            &[("ci", ci.into()), ("li", li.into()), ("o", o.into())],
        )
    }

    fn mult_and(
        &mut self,
        a: impl Into<Signal>,
        b: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::MultAnd,
            None,
            &[("i0", a.into()), ("i1", b.into()), ("o", o.into())],
        )
    }

    fn fd(
        &mut self,
        c: impl Into<Signal>,
        d: impl Into<Signal>,
        q: impl Into<Signal>,
    ) -> Result<CellId> {
        let kind = PrimKind::Ff {
            has_ce: false,
            control: FfControl::None,
            init: ipd_hdl::Logic::Zero,
        };
        place(
            self,
            kind,
            None,
            &[("c", c.into()), ("d", d.into()), ("q", q.into())],
        )
    }

    fn fdce(
        &mut self,
        c: impl Into<Signal>,
        ce: impl Into<Signal>,
        clr: impl Into<Signal>,
        d: impl Into<Signal>,
        q: impl Into<Signal>,
    ) -> Result<CellId> {
        let kind = PrimKind::Ff {
            has_ce: true,
            control: FfControl::AsyncClear,
            init: ipd_hdl::Logic::Zero,
        };
        place(
            self,
            kind,
            None,
            &[
                ("c", c.into()),
                ("ce", ce.into()),
                ("clr", clr.into()),
                ("d", d.into()),
                ("q", q.into()),
            ],
        )
    }

    fn fdre(
        &mut self,
        c: impl Into<Signal>,
        ce: impl Into<Signal>,
        r: impl Into<Signal>,
        d: impl Into<Signal>,
        q: impl Into<Signal>,
    ) -> Result<CellId> {
        let kind = PrimKind::Ff {
            has_ce: true,
            control: FfControl::SyncReset,
            init: ipd_hdl::Logic::Zero,
        };
        place(
            self,
            kind,
            None,
            &[
                ("c", c.into()),
                ("ce", ce.into()),
                ("r", r.into()),
                ("d", d.into()),
                ("q", q.into()),
            ],
        )
    }

    fn srl16(
        &mut self,
        init: u16,
        c: impl Into<Signal>,
        ce: impl Into<Signal>,
        d: impl Into<Signal>,
        a: impl Into<Signal>,
        q: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Srl16 { init },
            Some(u64::from(init)),
            &[
                ("c", c.into()),
                ("ce", ce.into()),
                ("d", d.into()),
                ("a", a.into()),
                ("q", q.into()),
            ],
        )
    }

    fn ram16x1(
        &mut self,
        init: u16,
        c: impl Into<Signal>,
        we: impl Into<Signal>,
        d: impl Into<Signal>,
        a: impl Into<Signal>,
        o: impl Into<Signal>,
    ) -> Result<CellId> {
        place(
            self,
            PrimKind::Ram16x1 { init },
            Some(u64::from(init)),
            &[
                ("c", c.into()),
                ("we", we.into()),
                ("d", d.into()),
                ("a", a.into()),
                ("o", o.into()),
            ],
        )
    }

    fn rom16x1(&mut self, init: u16, a: impl Into<Signal>, o: impl Into<Signal>) -> Result<CellId> {
        place(
            self,
            PrimKind::Rom16x1 { init },
            Some(u64::from(init)),
            &[("a", a.into()), ("o", o.into())],
        )
    }

    fn gnd(&mut self, o: impl Into<Signal>) -> Result<CellId> {
        place(self, PrimKind::Gnd, None, &[("o", o.into())])
    }

    fn vcc(&mut self, o: impl Into<Signal>) -> Result<CellId> {
        place(self, PrimKind::Vcc, None, &[("o", o.into())])
    }

    fn constant(&mut self, sig: impl Into<Signal>, value: &LogicVec) -> Result<()> {
        let sig = sig.into();
        // Collect the bit selections first so widths can be checked by
        // the individual gnd/vcc bindings.
        let bits: Vec<Signal> = {
            let mut v = Vec::new();
            for seg in sig.segments() {
                let hi = seg.hi;
                // Whole-wire sentinel is resolved by the leaf binding;
                // expand here only for explicit slices.
                if hi == u32::MAX {
                    v.push(Signal::from(seg.wire));
                } else {
                    for b in seg.lo..=hi {
                        v.push(Signal::bit_of(seg.wire, b));
                    }
                }
            }
            v
        };
        // Expand whole wires into bits by probing the circuit.
        let mut expanded = Vec::new();
        for s in bits {
            let seg = s.segments()[0];
            if seg.hi == u32::MAX {
                let width = self.circuit().wire(seg.wire).width();
                for b in 0..width {
                    expanded.push(Signal::bit_of(seg.wire, b));
                }
            } else {
                expanded.push(s);
            }
        }
        if expanded.len() != value.width() {
            return Err(ipd_hdl::HdlError::WidthMismatch {
                port: "constant".to_owned(),
                expected: value.width() as u32,
                found: expanded.len() as u32,
            });
        }
        for (i, bit_sig) in expanded.into_iter().enumerate() {
            match value.bit(i).to_bool() {
                Some(true) => {
                    self.vcc(bit_sig)?;
                }
                _ => {
                    self.gnd(bit_sig)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipd_hdl::Circuit;

    #[test]
    fn gates_construct() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let a = ctx.wire("a", 1);
        let b = ctx.wire("b", 1);
        let s = ctx.wire("s", 1);
        let o = [
            ctx.wire("o0", 1),
            ctx.wire("o1", 1),
            ctx.wire("o2", 1),
            ctx.wire("o3", 1),
            ctx.wire("o4", 1),
            ctx.wire("o5", 1),
        ];
        ctx.and2(a, b, o[0]).unwrap();
        ctx.or2(a, b, o[1]).unwrap();
        ctx.xor2(a, b, o[2]).unwrap();
        ctx.inv(a, o[3]).unwrap();
        ctx.mux2(a, b, s, o[4]).unwrap();
        ctx.xor3(a, b, s, o[5]).unwrap();
        assert_eq!(c.primitive_count(), 6);
    }

    #[test]
    fn lut_validates_arity() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let a = ctx.wire("a", 1);
        let o = ctx.wire("o", 1);
        assert!(ctx.lut(0b10, &[a.into()], o).is_ok());
        let o2 = ctx.wire("o2", 1);
        assert!(ctx.lut(0, &[], o2).is_err());
    }

    #[test]
    fn constant_drives_bus() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let bus = ctx.wire("bus", 4);
        ctx.constant(bus, &LogicVec::from_u64(0b1010, 4)).unwrap();
        // Two vcc, two gnd.
        let stats = ipd_hdl::CircuitStats::of(&c);
        assert_eq!(stats.count_of("virtex:vcc"), 2);
        assert_eq!(stats.count_of("virtex:gnd"), 2);
    }

    #[test]
    fn constant_width_checked() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let bus = ctx.wire("bus", 4);
        let err = ctx.constant(bus, &LogicVec::from_u64(0, 3)).unwrap_err();
        assert!(matches!(err, ipd_hdl::HdlError::WidthMismatch { .. }));
    }

    #[test]
    fn ff_family_constructs() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let clk = ctx.wire("clk", 1);
        let d = ctx.wire("d", 1);
        let q = ctx.wire("q", 1);
        let ce = ctx.wire("ce", 1);
        let clr = ctx.wire("clr", 1);
        let q2 = ctx.wire("q2", 1);
        ctx.fd(clk, d, q).unwrap();
        ctx.fdce(clk, ce, clr, d, q2).unwrap();
        let stats = ipd_hdl::CircuitStats::of(&c);
        assert_eq!(stats.count_of("virtex:fd"), 1);
        assert_eq!(stats.count_of("virtex:fdce"), 1);
    }

    #[test]
    fn memory_primitives_construct() {
        let mut c = Circuit::new("t");
        let mut ctx = c.root_ctx();
        let clk = ctx.wire("clk", 1);
        let ce = ctx.wire("ce", 1);
        let d = ctx.wire("d", 1);
        let a = ctx.wire("a", 4);
        let q = ctx.wire("q", 1);
        let o = ctx.wire("o", 1);
        ctx.srl16(0xFFFF, clk, ce, d, a, q).unwrap();
        ctx.rom16x1(0x1234, a, o).unwrap();
        let stats = ipd_hdl::CircuitStats::of(&c);
        assert_eq!(stats.count_of("virtex:srl16"), 1);
        assert_eq!(stats.count_of("virtex:rom16x1"), 1);
    }
}
