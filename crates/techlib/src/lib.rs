//! # ipd-techlib — the Virtex-like FPGA technology library
//!
//! JHDL circuits are technology independent; a technology library gives
//! the primitives meaning. This crate supplies the reproduction's
//! Virtex-like library:
//!
//! - [`PrimKind`] — the primitive set (gates, LUTs, carry chain,
//!   flip-flops, SRL16/RAM16/ROM16, constants, pads) with port
//!   interfaces and four-state behavioural models.
//! - [`LogicCtx`] — JHDL-flavoured construction helpers
//!   (`ctx.and2(a, b, o)?`).
//! - [`AreaCost`] / [`area_of`] — the area model with slice packing.
//! - [`DelayModel`] — primitive and routing delays for timing
//!   estimation.
//! - [`Device`] — the XCV50…XCV1000 part catalog for fit checks and
//!   layout views.
//!
//! # Example
//!
//! ```
//! use ipd_hdl::Circuit;
//! use ipd_techlib::{area_of, Device, LogicCtx, PrimKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut circuit = Circuit::new("demo");
//! let mut ctx = circuit.root_ctx();
//! let a = ctx.wire("a", 1);
//! let b = ctx.wire("b", 1);
//! let y = ctx.wire("y", 1);
//! ctx.xor2(a, b, y)?;
//!
//! let kind = PrimKind::from_primitive(
//!     circuit
//!         .cell(ipd_hdl::CellId::from_index(1))
//!         .kind()
//!         .as_primitive()
//!         .expect("leaf"),
//! )?;
//! assert_eq!(area_of(&kind).luts, 1);
//! assert!(Device::by_name("xcv50").is_some());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod area;
mod builder;
mod delay;
mod device;
mod error;
mod prim;

pub use area::{area_of, AreaCost};
pub use builder::LogicCtx;
pub use delay::{DelayModel, NetDelaySource, RoutedDelays};
pub use device::Device;
pub use error::TechError;
pub use prim::{FfControl, PrimClass, PrimKind, LIBRARY};
