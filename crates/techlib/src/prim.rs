//! The Virtex-like primitive set: interfaces, classes and behaviour.

use ipd_hdl::{Logic, PortSpec, Primitive};

use crate::error::TechError;

/// The library name used for all primitives in this technology.
pub const LIBRARY: &str = "virtex";

/// Asynchronous-control flavour of a flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FfControl {
    /// Plain D flip-flop.
    None,
    /// Asynchronous clear (`clr`).
    AsyncClear,
    /// Synchronous reset (`r`).
    SyncReset,
}

/// Behavioural classification of a primitive, used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimClass {
    /// Pure combinational function of its inputs.
    Comb,
    /// Edge-triggered flip-flop.
    Ff {
        /// Whether a clock-enable port exists.
        has_ce: bool,
        /// Reset/clear behaviour.
        control: FfControl,
    },
    /// 16-bit shift-register LUT (address selects tap).
    Srl16,
    /// 16×1 synchronous-write, asynchronous-read RAM.
    Ram16,
    /// 16×1 ROM (combinational, contents from `INIT`).
    Rom16,
    /// Constant driver.
    Const(Logic),
}

/// A resolved primitive kind with its `INIT` contents.
///
/// [`PrimKind::from_primitive`] is the single point where the
/// technology-independent [`Primitive`](ipd_hdl::Primitive) reference
/// stored in the circuit is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// N-input AND (2–4).
    And(u8),
    /// N-input OR (2–4).
    Or(u8),
    /// N-input NAND (2–4).
    Nand(u8),
    /// N-input NOR (2–4).
    Nor(u8),
    /// N-input XOR (2–3).
    Xor(u8),
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer (`i0`, `i1`, `sel`).
    Mux2,
    /// N-input look-up table (1–4) with truth table `init`.
    Lut {
        /// Number of inputs (1–4).
        inputs: u8,
        /// Truth table; bit `k` is the output for input pattern `k`.
        init: u16,
    },
    /// Carry-chain multiplexer (`ci`, `di`, `s` → `o`).
    Muxcy,
    /// Carry-chain XOR (`ci`, `li` → `o`).
    Xorcy,
    /// Dedicated multiplier AND gate feeding the carry chain.
    MultAnd,
    /// D flip-flop family.
    Ff {
        /// Clock enable present.
        has_ce: bool,
        /// Control flavour.
        control: FfControl,
        /// Power-up value (from `INIT`, default 0).
        init: Logic,
    },
    /// 16-bit shift register LUT with initial contents.
    Srl16 {
        /// Initial 16-bit contents.
        init: u16,
    },
    /// 16×1 single-port RAM with initial contents.
    Ram16x1 {
        /// Initial 16-bit contents.
        init: u16,
    },
    /// 16×1 ROM.
    Rom16x1 {
        /// 16-bit contents.
        init: u16,
    },
    /// Ground (constant 0).
    Gnd,
    /// Power (constant 1).
    Vcc,
    /// Input pad buffer.
    Ibuf,
    /// Output pad buffer.
    Obuf,
    /// Global clock buffer.
    Bufg,
}

impl PrimKind {
    /// Interprets a circuit primitive reference.
    ///
    /// # Errors
    ///
    /// Fails for foreign libraries, unknown names, or missing/oversized
    /// `INIT` values.
    pub fn from_primitive(prim: &Primitive) -> Result<Self, TechError> {
        if prim.library != LIBRARY {
            return Err(TechError::UnknownLibrary {
                library: prim.library.clone(),
            });
        }
        let init16 = || -> Result<u16, TechError> {
            let v = prim.init.ok_or(TechError::MissingInit {
                name: prim.name.clone(),
            })?;
            u16::try_from(v).map_err(|_| TechError::InvalidInit {
                name: prim.name.clone(),
                init: v,
            })
        };
        let ff = |has_ce, control| -> Result<PrimKind, TechError> {
            let init = match prim.init {
                None | Some(0) => Logic::Zero,
                Some(1) => Logic::One,
                Some(v) => {
                    return Err(TechError::InvalidInit {
                        name: prim.name.clone(),
                        init: v,
                    })
                }
            };
            Ok(PrimKind::Ff {
                has_ce,
                control,
                init,
            })
        };
        match prim.name.as_str() {
            "inv" => Ok(PrimKind::Inv),
            "buf" => Ok(PrimKind::Buf),
            "and2" => Ok(PrimKind::And(2)),
            "and3" => Ok(PrimKind::And(3)),
            "and4" => Ok(PrimKind::And(4)),
            "or2" => Ok(PrimKind::Or(2)),
            "or3" => Ok(PrimKind::Or(3)),
            "or4" => Ok(PrimKind::Or(4)),
            "nand2" => Ok(PrimKind::Nand(2)),
            "nand3" => Ok(PrimKind::Nand(3)),
            "nor2" => Ok(PrimKind::Nor(2)),
            "nor3" => Ok(PrimKind::Nor(3)),
            "xor2" => Ok(PrimKind::Xor(2)),
            "xor3" => Ok(PrimKind::Xor(3)),
            "xnor2" => Ok(PrimKind::Xnor2),
            "mux2" => Ok(PrimKind::Mux2),
            "lut1" => Ok(PrimKind::Lut {
                inputs: 1,
                init: init16()? & 0x3,
            }),
            "lut2" => Ok(PrimKind::Lut {
                inputs: 2,
                init: init16()? & 0xF,
            }),
            "lut3" => Ok(PrimKind::Lut {
                inputs: 3,
                init: init16()? & 0xFF,
            }),
            "lut4" => Ok(PrimKind::Lut {
                inputs: 4,
                init: init16()?,
            }),
            "muxcy" => Ok(PrimKind::Muxcy),
            "xorcy" => Ok(PrimKind::Xorcy),
            "mult_and" => Ok(PrimKind::MultAnd),
            "fd" => ff(false, FfControl::None),
            "fdc" => ff(false, FfControl::AsyncClear),
            "fdce" => ff(true, FfControl::AsyncClear),
            "fdre" => ff(true, FfControl::SyncReset),
            "srl16" => Ok(PrimKind::Srl16 { init: init16()? }),
            "ram16x1" => Ok(PrimKind::Ram16x1 {
                init: prim.init.map(|v| v as u16).unwrap_or(0),
            }),
            "rom16x1" => Ok(PrimKind::Rom16x1 { init: init16()? }),
            "gnd" => Ok(PrimKind::Gnd),
            "vcc" => Ok(PrimKind::Vcc),
            "ibuf" => Ok(PrimKind::Ibuf),
            "obuf" => Ok(PrimKind::Obuf),
            "bufg" => Ok(PrimKind::Bufg),
            other => Err(TechError::UnknownPrimitive {
                name: other.to_owned(),
            }),
        }
    }

    /// Canonical primitive name in the library.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PrimKind::Inv => "inv",
            PrimKind::Buf => "buf",
            PrimKind::And(2) => "and2",
            PrimKind::And(3) => "and3",
            PrimKind::And(_) => "and4",
            PrimKind::Or(2) => "or2",
            PrimKind::Or(3) => "or3",
            PrimKind::Or(_) => "or4",
            PrimKind::Nand(2) => "nand2",
            PrimKind::Nand(_) => "nand3",
            PrimKind::Nor(2) => "nor2",
            PrimKind::Nor(_) => "nor3",
            PrimKind::Xor(2) => "xor2",
            PrimKind::Xor(_) => "xor3",
            PrimKind::Xnor2 => "xnor2",
            PrimKind::Mux2 => "mux2",
            PrimKind::Lut { inputs: 1, .. } => "lut1",
            PrimKind::Lut { inputs: 2, .. } => "lut2",
            PrimKind::Lut { inputs: 3, .. } => "lut3",
            PrimKind::Lut { .. } => "lut4",
            PrimKind::Muxcy => "muxcy",
            PrimKind::Xorcy => "xorcy",
            PrimKind::MultAnd => "mult_and",
            PrimKind::Ff {
                has_ce: false,
                control: FfControl::None,
                ..
            } => "fd",
            PrimKind::Ff {
                has_ce: false,
                control: FfControl::AsyncClear,
                ..
            } => "fdc",
            PrimKind::Ff {
                has_ce: true,
                control: FfControl::AsyncClear,
                ..
            } => "fdce",
            PrimKind::Ff { .. } => "fdre",
            PrimKind::Srl16 { .. } => "srl16",
            PrimKind::Ram16x1 { .. } => "ram16x1",
            PrimKind::Rom16x1 { .. } => "rom16x1",
            PrimKind::Gnd => "gnd",
            PrimKind::Vcc => "vcc",
            PrimKind::Ibuf => "ibuf",
            PrimKind::Obuf => "obuf",
            PrimKind::Bufg => "bufg",
        }
    }

    /// The port interface of this primitive.
    #[must_use]
    pub fn ports(&self) -> Vec<PortSpec> {
        let ins = |names: &[&str]| -> Vec<PortSpec> {
            let mut v: Vec<PortSpec> = names.iter().map(|n| PortSpec::input(*n, 1)).collect();
            v.push(PortSpec::output("o", 1));
            v
        };
        match self {
            PrimKind::Inv | PrimKind::Buf | PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => {
                ins(&["i"])
            }
            PrimKind::And(n)
            | PrimKind::Or(n)
            | PrimKind::Nand(n)
            | PrimKind::Nor(n)
            | PrimKind::Xor(n) => {
                let names: Vec<String> = (0..*n).map(|i| format!("i{i}")).collect();
                let mut v: Vec<PortSpec> = names
                    .iter()
                    .map(|n| PortSpec::input(n.clone(), 1))
                    .collect();
                v.push(PortSpec::output("o", 1));
                v
            }
            PrimKind::Xnor2 => ins(&["i0", "i1"]),
            PrimKind::Mux2 => ins(&["i0", "i1", "sel"]),
            PrimKind::Lut { inputs, .. } => {
                let names: Vec<String> = (0..*inputs).map(|i| format!("i{i}")).collect();
                let mut v: Vec<PortSpec> = names
                    .iter()
                    .map(|n| PortSpec::input(n.clone(), 1))
                    .collect();
                v.push(PortSpec::output("o", 1));
                v
            }
            PrimKind::Muxcy => ins(&["ci", "di", "s"]),
            PrimKind::Xorcy => ins(&["ci", "li"]),
            PrimKind::MultAnd => ins(&["i0", "i1"]),
            PrimKind::Ff {
                has_ce, control, ..
            } => {
                let mut v = vec![PortSpec::input("c", 1), PortSpec::input("d", 1)];
                if *has_ce {
                    v.push(PortSpec::input("ce", 1));
                }
                match control {
                    FfControl::None => {}
                    FfControl::AsyncClear => v.push(PortSpec::input("clr", 1)),
                    FfControl::SyncReset => v.push(PortSpec::input("r", 1)),
                }
                v.push(PortSpec::output("q", 1));
                v
            }
            PrimKind::Srl16 { .. } => vec![
                PortSpec::input("c", 1),
                PortSpec::input("ce", 1),
                PortSpec::input("d", 1),
                PortSpec::input("a", 4),
                PortSpec::output("q", 1),
            ],
            PrimKind::Ram16x1 { .. } => vec![
                PortSpec::input("c", 1),
                PortSpec::input("we", 1),
                PortSpec::input("d", 1),
                PortSpec::input("a", 4),
                PortSpec::output("o", 1),
            ],
            PrimKind::Rom16x1 { .. } => vec![PortSpec::input("a", 4), PortSpec::output("o", 1)],
            PrimKind::Gnd | PrimKind::Vcc => vec![PortSpec::output("o", 1)],
        }
    }

    /// Input port names of a combinational (or ROM) primitive, in the
    /// same order as [`PrimKind::ports`], as static strings — the
    /// allocation-free form analysis loops want. Empty for constant
    /// and sequential primitives (their pins are named, not positional;
    /// see [`PrimKind::ports`]).
    #[must_use]
    pub fn comb_input_names(&self) -> &'static [&'static str] {
        static INDEXED: [&str; 4] = ["i0", "i1", "i2", "i3"];
        match self {
            PrimKind::Inv | PrimKind::Buf | PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => {
                &["i"]
            }
            PrimKind::And(n)
            | PrimKind::Or(n)
            | PrimKind::Nand(n)
            | PrimKind::Nor(n)
            | PrimKind::Xor(n) => &INDEXED[..*n as usize],
            PrimKind::Xnor2 | PrimKind::MultAnd => &INDEXED[..2],
            PrimKind::Mux2 => &["i0", "i1", "sel"],
            PrimKind::Lut { inputs, .. } => &INDEXED[..*inputs as usize],
            PrimKind::Muxcy => &["ci", "di", "s"],
            PrimKind::Xorcy => &["ci", "li"],
            PrimKind::Rom16x1 { .. } => &["a"],
            PrimKind::Ff { .. }
            | PrimKind::Srl16 { .. }
            | PrimKind::Ram16x1 { .. }
            | PrimKind::Gnd
            | PrimKind::Vcc => &[],
        }
    }

    /// Name of the primitive's single output port.
    #[must_use]
    pub fn output_name(&self) -> &'static str {
        match self {
            PrimKind::Ff { .. } | PrimKind::Srl16 { .. } => "q",
            _ => "o",
        }
    }

    /// Behavioural class for simulation.
    #[must_use]
    pub fn class(&self) -> PrimClass {
        match self {
            PrimKind::Ff {
                has_ce, control, ..
            } => PrimClass::Ff {
                has_ce: *has_ce,
                control: *control,
            },
            PrimKind::Srl16 { .. } => PrimClass::Srl16,
            PrimKind::Ram16x1 { .. } => PrimClass::Ram16,
            PrimKind::Rom16x1 { .. } => PrimClass::Rom16,
            PrimKind::Gnd => PrimClass::Const(Logic::Zero),
            PrimKind::Vcc => PrimClass::Const(Logic::One),
            _ => PrimClass::Comb,
        }
    }

    /// `true` when the primitive holds state across clock edges.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        matches!(
            self.class(),
            PrimClass::Ff { .. } | PrimClass::Srl16 | PrimClass::Ram16
        )
    }

    /// `true` for dedicated carry-chain elements (MUXCY/XORCY/MULT_AND)
    /// whose inter-element routes are silicon, not general fabric.
    #[must_use]
    pub fn is_carry(&self) -> bool {
        matches!(self, PrimKind::Muxcy | PrimKind::Xorcy | PrimKind::MultAnd)
    }

    /// Evaluates a *combinational* primitive given its input values in
    /// port-declaration order (excluding any clock port).
    ///
    /// Unknown (`X`/`Z`) inputs propagate pessimistically except where
    /// the boolean function is insensitive to them — e.g.
    /// `0 AND X = 0`, and a LUT whose cofactors agree on the unknown
    /// inputs still produces a known value.
    ///
    /// # Panics
    ///
    /// Panics if called on a sequential primitive or with the wrong
    /// number of inputs.
    #[must_use]
    pub fn eval_comb(&self, inputs: &[Logic]) -> Logic {
        match self {
            PrimKind::Inv => !inputs[0],
            PrimKind::Buf | PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => match inputs[0] {
                Logic::Zero => Logic::Zero,
                Logic::One => Logic::One,
                _ => Logic::X,
            },
            PrimKind::And(n) => {
                let mut acc = Logic::One;
                for &i in &inputs[..*n as usize] {
                    acc = acc & i;
                }
                acc
            }
            PrimKind::Or(n) => {
                let mut acc = Logic::Zero;
                for &i in &inputs[..*n as usize] {
                    acc = acc | i;
                }
                acc
            }
            PrimKind::Nand(n) => !PrimKind::And(*n).eval_comb(inputs),
            PrimKind::Nor(n) => !PrimKind::Or(*n).eval_comb(inputs),
            PrimKind::Xor(n) => {
                let mut acc = Logic::Zero;
                for &i in &inputs[..*n as usize] {
                    acc = acc ^ i;
                }
                acc
            }
            PrimKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            PrimKind::Mux2 => match inputs[2].to_bool() {
                Some(false) => pessimize(inputs[0]),
                Some(true) => pessimize(inputs[1]),
                None => {
                    // If both data inputs agree and are driven, sel is
                    // irrelevant.
                    if inputs[0] == inputs[1] && inputs[0].is_driven() {
                        inputs[0]
                    } else {
                        Logic::X
                    }
                }
            },
            PrimKind::Lut { inputs: n, init } => eval_lut(*n, *init, inputs),
            PrimKind::Muxcy => match inputs[2].to_bool() {
                Some(true) => pessimize(inputs[0]),  // s=1 → carry in
                Some(false) => pessimize(inputs[1]), // s=0 → di
                None => {
                    if inputs[0] == inputs[1] && inputs[0].is_driven() {
                        inputs[0]
                    } else {
                        Logic::X
                    }
                }
            },
            PrimKind::Xorcy => inputs[0] ^ inputs[1],
            PrimKind::MultAnd => inputs[0] & inputs[1],
            PrimKind::Rom16x1 { init } => eval_lut(4, *init, inputs),
            PrimKind::Gnd => Logic::Zero,
            PrimKind::Vcc => Logic::One,
            PrimKind::Ff { .. } | PrimKind::Srl16 { .. } | PrimKind::Ram16x1 { .. } => {
                panic!("eval_comb called on sequential primitive {}", self.name())
            }
        }
    }
}

fn pessimize(v: Logic) -> Logic {
    if v.is_driven() {
        v
    } else {
        Logic::X
    }
}

/// LUT evaluation with unknown-input cofactor analysis: if the output is
/// the same for every assignment of the unknown inputs, that value is
/// returned; otherwise `X`.
fn eval_lut(n: u8, init: u16, inputs: &[Logic]) -> Logic {
    let n = n as usize;
    let mut known = 0usize;
    let mut unknown_positions = Vec::new();
    for (i, v) in inputs.iter().take(n).enumerate() {
        match v.to_bool() {
            Some(true) => known |= 1 << i,
            Some(false) => {}
            None => unknown_positions.push(i),
        }
    }
    if unknown_positions.is_empty() {
        return Logic::from_bool((init >> known) & 1 == 1);
    }
    let combos = 1usize << unknown_positions.len();
    let mut first: Option<bool> = None;
    for combo in 0..combos {
        let mut idx = known;
        for (k, &pos) in unknown_positions.iter().enumerate() {
            if (combo >> k) & 1 == 1 {
                idx |= 1 << pos;
            }
        }
        let bit = (init >> idx) & 1 == 1;
        match first {
            None => first = Some(bit),
            Some(f) if f != bit => return Logic::X,
            Some(_) => {}
        }
    }
    Logic::from_bool(first.unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prim(name: &str) -> Primitive {
        Primitive::new(LIBRARY, name)
    }

    #[test]
    fn parse_known_primitives() {
        assert_eq!(
            PrimKind::from_primitive(&prim("and2")),
            Ok(PrimKind::And(2))
        );
        assert_eq!(
            PrimKind::from_primitive(&prim("xor3")),
            Ok(PrimKind::Xor(3))
        );
        assert_eq!(PrimKind::from_primitive(&prim("gnd")), Ok(PrimKind::Gnd));
        assert!(matches!(
            PrimKind::from_primitive(&Primitive::with_init(LIBRARY, "lut4", 0x6996)),
            Ok(PrimKind::Lut {
                inputs: 4,
                init: 0x6996
            })
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            PrimKind::from_primitive(&Primitive::new("asic", "and2")),
            Err(TechError::UnknownLibrary { .. })
        ));
        assert!(matches!(
            PrimKind::from_primitive(&prim("flux_capacitor")),
            Err(TechError::UnknownPrimitive { .. })
        ));
        assert!(matches!(
            PrimKind::from_primitive(&prim("lut4")),
            Err(TechError::MissingInit { .. })
        ));
        assert!(matches!(
            PrimKind::from_primitive(&Primitive::with_init(LIBRARY, "fd", 7)),
            Err(TechError::InvalidInit { .. })
        ));
    }

    #[test]
    fn round_trip_names() {
        for name in [
            "inv", "buf", "and2", "and3", "and4", "or2", "or3", "or4", "nand2", "nor2", "xor2",
            "xor3", "xnor2", "mux2", "muxcy", "xorcy", "mult_and", "fd", "fdc", "fdce", "fdre",
            "gnd", "vcc", "ibuf", "obuf", "bufg",
        ] {
            let kind = PrimKind::from_primitive(&prim(name)).expect(name);
            assert_eq!(kind.name(), name);
        }
    }

    #[test]
    fn gate_eval() {
        use Logic::*;
        assert_eq!(PrimKind::And(2).eval_comb(&[One, One]), One);
        assert_eq!(PrimKind::And(3).eval_comb(&[One, One, Zero]), Zero);
        assert_eq!(PrimKind::Or(2).eval_comb(&[Zero, Zero]), Zero);
        assert_eq!(PrimKind::Nand(2).eval_comb(&[One, One]), Zero);
        assert_eq!(PrimKind::Nor(2).eval_comb(&[Zero, Zero]), One);
        assert_eq!(PrimKind::Xor(3).eval_comb(&[One, One, One]), One);
        assert_eq!(PrimKind::Xnor2.eval_comb(&[One, One]), One);
        assert_eq!(PrimKind::Inv.eval_comb(&[Zero]), One);
        assert_eq!(PrimKind::Buf.eval_comb(&[One]), One);
        assert_eq!(PrimKind::Gnd.eval_comb(&[]), Zero);
        assert_eq!(PrimKind::Vcc.eval_comb(&[]), One);
    }

    #[test]
    fn mux_and_carry_eval() {
        use Logic::*;
        // mux2: inputs [i0, i1, sel]
        assert_eq!(PrimKind::Mux2.eval_comb(&[One, Zero, Zero]), One);
        assert_eq!(PrimKind::Mux2.eval_comb(&[One, Zero, One]), Zero);
        assert_eq!(PrimKind::Mux2.eval_comb(&[One, One, X]), One);
        assert_eq!(PrimKind::Mux2.eval_comb(&[One, Zero, X]), X);
        // muxcy: inputs [ci, di, s]; s=1 selects carry-in
        assert_eq!(PrimKind::Muxcy.eval_comb(&[One, Zero, One]), One);
        assert_eq!(PrimKind::Muxcy.eval_comb(&[One, Zero, Zero]), Zero);
        assert_eq!(PrimKind::Xorcy.eval_comb(&[One, Zero]), One);
        assert_eq!(PrimKind::MultAnd.eval_comb(&[One, One]), One);
    }

    #[test]
    fn lut_eval_matches_truth_table() {
        // lut2 with INIT=0b0110 is XOR.
        let l = PrimKind::Lut {
            inputs: 2,
            init: 0b0110,
        };
        use Logic::*;
        assert_eq!(l.eval_comb(&[Zero, Zero]), Zero);
        assert_eq!(l.eval_comb(&[One, Zero]), One);
        assert_eq!(l.eval_comb(&[Zero, One]), One);
        assert_eq!(l.eval_comb(&[One, One]), Zero);
    }

    #[test]
    fn lut_cofactor_analysis() {
        use Logic::*;
        // Output independent of i1: init pattern duplicates across i1.
        let l = PrimKind::Lut {
            inputs: 2,
            init: 0b1010, // o = i0
        };
        assert_eq!(l.eval_comb(&[One, X]), One);
        assert_eq!(l.eval_comb(&[Zero, X]), Zero);
        // XOR is sensitive to every input.
        let x = PrimKind::Lut {
            inputs: 2,
            init: 0b0110,
        };
        assert_eq!(x.eval_comb(&[One, X]), X);
    }

    #[test]
    fn rom_is_lut4() {
        let r = PrimKind::Rom16x1 { init: 0x8000 };
        use Logic::*;
        assert_eq!(r.eval_comb(&[One, One, One, One]), One);
        assert_eq!(r.eval_comb(&[Zero, One, One, One]), Zero);
    }

    #[test]
    fn port_interfaces() {
        assert_eq!(PrimKind::And(3).ports().len(), 4);
        assert_eq!(PrimKind::Mux2.ports().len(), 4);
        let ff = PrimKind::Ff {
            has_ce: true,
            control: FfControl::AsyncClear,
            init: Logic::Zero,
        };
        let names: Vec<_> = ff.ports().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, ["c", "d", "ce", "clr", "q"]);
        let srl = PrimKind::Srl16 { init: 0 };
        assert_eq!(srl.ports().iter().find(|p| p.name == "a").unwrap().width, 4);
    }

    #[test]
    fn classes() {
        assert!(PrimKind::And(2).class() == PrimClass::Comb);
        assert!(PrimKind::Srl16 { init: 0 }.is_sequential());
        assert!(PrimKind::Ram16x1 { init: 0 }.is_sequential());
        assert!(!PrimKind::Rom16x1 { init: 0 }.is_sequential());
        assert_eq!(PrimKind::Gnd.class(), PrimClass::Const(Logic::Zero));
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn eval_comb_rejects_sequential() {
        let _ = PrimKind::Srl16 { init: 0 }.eval_comb(&[]);
    }

    #[test]
    fn static_port_names_match_ports() {
        use ipd_hdl::PortDir;
        let kinds = [
            PrimKind::Inv,
            PrimKind::Buf,
            PrimKind::Ibuf,
            PrimKind::Obuf,
            PrimKind::Bufg,
            PrimKind::And(2),
            PrimKind::Or(3),
            PrimKind::Nand(4),
            PrimKind::Nor(2),
            PrimKind::Xor(3),
            PrimKind::Xnor2,
            PrimKind::Mux2,
            PrimKind::Lut {
                inputs: 1,
                init: 0b10,
            },
            PrimKind::Lut {
                inputs: 4,
                init: 0xABCD,
            },
            PrimKind::Muxcy,
            PrimKind::Xorcy,
            PrimKind::MultAnd,
            PrimKind::Rom16x1 { init: 7 },
        ];
        for kind in kinds {
            let ports = kind.ports();
            let inputs: Vec<&str> = ports
                .iter()
                .filter(|p| p.dir == PortDir::Input)
                .map(|p| p.name.as_str())
                .collect();
            assert_eq!(kind.comb_input_names(), inputs.as_slice(), "{kind:?}");
            let output = ports.iter().find(|p| p.dir == PortDir::Output).unwrap();
            assert_eq!(kind.output_name(), output.name, "{kind:?}");
        }
        // Sequential/const primitives have no positional comb inputs.
        for kind in [
            PrimKind::Gnd,
            PrimKind::Vcc,
            PrimKind::Srl16 { init: 0 },
            PrimKind::Ram16x1 { init: 0 },
        ] {
            assert!(kind.comb_input_names().is_empty(), "{kind:?}");
        }
    }
}
