//! The Virtex device catalog: part sizes for fit checks and layout views.

use std::fmt;

use crate::area::AreaCost;

/// One FPGA part of the Virtex-like family.
///
/// Geometry follows the original Virtex series: a CLB array of
/// `rows × cols`, each CLB holding two slices of two 4-input LUTs and
/// two flip-flops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Device {
    /// Part name, e.g. `"xcv300"`.
    pub name: &'static str,
    /// CLB rows.
    pub rows: u32,
    /// CLB columns.
    pub cols: u32,
    /// User I/O pads.
    pub io_pads: u32,
}

impl Device {
    /// Total CLBs.
    #[must_use]
    pub fn clbs(&self) -> u32 {
        self.rows * self.cols
    }

    /// Total slices (two per CLB).
    #[must_use]
    pub fn slices(&self) -> u32 {
        self.clbs() * 2
    }

    /// Total 4-input LUTs (two per slice).
    #[must_use]
    pub fn luts(&self) -> u32 {
        self.slices() * 2
    }

    /// Total flip-flops (two per slice).
    #[must_use]
    pub fn ffs(&self) -> u32 {
        self.slices() * 2
    }

    /// Whether an area cost fits on this part.
    #[must_use]
    pub fn fits(&self, area: &AreaCost) -> bool {
        area.luts <= self.luts()
            && area.ffs <= self.ffs()
            && area.slices() <= self.slices()
            && area.pads <= self.io_pads
    }

    /// Utilization of the scarcest resource, in percent.
    #[must_use]
    pub fn utilization(&self, area: &AreaCost) -> f64 {
        let lut = f64::from(area.luts) / f64::from(self.luts());
        let ff = f64::from(area.ffs) / f64::from(self.ffs());
        let slice = f64::from(area.slices()) / f64::from(self.slices());
        lut.max(ff).max(slice) * 100.0
    }

    /// The full part catalog, smallest first.
    #[must_use]
    pub fn catalog() -> &'static [Device] {
        &CATALOG
    }

    /// Looks up a part by name (case-insensitive).
    #[must_use]
    pub fn by_name(name: &str) -> Option<Device> {
        CATALOG
            .iter()
            .find(|d| d.name.eq_ignore_ascii_case(name))
            .copied()
    }

    /// The smallest catalog part that fits `area`.
    #[must_use]
    pub fn smallest_fitting(area: &AreaCost) -> Option<Device> {
        CATALOG.iter().find(|d| d.fits(area)).copied()
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}x{} CLBs, {} LUTs, {} FFs, {} I/O)",
            self.name,
            self.rows,
            self.cols,
            self.luts(),
            self.ffs(),
            self.io_pads
        )
    }
}

/// Virtex part sizes (CLB geometry from the Virtex data sheet family).
static CATALOG: [Device; 9] = [
    Device {
        name: "xcv50",
        rows: 16,
        cols: 24,
        io_pads: 180,
    },
    Device {
        name: "xcv100",
        rows: 20,
        cols: 30,
        io_pads: 180,
    },
    Device {
        name: "xcv150",
        rows: 24,
        cols: 36,
        io_pads: 260,
    },
    Device {
        name: "xcv200",
        rows: 28,
        cols: 42,
        io_pads: 284,
    },
    Device {
        name: "xcv300",
        rows: 32,
        cols: 48,
        io_pads: 316,
    },
    Device {
        name: "xcv400",
        rows: 40,
        cols: 60,
        io_pads: 404,
    },
    Device {
        name: "xcv600",
        rows: 48,
        cols: 72,
        io_pads: 512,
    },
    Device {
        name: "xcv800",
        rows: 56,
        cols: 84,
        io_pads: 512,
    },
    Device {
        name: "xcv1000",
        rows: 64,
        cols: 96,
        io_pads: 512,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_by_size() {
        let parts = Device::catalog();
        for pair in parts.windows(2) {
            assert!(pair[0].luts() < pair[1].luts());
        }
    }

    #[test]
    fn xcv50_geometry() {
        let d = Device::by_name("XCV50").expect("part");
        assert_eq!(d.clbs(), 384);
        assert_eq!(d.slices(), 768);
        assert_eq!(d.luts(), 1536);
        assert_eq!(d.ffs(), 1536);
    }

    #[test]
    fn fit_and_utilization() {
        let d = Device::by_name("xcv50").unwrap();
        let small = AreaCost {
            luts: 100,
            ffs: 50,
            carries: 10,
            pads: 8,
        };
        assert!(d.fits(&small));
        assert!(d.utilization(&small) > 0.0);
        let big = AreaCost {
            luts: 10_000,
            ffs: 0,
            carries: 0,
            pads: 0,
        };
        assert!(!d.fits(&big));
        let chosen = Device::smallest_fitting(&big).expect("some part fits");
        assert!(chosen.luts() >= 10_000);
    }

    #[test]
    fn unknown_part_is_none() {
        assert!(Device::by_name("xc4000").is_none());
    }
}
