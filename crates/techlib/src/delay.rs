//! The timing model: primitive delays and routing estimates.
//!
//! Numbers are modelled on a Virtex -6 speed grade. They are not vendor
//! sign-off data — the reproduction only needs the *relative* shape
//! (LUT ≫ carry, placed routing ≪ unplaced routing) that the paper's
//! estimator exposes to customers.

use std::collections::HashMap;
use std::sync::Arc;

use ipd_hdl::{NetId, Rloc};

use crate::prim::{PrimClass, PrimKind};

/// Nanosecond delay and timing parameters for the Virtex-like fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// LUT / gate propagation delay.
    pub lut_ns: f64,
    /// Carry-chain element delay.
    pub carry_ns: f64,
    /// Flip-flop clock-to-output delay.
    pub clk_to_q_ns: f64,
    /// Flip-flop setup time.
    pub setup_ns: f64,
    /// Net delay of one dedicated carry-chain hop (a carry element
    /// driving the next carry element). The route is silicon, so it is
    /// far below any general-fabric net and never pays the unplaced
    /// penalty.
    pub carry_net_ns: f64,
    /// Fixed component of any net delay.
    pub net_base_ns: f64,
    /// Additional delay per CLB of Manhattan distance (placed nets).
    pub net_per_clb_ns: f64,
    /// Additional delay per fanout load.
    pub net_per_fanout_ns: f64,
    /// Penalty multiplier applied to unplaced nets (the router must
    /// guess; placed macros are the paper's whole point).
    pub unplaced_factor: f64,
}

impl DelayModel {
    /// The default Virtex-like model.
    #[must_use]
    pub fn virtex() -> Self {
        DelayModel {
            lut_ns: 0.55,
            carry_ns: 0.07,
            clk_to_q_ns: 0.56,
            setup_ns: 0.45,
            carry_net_ns: 0.04,
            net_base_ns: 0.35,
            net_per_clb_ns: 0.12,
            net_per_fanout_ns: 0.08,
            unplaced_factor: 2.2,
        }
    }

    /// Propagation delay through a primitive (input pin to output pin).
    ///
    /// Sequential elements return their clock-to-q delay; see
    /// [`DelayModel::setup_ns`] for the input side.
    #[must_use]
    pub fn prim_delay(&self, kind: &PrimKind) -> f64 {
        match kind.class() {
            PrimClass::Comb | PrimClass::Rom16 => match kind {
                PrimKind::Muxcy | PrimKind::Xorcy | PrimKind::MultAnd => self.carry_ns,
                PrimKind::Buf | PrimKind::Gnd | PrimKind::Vcc => 0.0,
                PrimKind::Ibuf | PrimKind::Obuf | PrimKind::Bufg => self.lut_ns,
                _ => self.lut_ns,
            },
            PrimClass::Ff { .. } | PrimClass::Srl16 | PrimClass::Ram16 => self.clk_to_q_ns,
            PrimClass::Const(_) => 0.0,
        }
    }

    /// Routing delay between two placed locations with a given fanout.
    #[must_use]
    pub fn net_delay_placed(&self, from: Rloc, to: Rloc, fanout: usize) -> f64 {
        let dist = (from.row - to.row).unsigned_abs() + (from.col - to.col).unsigned_abs();
        self.net_base_ns
            + self.net_per_clb_ns * f64::from(dist)
            + self.net_per_fanout_ns * fanout.saturating_sub(1) as f64
    }

    /// Routing delay estimate when either endpoint is unplaced.
    #[must_use]
    pub fn net_delay_unplaced(&self, fanout: usize) -> f64 {
        (self.net_base_ns + self.net_per_fanout_ns * fanout.saturating_sub(1) as f64)
            * self.unplaced_factor
    }

    /// Routing delay of one edge, choosing the dedicated carry route
    /// when the hop is carry-element to carry-element; otherwise
    /// placed or unplaced general fabric depending on the endpoints.
    #[must_use]
    pub fn net_delay_edge(
        &self,
        from: Option<Rloc>,
        to: Option<Rloc>,
        fanout: usize,
        carry_hop: bool,
    ) -> f64 {
        if carry_hop {
            return self.carry_net_ns;
        }
        match (from, to) {
            (Some(a), Some(b)) => self.net_delay_placed(a, b, fanout),
            _ => self.net_delay_unplaced(fanout),
        }
    }

    /// Converts a critical-path delay to a clock frequency in MHz.
    #[must_use]
    pub fn to_mhz(&self, critical_path_ns: f64) -> f64 {
        if critical_path_ns <= 0.0 {
            return f64::INFINITY;
        }
        1000.0 / critical_path_ns
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::virtex()
    }
}

/// Backannotated per-`(net, sink)` routing delays, as produced by a
/// router from real wire geometry.
///
/// Sinks are keyed by the absolute placement of the reading leaf: every
/// load of a net inside one CLB sees the same route, so one entry per
/// `(net, CLB)` pair suffices. Nets or sinks without an entry fall back
/// to the heuristic estimate — a routed database is allowed to be
/// partial (unplaced leaves, primary output pads).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutedDelays {
    per_sink: HashMap<(NetId, Rloc), f64>,
}

impl RoutedDelays {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        RoutedDelays::default()
    }

    /// Records the routed delay of `net` into the sink CLB at `sink`.
    /// The slower route wins when two entries collide (pessimism over
    /// optimism for a signoff number).
    pub fn insert(&mut self, net: NetId, sink: Rloc, delay_ns: f64) {
        let entry = self.per_sink.entry((net, sink)).or_insert(delay_ns);
        if delay_ns > *entry {
            *entry = delay_ns;
        }
    }

    /// Looks up the routed delay of `net` into the sink CLB at `sink`.
    #[must_use]
    pub fn get(&self, net: NetId, sink: Rloc) -> Option<f64> {
        self.per_sink.get(&(net, sink)).copied()
    }

    /// Number of `(net, sink)` entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.per_sink.len()
    }

    /// Whether the database holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.per_sink.is_empty()
    }
}

/// Where net delays come from: the heuristic distance model, or real
/// routed geometry backannotated by a router.
///
/// This is the seam between [`DelayModel`] (primitive delays, which are
/// silicon facts) and net delays (which depend on where wires actually
/// go). Every timing consumer resolves net delays through exactly one
/// call, [`NetDelaySource::edge_delay`]; the `Heuristic` variant
/// reproduces the historical placed/unplaced math bit for bit.
#[derive(Debug, Clone, Default)]
pub enum NetDelaySource {
    /// The historical estimate: Manhattan distance when both endpoints
    /// are placed, a pessimistic penalty factor otherwise.
    #[default]
    Heuristic,
    /// Backannotated routed delays; sinks missing from the database
    /// fall back to the heuristic.
    Routed(Arc<RoutedDelays>),
}

impl NetDelaySource {
    /// Routing delay of one edge of `net` from its driver (placed at
    /// `from`, if placed) to a sink (placed at `to`, if placed) with
    /// the net's total `fanout`. Dedicated carry-chain hops ride the
    /// silicon carry route under either source.
    #[must_use]
    pub fn edge_delay(
        &self,
        model: &DelayModel,
        net: NetId,
        from: Option<Rloc>,
        to: Option<Rloc>,
        fanout: usize,
        carry_hop: bool,
    ) -> f64 {
        if carry_hop {
            return model.carry_net_ns;
        }
        if let NetDelaySource::Routed(routed) = self {
            if let Some(sink) = to {
                if let Some(ns) = routed.get(net, sink) {
                    return ns;
                }
            }
        }
        match (from, to) {
            (Some(a), Some(b)) => model.net_delay_placed(a, b, fanout),
            _ => model.net_delay_unplaced(fanout),
        }
    }

    /// Whether this source carries backannotated routed delays.
    #[must_use]
    pub fn is_routed(&self) -> bool {
        matches!(self, NetDelaySource::Routed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carry_is_faster_than_lut() {
        let m = DelayModel::virtex();
        assert!(m.prim_delay(&PrimKind::Muxcy) < m.prim_delay(&PrimKind::And(2)));
        assert!(
            m.prim_delay(&PrimKind::Xorcy) < m.prim_delay(&PrimKind::Lut { inputs: 4, init: 0 })
        );
    }

    #[test]
    fn placed_routing_scales_with_distance() {
        let m = DelayModel::virtex();
        let near = m.net_delay_placed(Rloc::new(0, 0), Rloc::new(0, 1), 1);
        let far = m.net_delay_placed(Rloc::new(0, 0), Rloc::new(8, 8), 1);
        assert!(far > near);
    }

    #[test]
    fn unplaced_penalty_applies() {
        let m = DelayModel::virtex();
        let placed = m.net_delay_placed(Rloc::new(0, 0), Rloc::new(0, 1), 2);
        let unplaced = m.net_delay_unplaced(2);
        assert!(unplaced > placed);
    }

    #[test]
    fn carry_route_beats_any_fabric_net() {
        let m = DelayModel::virtex();
        let adjacent = m.net_delay_placed(Rloc::new(0, 0), Rloc::new(1, 0), 1);
        assert!(m.carry_net_ns < adjacent);
        assert!(m.net_delay_edge(None, None, 2, true) < m.net_delay_edge(None, None, 1, false));
    }

    #[test]
    fn fanout_adds_delay() {
        let m = DelayModel::virtex();
        assert!(m.net_delay_unplaced(8) > m.net_delay_unplaced(1));
    }

    #[test]
    fn mhz_conversion() {
        let m = DelayModel::virtex();
        assert!((m.to_mhz(10.0) - 100.0).abs() < 1e-9);
        assert!(m.to_mhz(0.0).is_infinite());
    }

    #[test]
    fn heuristic_source_matches_net_delay_edge() {
        let m = DelayModel::virtex();
        let src = NetDelaySource::Heuristic;
        let net = NetId::from_index(0);
        let a = Rloc::new(0, 0);
        let b = Rloc::new(3, 4);
        for (from, to) in [
            (Some(a), Some(b)),
            (None, Some(b)),
            (Some(a), None),
            (None, None),
        ] {
            for fanout in [1usize, 2, 9] {
                for carry in [false, true] {
                    assert_eq!(
                        src.edge_delay(&m, net, from, to, fanout, carry),
                        m.net_delay_edge(from, to, fanout, carry),
                    );
                }
            }
        }
        assert!(!src.is_routed());
    }

    #[test]
    fn routed_source_overrides_and_falls_back() {
        let m = DelayModel::virtex();
        let net = NetId::from_index(7);
        let sink = Rloc::new(2, 2);
        let mut routed = RoutedDelays::new();
        routed.insert(net, sink, 1.25);
        // Slower duplicate wins; faster duplicate is ignored.
        routed.insert(net, sink, 1.5);
        routed.insert(net, sink, 0.5);
        assert_eq!(routed.get(net, sink), Some(1.5));
        assert_eq!(routed.len(), 1);
        let src = NetDelaySource::Routed(Arc::new(routed));
        assert!(src.is_routed());
        let from = Rloc::new(0, 0);
        // A known sink uses the routed number.
        assert_eq!(
            src.edge_delay(&m, net, Some(from), Some(sink), 3, false),
            1.5
        );
        // Carry hops win over routed entries.
        assert_eq!(
            src.edge_delay(&m, net, Some(from), Some(sink), 3, true),
            m.carry_net_ns
        );
        // Unknown sinks and unknown nets fall back to the heuristic.
        let other = Rloc::new(9, 9);
        assert_eq!(
            src.edge_delay(&m, net, Some(from), Some(other), 3, false),
            m.net_delay_placed(from, other, 3)
        );
        assert_eq!(
            src.edge_delay(&m, NetId::from_index(8), Some(from), None, 2, false),
            m.net_delay_unplaced(2)
        );
    }
}
