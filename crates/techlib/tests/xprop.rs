//! The four-state correctness law for every combinational primitive:
//! if an evaluation with `X`/`Z` inputs yields a *driven* value, then
//! every boolean resolution of those unknowns must yield that same
//! value; and if all inputs are driven, the result must match the
//! primitive's boolean function. This validates both plain gates and
//! the LUT cofactor analysis.

use ipd_hdl::Logic;
use ipd_techlib::PrimKind;

/// All comb primitives with a fixed input arity for the sweep.
fn comb_prims() -> Vec<(PrimKind, usize)> {
    let mut prims = vec![
        (PrimKind::Inv, 1),
        (PrimKind::Buf, 1),
        (PrimKind::And(2), 2),
        (PrimKind::And(3), 3),
        (PrimKind::And(4), 4),
        (PrimKind::Or(2), 2),
        (PrimKind::Or(3), 3),
        (PrimKind::Or(4), 4),
        (PrimKind::Nand(2), 2),
        (PrimKind::Nand(3), 3),
        (PrimKind::Nor(2), 2),
        (PrimKind::Nor(3), 3),
        (PrimKind::Xor(2), 2),
        (PrimKind::Xor(3), 3),
        (PrimKind::Xnor2, 2),
        (PrimKind::Mux2, 3),
        (PrimKind::Muxcy, 3),
        (PrimKind::Xorcy, 2),
        (PrimKind::MultAnd, 2),
    ];
    // A spread of LUT truth tables, including constants, parity and
    // single-variable functions.
    for init in [
        0x0000u16, 0xFFFF, 0x6996, 0xAAAA, 0xF0F0, 0x8000, 0x1EE1, 0x0001,
    ] {
        prims.push((PrimKind::Lut { inputs: 4, init }, 4));
        prims.push((
            PrimKind::Lut {
                inputs: 2,
                init: init & 0xF,
            },
            2,
        ));
    }
    prims.push((PrimKind::Rom16x1 { init: 0xBEEF }, 4));
    prims
}

/// All 4^n input vectors over {0,1,X,Z}.
fn four_state_vectors(n: usize) -> Vec<Vec<Logic>> {
    let states = [Logic::Zero, Logic::One, Logic::X, Logic::Z];
    let mut out = Vec::with_capacity(4usize.pow(n as u32));
    for combo in 0..4usize.pow(n as u32) {
        let mut v = Vec::with_capacity(n);
        let mut c = combo;
        for _ in 0..n {
            v.push(states[c % 4]);
            c /= 4;
        }
        out.push(v);
    }
    out
}

/// All boolean resolutions of a four-state vector.
fn resolutions(v: &[Logic]) -> Vec<Vec<Logic>> {
    let unknown: Vec<usize> = v
        .iter()
        .enumerate()
        .filter(|(_, l)| !l.is_driven())
        .map(|(i, _)| i)
        .collect();
    let mut out = Vec::with_capacity(1 << unknown.len());
    for combo in 0..(1usize << unknown.len()) {
        let mut r = v.to_vec();
        for (k, &idx) in unknown.iter().enumerate() {
            r[idx] = Logic::from_bool((combo >> k) & 1 == 1);
        }
        out.push(r);
    }
    out
}

#[test]
fn driven_results_are_sound_under_all_resolutions() {
    for (prim, arity) in comb_prims() {
        for vector in four_state_vectors(arity) {
            let result = prim.eval_comb(&vector);
            if !result.is_driven() {
                continue;
            }
            for resolution in resolutions(&vector) {
                let resolved = prim.eval_comb(&resolution);
                assert_eq!(
                    resolved, result,
                    "{}: eval{vector:?} = {result:?} but resolution {resolution:?} gives {resolved:?}",
                    prim.name()
                );
            }
        }
    }
}

#[test]
fn driven_inputs_always_give_driven_outputs() {
    for (prim, arity) in comb_prims() {
        for vector in four_state_vectors(arity) {
            if vector.iter().all(|l| l.is_driven()) {
                let result = prim.eval_comb(&vector);
                assert!(
                    result.is_driven(),
                    "{}: fully driven {vector:?} gave {result:?}",
                    prim.name()
                );
            }
        }
    }
}

#[test]
fn lut_cofactor_analysis_is_maximally_precise() {
    // For LUTs the analysis must return a driven value exactly when
    // all resolutions agree — no missed opportunities either.
    for init in [0x6996u16, 0xAAAA, 0x0000, 0xFFFF, 0x8001, 0x00FF] {
        let prim = PrimKind::Lut { inputs: 4, init };
        for vector in four_state_vectors(4) {
            let result = prim.eval_comb(&vector);
            let resolved: Vec<Logic> = resolutions(&vector)
                .into_iter()
                .map(|r| prim.eval_comb(&r))
                .collect();
            let first = resolved[0];
            let all_agree = resolved.iter().all(|&r| r == first);
            if all_agree {
                assert_eq!(
                    result, first,
                    "INIT={init:#06x} {vector:?}: cofactors agree on {first:?} but eval says {result:?}"
                );
            } else {
                assert!(
                    !result.is_driven(),
                    "INIT={init:#06x} {vector:?}: cofactors disagree but eval claims {result:?}"
                );
            }
        }
    }
}
