//! Compress-once packed representations of archives and bundles.
//!
//! [`Archive::to_bytes`] re-runs LZSS over every entry each time it is
//! called, which is fine for a one-shot download but wrong for a
//! delivery server answering the same request millions of times. The
//! types here split *packing* from *measuring and serving*:
//!
//! - [`PackedEntry`] — one entry's wire segment (name, lengths, CRC,
//!   compressed payload), compressed exactly once and held behind an
//!   `Arc` so clones and subsets share storage.
//! - [`PackedArchive`] — a container whose serialization concatenates
//!   the cached segments; byte-identical to [`Archive::to_bytes`] by
//!   construction (both emit through the same wire helpers).
//! - [`PackedBundle`] / [`PackedSet`] — the bundle-level analogs, with
//!   memoized whole-container bytes for zero-copy serving.
//!
//! Independent entries are compressed in parallel with std scoped
//! threads when the `threads` feature is enabled (the same pattern as
//! `ipd-sim`'s `VectorSweep`).

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::archive::{write_entry_segment, write_header, Archive};
use crate::bundle::{Bundle, BundleSet};
use crate::error::PackError;

/// One archive entry, compressed exactly once into its wire segment.
#[derive(Debug, Clone)]
pub struct PackedEntry {
    name: String,
    raw_len: usize,
    segment: Arc<[u8]>,
}

impl PackedEntry {
    /// Compresses one `(name, data)` pair into its cached segment.
    fn pack(name: &str, data: &[u8]) -> Self {
        let mut segment = Vec::new();
        write_entry_segment(&mut segment, name, data);
        PackedEntry {
            name: name.to_owned(),
            raw_len: data.len(),
            segment: segment.into(),
        }
    }

    /// Entry name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Uncompressed length of the entry.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.raw_len
    }

    /// Length of the cached wire segment (headers + packed payload).
    #[must_use]
    pub fn segment_len(&self) -> usize {
        self.segment.len()
    }
}

/// Compresses a list of `(name, data)` jobs, spreading independent
/// entries across up to `threads` scoped worker threads.
fn pack_jobs(jobs: &[(&str, &[u8])], threads: usize) -> Vec<PackedEntry> {
    let threads = threads.max(1);
    #[cfg(feature = "threads")]
    if threads > 1 && jobs.len() > 1 {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let mut slots: Vec<Option<PackedEntry>> = (0..jobs.len()).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        let out = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(jobs.len()) {
                scope.spawn(|| loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(name, data)) = jobs.get(k) else {
                        break;
                    };
                    let packed = PackedEntry::pack(name, data);
                    out.lock().expect("slots lock")[k] = Some(packed);
                });
            }
        });
        return slots
            .into_iter()
            .map(|s| s.expect("every job packed"))
            .collect();
    }
    let _ = threads;
    jobs.iter()
        .map(|&(name, data)| PackedEntry::pack(name, data))
        .collect()
}

/// An archive compressed once, serialized by concatenating cached
/// segments.
///
/// # Examples
///
/// ```
/// use ipd_pack::{Archive, PackedArchive};
///
/// # fn main() -> Result<(), ipd_pack::PackError> {
/// let mut archive = Archive::new("applet");
/// archive.add("kcm.class", b"...bytecode...".to_vec())?;
/// let packed = PackedArchive::from_archive(&archive);
/// // Byte-identical to the compress-every-time path.
/// assert_eq!(packed.to_bytes(), archive.to_bytes());
/// assert_eq!(packed.packed_size(), archive.packed_size());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedArchive {
    name: String,
    header: Arc<[u8]>,
    entries: Vec<PackedEntry>,
    packed_size: usize,
}

impl PackedArchive {
    /// Compresses every entry of `archive` once (sequentially).
    #[must_use]
    pub fn from_archive(archive: &Archive) -> Self {
        Self::with_threads(archive, 1)
    }

    /// Compresses entries on up to `threads` worker threads.
    #[must_use]
    pub fn with_threads(archive: &Archive, threads: usize) -> Self {
        let jobs: Vec<(&str, &[u8])> = archive
            .entries()
            .iter()
            .map(|e| (e.name(), e.data()))
            .collect();
        let entries = pack_jobs(&jobs, threads);
        Self::assemble(archive.name(), entries)
    }

    /// Builds the container from already-packed entry segments.
    fn assemble(name: &str, entries: Vec<PackedEntry>) -> Self {
        let mut header = Vec::new();
        write_header(&mut header, name, entries.len());
        let packed_size =
            header.len() + entries.iter().map(PackedEntry::segment_len).sum::<usize>();
        PackedArchive {
            name: name.to_owned(),
            header: header.into(),
            entries,
            packed_size,
        }
    }

    /// Archive name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The packed entries.
    #[must_use]
    pub fn entries(&self) -> &[PackedEntry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when there are no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialized size in bytes — memoized, no compression performed.
    #[must_use]
    pub fn packed_size(&self) -> usize {
        self.packed_size
    }

    /// Total uncompressed payload size.
    #[must_use]
    pub fn raw_size(&self) -> usize {
        self.entries.iter().map(PackedEntry::raw_len).sum()
    }

    /// Serializes the container by concatenating the cached segments.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_size);
        out.extend_from_slice(&self.header);
        for entry in &self.entries {
            out.extend_from_slice(&entry.segment);
        }
        out
    }

    /// Decompresses back into an [`Archive`].
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from container parsing (which cannot
    /// fail for segments this type produced, but the signature keeps
    /// the round-trip honest).
    pub fn unpack(&self) -> Result<Archive, PackError> {
        Archive::from_bytes(&self.to_bytes())
    }
}

/// A bundle compressed once, with memoized whole-container bytes.
#[derive(Debug, Clone)]
pub struct PackedBundle {
    name: String,
    description: String,
    archive: PackedArchive,
    wire: OnceLock<Arc<[u8]>>,
}

impl PackedBundle {
    /// Packs a bundle (sequentially).
    #[must_use]
    pub fn from_bundle(bundle: &Bundle) -> Self {
        Self::with_threads(bundle, 1)
    }

    /// Packs a bundle's entries on up to `threads` worker threads.
    #[must_use]
    pub fn with_threads(bundle: &Bundle, threads: usize) -> Self {
        PackedBundle {
            name: bundle.name().to_owned(),
            description: bundle.description().to_owned(),
            archive: PackedArchive::with_threads(bundle.archive(), threads),
            wire: OnceLock::new(),
        }
    }

    fn assemble(bundle: &Bundle, entries: Vec<PackedEntry>) -> Self {
        PackedBundle {
            name: bundle.name().to_owned(),
            description: bundle.description().to_owned(),
            archive: PackedArchive::assemble(bundle.archive().name(), entries),
            wire: OnceLock::new(),
        }
    }

    /// Bundle name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table 1 description column.
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The packed archive.
    #[must_use]
    pub fn archive(&self) -> &PackedArchive {
        &self.archive
    }

    /// Download size in bytes — memoized.
    #[must_use]
    pub fn packed_size(&self) -> usize {
        self.archive.packed_size()
    }

    /// Uncompressed payload size.
    #[must_use]
    pub fn raw_size(&self) -> usize {
        self.archive.raw_size()
    }

    /// The full serialized container, memoized behind an `Arc` so
    /// serving the same bundle many times is a pointer clone.
    #[must_use]
    pub fn wire_bytes(&self) -> Arc<[u8]> {
        Arc::clone(self.wire.get_or_init(|| self.archive.to_bytes().into()))
    }

    /// Decompresses back into an [`Archive`].
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from container parsing.
    pub fn unpack(&self) -> Result<Archive, PackError> {
        self.archive.unpack()
    }
}

/// A set of packed bundles sharing `Arc` storage; subsets are pointer
/// clones, never recompressions.
///
/// # Examples
///
/// ```
/// use ipd_pack::{BundleSet, PackedSet};
///
/// let set = BundleSet::jhdl_applet_set();
/// let packed = PackedSet::from_set(&set);
/// assert_eq!(packed.total_packed(), set.total_packed());
/// let sub = packed.subset(&["Virtex"]);
/// assert_eq!(sub.bundles().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PackedSet {
    bundles: Vec<Arc<PackedBundle>>,
}

impl PackedSet {
    /// Packs every bundle of `set` once (sequentially).
    #[must_use]
    pub fn from_set(set: &BundleSet) -> Self {
        Self::with_threads(set, 1)
    }

    /// Packs the set with up to `threads` worker threads. The job list
    /// is flattened across bundles so every independent *entry*
    /// parallelizes, not just whole bundles.
    #[must_use]
    pub fn with_threads(set: &BundleSet, threads: usize) -> Self {
        let jobs: Vec<(&str, &[u8])> = set
            .bundles()
            .iter()
            .flat_map(|b| b.archive().entries().iter().map(|e| (e.name(), e.data())))
            .collect();
        let mut packed = pack_jobs(&jobs, threads).into_iter();
        let bundles = set
            .bundles()
            .iter()
            .map(|b| {
                let entries: Vec<PackedEntry> = packed.by_ref().take(b.archive().len()).collect();
                Arc::new(PackedBundle::assemble(b, entries))
            })
            .collect();
        PackedSet { bundles }
    }

    /// Wraps already-shared bundles into a set.
    #[must_use]
    pub fn from_shared(bundles: Vec<Arc<PackedBundle>>) -> Self {
        PackedSet { bundles }
    }

    /// The bundles in order.
    #[must_use]
    pub fn bundles(&self) -> &[Arc<PackedBundle>] {
        &self.bundles
    }

    /// Looks up a bundle by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Arc<PackedBundle>> {
        self.bundles.iter().find(|b| b.name() == name)
    }

    /// A subset by names — shares storage with `self` (unknown names
    /// are skipped).
    #[must_use]
    pub fn subset(&self, names: &[&str]) -> PackedSet {
        PackedSet {
            bundles: self
                .bundles
                .iter()
                .filter(|b| names.contains(&b.name()))
                .map(Arc::clone)
                .collect(),
        }
    }

    /// Total download size of the set — memoized, no compression.
    #[must_use]
    pub fn total_packed(&self) -> usize {
        self.bundles.iter().map(|b| b.packed_size()).sum()
    }

    /// Total uncompressed size of the set.
    #[must_use]
    pub fn total_raw(&self) -> usize {
        self.bundles.iter().map(|b| b.raw_size()).sum()
    }
}

impl fmt::Display for PackedSet {
    /// Renders the Table 1 layout from memoized sizes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<14} {:>9}  Description", "File", "Size")?;
        for b in &self.bundles {
            writeln!(
                f,
                "{:<14} {:>6} kB  {}",
                format!("{}.jar", b.name()),
                b.packed_size().div_ceil(1024),
                b.description()
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>6} kB",
            "Total",
            self.total_packed().div_ceil(1024)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_archive() -> Archive {
        let mut a = Archive::new("sample");
        a.add("one", b"partial product lookup ".repeat(40).to_vec())
            .unwrap();
        a.add("two", vec![7u8; 900]).unwrap();
        a.add("empty", Vec::new()).unwrap();
        a
    }

    #[test]
    fn packed_archive_bytes_match_archive_bytes() {
        let a = sample_archive();
        let p = PackedArchive::from_archive(&a);
        assert_eq!(p.to_bytes(), a.to_bytes());
        assert_eq!(p.packed_size(), a.packed_size());
        assert_eq!(p.raw_size(), a.raw_size());
        assert_eq!(p.unpack().unwrap(), a);
    }

    #[test]
    fn parallel_packing_matches_sequential() {
        let a = sample_archive();
        let seq = PackedArchive::with_threads(&a, 1);
        let par = PackedArchive::with_threads(&a, 8);
        assert_eq!(seq.to_bytes(), par.to_bytes());
    }

    #[test]
    fn wire_bytes_are_memoized_and_shared() {
        let set = BundleSet::jhdl_applet_set();
        let packed = PackedSet::from_set(&set);
        let bundle = packed.get("Applet").expect("applet");
        let first = bundle.wire_bytes();
        let second = bundle.wire_bytes();
        assert!(
            Arc::ptr_eq(&first, &second),
            "serve-many is a pointer clone"
        );
        assert_eq!(first.len(), bundle.packed_size());
    }

    #[test]
    fn subsets_share_bundle_storage() {
        let packed = PackedSet::from_set(&BundleSet::jhdl_applet_set());
        let sub = packed.subset(&["Virtex", "Applet"]);
        assert_eq!(sub.bundles().len(), 2);
        for b in sub.bundles() {
            let original = packed.get(b.name()).expect("from full set");
            assert!(Arc::ptr_eq(b, original), "{} not shared", b.name());
        }
    }

    #[test]
    fn set_display_matches_bundle_set_display() {
        let set = BundleSet::jhdl_applet_set();
        let packed = PackedSet::from_set(&set);
        assert_eq!(packed.to_string(), set.to_string());
    }
}
