//! CRC-32 (IEEE 802.3), as used by Jar/ZIP entries to detect
//! corruption.

/// Computes the CRC-32 checksum of a byte slice.
///
/// # Examples
///
/// ```
/// use ipd_pack::crc32;
///
/// assert_eq!(crc32(b""), 0);
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the standard check value
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

/// Lazily built CRC table (reflected polynomial 0xEDB88320).
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"constant coefficient multiplier".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
