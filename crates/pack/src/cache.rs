//! Process-wide compress-once cache for the built-in bundle sets.
//!
//! The built-in sets embed this workspace's sources at compile time,
//! so their packed form is immutable for the life of the process.
//! Every measure/serve path (`IpExecutable::download_size`, applet
//! host downloads, the Table 1 renderers) can therefore share one
//! parallel packing pass instead of re-running LZSS per call.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::bundle::BundleSet;
use crate::packed::PackedSet;

static FULL_SET: OnceLock<PackedSet> = OnceLock::new();
static PACK_PASSES: AtomicU64 = AtomicU64::new(0);

/// Default worker-thread count for parallel packing: the machine's
/// available parallelism (1 when it cannot be queried, or when the
/// `threads` feature is off).
#[must_use]
pub fn default_threads() -> usize {
    if cfg!(feature = "threads") {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        1
    }
}

/// The packed [`BundleSet::full_set`], compressed exactly once per
/// process (in parallel) and shared behind `Arc` storage thereafter.
///
/// # Examples
///
/// ```
/// use ipd_pack::shared_full_set;
///
/// let a = shared_full_set().total_packed();
/// let b = shared_full_set().total_packed(); // memoized, no LZSS run
/// assert_eq!(a, b);
/// ```
#[must_use]
pub fn shared_full_set() -> &'static PackedSet {
    FULL_SET.get_or_init(|| {
        PACK_PASSES.fetch_add(1, Ordering::Relaxed);
        PackedSet::with_threads(&BundleSet::full_set(), default_threads())
    })
}

/// The packed Table 1 applet set — a storage-sharing subset of
/// [`shared_full_set`], so it costs no additional compression.
#[must_use]
pub fn shared_applet_set() -> PackedSet {
    shared_full_set().subset(&["JHDLBase", "Virtex", "Viewer", "Applet"])
}

/// How many full compression passes this process has run (at most 1
/// once [`shared_full_set`] has been touched) — the bench uses this to
/// prove the compress-once claim.
#[must_use]
pub fn pack_passes() -> u64 {
    PACK_PASSES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_set_is_built_once_and_matches_fresh_packing() {
        let shared = shared_full_set();
        assert_eq!(
            shared.total_packed(),
            BundleSet::full_set().total_packed(),
            "cache must not change Table 1 sizes"
        );
        let before = pack_passes();
        let again = shared_full_set();
        assert_eq!(pack_passes(), before, "second access repacks nothing");
        assert!(Arc::ptr_eq(&shared.bundles()[0], &again.bundles()[0]));
    }

    #[test]
    fn applet_set_shares_storage_with_full_set() {
        let full = shared_full_set();
        let applet = shared_applet_set();
        assert_eq!(applet.bundles().len(), 4);
        for b in applet.bundles() {
            let original = full.get(b.name()).expect("subset of full");
            assert!(Arc::ptr_eq(b, original));
        }
    }
}
