//! Bundle partitioning — the reproduction of the paper's Table 1.
//!
//! "The binaries associated with the JHDL design tool are partitioned
//! into a number of smaller, more specific Jar archive files. This
//! allows a given applet to require only those Jar files required by
//! the applet code" (paper §4.4). Here the "binaries" are the actual
//! source modules of this workspace, embedded at compile time, so the
//! bundle sizes track the real code a delivery executable ships.

use std::fmt;
use std::sync::OnceLock;

use crate::archive::Archive;
use crate::error::PackError;

/// One downloadable code bundle (a "Jar file").
#[derive(Debug, Clone)]
pub struct Bundle {
    name: String,
    description: String,
    archive: Archive,
    /// Memoized compressed size: measuring and rendering (the Table 1
    /// `Display`) must not re-run LZSS per call.
    packed_size: OnceLock<usize>,
}

impl PartialEq for Bundle {
    fn eq(&self, other: &Self) -> bool {
        // The memoized size is derived state, not identity.
        self.name == other.name
            && self.description == other.description
            && self.archive == other.archive
    }
}

impl Eq for Bundle {}

impl Bundle {
    /// Builds a bundle from `(entry name, contents)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::DuplicateEntry`] on repeated entry names.
    pub fn from_entries(
        name: impl Into<String>,
        description: impl Into<String>,
        entries: &[(&str, &str)],
    ) -> Result<Self, PackError> {
        let name = name.into();
        let mut archive = Archive::new(name.clone());
        for (entry_name, contents) in entries {
            archive.add(*entry_name, contents.as_bytes().to_vec())?;
        }
        Ok(Bundle {
            name,
            description: description.into(),
            archive,
            packed_size: OnceLock::new(),
        })
    }

    /// Bundle name, e.g. `"JHDLBase"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable description (the Table 1 description column).
    #[must_use]
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The underlying archive.
    #[must_use]
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// Compressed (download) size in bytes. The first call compresses
    /// the archive; every later call returns the memoized size.
    #[must_use]
    pub fn packed_size(&self) -> usize {
        *self.packed_size.get_or_init(|| self.archive.packed_size())
    }

    /// Uncompressed payload size in bytes.
    #[must_use]
    pub fn raw_size(&self) -> usize {
        self.archive.raw_size()
    }
}

/// A set of bundles with a size table, the analog of the paper's
/// Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleSet {
    bundles: Vec<Bundle>,
}

impl BundleSet {
    /// Builds a set from bundles.
    #[must_use]
    pub fn new(bundles: Vec<Bundle>) -> Self {
        BundleSet { bundles }
    }

    /// The four bundles used by the constant-multiplier applet, the
    /// direct counterpart of the paper's Table 1:
    /// `JHDLBase` (circuit classes & simulator), `Virtex` (technology
    /// library), `Viewer` (schematic viewers), `Applet` (the module
    /// generator plus applet glue).
    #[must_use]
    pub fn jhdl_applet_set() -> Self {
        BundleSet::new(vec![
            base_bundle(),
            virtex_bundle(),
            viewer_bundle(),
            applet_bundle(),
        ])
    }

    /// The applet set plus the optional bundles a vendor can add for
    /// richer executables (netlisters, the estimator, the full module
    /// generator library).
    #[must_use]
    pub fn full_set() -> Self {
        let mut set = Self::jhdl_applet_set();
        set.bundles.push(netlist_bundle());
        set.bundles.push(estimator_bundle());
        set.bundles.push(modgen_bundle());
        set
    }

    /// The bundles in order.
    #[must_use]
    pub fn bundles(&self) -> &[Bundle] {
        &self.bundles
    }

    /// Looks up a bundle by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Bundle> {
        self.bundles.iter().find(|b| b.name == name)
    }

    /// A subset by names (unknown names are skipped).
    #[must_use]
    pub fn subset(&self, names: &[&str]) -> BundleSet {
        BundleSet {
            bundles: self
                .bundles
                .iter()
                .filter(|b| names.contains(&b.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Total download size of the set.
    #[must_use]
    pub fn total_packed(&self) -> usize {
        self.bundles.iter().map(Bundle::packed_size).sum()
    }

    /// Total uncompressed size of the set.
    #[must_use]
    pub fn total_raw(&self) -> usize {
        self.bundles.iter().map(Bundle::raw_size).sum()
    }
}

impl fmt::Display for BundleSet {
    /// Renders the Table 1 layout: file, size, description.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<14} {:>9}  Description", "File", "Size")?;
        for b in &self.bundles {
            writeln!(
                f,
                "{:<14} {:>6} kB  {}",
                format!("{}.jar", b.name()),
                b.packed_size().div_ceil(1024),
                b.description()
            )?;
        }
        writeln!(
            f,
            "{:<14} {:>6} kB",
            "Total",
            self.total_packed().div_ceil(1024)
        )
    }
}

fn base_bundle() -> Bundle {
    Bundle::from_entries(
        "JHDLBase",
        "Circuit classes & simulator",
        &[
            ("hdl/logic.rs", include_str!("../../hdl/src/logic.rs")),
            ("hdl/cell.rs", include_str!("../../hdl/src/cell.rs")),
            ("hdl/wire.rs", include_str!("../../hdl/src/wire.rs")),
            ("hdl/circuit.rs", include_str!("../../hdl/src/circuit.rs")),
            ("hdl/flatten.rs", include_str!("../../hdl/src/flatten.rs")),
            ("hdl/validate.rs", include_str!("../../hdl/src/validate.rs")),
            ("hdl/stats.rs", include_str!("../../hdl/src/stats.rs")),
            ("hdl/id.rs", include_str!("../../hdl/src/id.rs")),
            ("hdl/error.rs", include_str!("../../hdl/src/error.rs")),
            ("hdl/lib.rs", include_str!("../../hdl/src/lib.rs")),
            ("sim/compile.rs", include_str!("../../sim/src/compile.rs")),
            (
                "sim/simulator.rs",
                include_str!("../../sim/src/simulator.rs"),
            ),
            ("sim/waveform.rs", include_str!("../../sim/src/waveform.rs")),
            ("sim/error.rs", include_str!("../../sim/src/error.rs")),
            ("sim/lib.rs", include_str!("../../sim/src/lib.rs")),
        ],
    )
    .expect("static entry names are unique")
}

fn virtex_bundle() -> Bundle {
    Bundle::from_entries(
        "Virtex",
        "Virtex technology library",
        &[
            ("techlib/prim.rs", include_str!("../../techlib/src/prim.rs")),
            (
                "techlib/builder.rs",
                include_str!("../../techlib/src/builder.rs"),
            ),
            ("techlib/area.rs", include_str!("../../techlib/src/area.rs")),
            (
                "techlib/delay.rs",
                include_str!("../../techlib/src/delay.rs"),
            ),
            (
                "techlib/device.rs",
                include_str!("../../techlib/src/device.rs"),
            ),
            (
                "techlib/error.rs",
                include_str!("../../techlib/src/error.rs"),
            ),
            ("techlib/lib.rs", include_str!("../../techlib/src/lib.rs")),
        ],
    )
    .expect("static entry names are unique")
}

fn viewer_bundle() -> Bundle {
    Bundle::from_entries(
        "Viewer",
        "Schematic viewers",
        &[
            (
                "viewer/hierarchy.rs",
                include_str!("../../viewer/src/hierarchy.rs"),
            ),
            (
                "viewer/schematic.rs",
                include_str!("../../viewer/src/schematic.rs"),
            ),
            (
                "viewer/layout.rs",
                include_str!("../../viewer/src/layout.rs"),
            ),
            ("viewer/wave.rs", include_str!("../../viewer/src/wave.rs")),
            ("viewer/lib.rs", include_str!("../../viewer/src/lib.rs")),
        ],
    )
    .expect("static entry names are unique")
}

fn applet_bundle() -> Bundle {
    Bundle::from_entries(
        "Applet",
        "Module generator & applet",
        &[
            ("modgen/kcm.rs", include_str!("../../modgen/src/kcm.rs")),
            (
                "applet/manifest.txt",
                "applet: kcm-evaluator\nmain: KcmAppletSession\nrequires: JHDLBase, Virtex, Viewer\n",
            ),
        ],
    )
    .expect("static entry names are unique")
}

fn netlist_bundle() -> Bundle {
    Bundle::from_entries(
        "Netlist",
        "EDIF/VHDL/Verilog netlisters (licensed users)",
        &[
            ("netlist/edif.rs", include_str!("../../netlist/src/edif.rs")),
            ("netlist/vhdl.rs", include_str!("../../netlist/src/vhdl.rs")),
            (
                "netlist/verilog.rs",
                include_str!("../../netlist/src/verilog.rs"),
            ),
            (
                "netlist/names.rs",
                include_str!("../../netlist/src/names.rs"),
            ),
            (
                "netlist/sexpr.rs",
                include_str!("../../netlist/src/sexpr.rs"),
            ),
            (
                "netlist/error.rs",
                include_str!("../../netlist/src/error.rs"),
            ),
            ("netlist/lib.rs", include_str!("../../netlist/src/lib.rs")),
        ],
    )
    .expect("static entry names are unique")
}

fn estimator_bundle() -> Bundle {
    Bundle::from_entries(
        "Estimator",
        "Area & timing estimator",
        &[
            (
                "estimate/area.rs",
                include_str!("../../estimate/src/area.rs"),
            ),
            (
                "estimate/timing.rs",
                include_str!("../../estimate/src/timing.rs"),
            ),
            (
                "estimate/error.rs",
                include_str!("../../estimate/src/error.rs"),
            ),
            ("estimate/lib.rs", include_str!("../../estimate/src/lib.rs")),
        ],
    )
    .expect("static entry names are unique")
}

fn modgen_bundle() -> Bundle {
    Bundle::from_entries(
        "ModGen",
        "Full module generator library",
        &[
            ("modgen/add.rs", include_str!("../../modgen/src/add.rs")),
            ("modgen/kcm.rs", include_str!("../../modgen/src/kcm.rs")),
            ("modgen/mult.rs", include_str!("../../modgen/src/mult.rs")),
            (
                "modgen/bitsum.rs",
                include_str!("../../modgen/src/bitsum.rs"),
            ),
            (
                "modgen/counter.rs",
                include_str!("../../modgen/src/counter.rs"),
            ),
            (
                "modgen/register.rs",
                include_str!("../../modgen/src/register.rs"),
            ),
            (
                "modgen/compare.rs",
                include_str!("../../modgen/src/compare.rs"),
            ),
            ("modgen/rom.rs", include_str!("../../modgen/src/rom.rs")),
            ("modgen/accum.rs", include_str!("../../modgen/src/accum.rs")),
            ("modgen/fir.rs", include_str!("../../modgen/src/fir.rs")),
            (
                "modgen/logicgen.rs",
                include_str!("../../modgen/src/logicgen.rs"),
            ),
            ("modgen/lib.rs", include_str!("../../modgen/src/lib.rs")),
        ],
    )
    .expect("static entry names are unique")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applet_set_has_the_four_table1_rows() {
        let set = BundleSet::jhdl_applet_set();
        let names: Vec<_> = set.bundles().iter().map(|b| b.name().to_owned()).collect();
        assert_eq!(names, ["JHDLBase", "Virtex", "Viewer", "Applet"]);
    }

    #[test]
    fn table1_shape_holds() {
        // The paper's Table 1 shape: the base bundle is the largest,
        // the applet bundle by far the smallest, and partitioning lets
        // an applet skip unneeded code.
        let set = BundleSet::jhdl_applet_set();
        let base = set.get("JHDLBase").unwrap().packed_size();
        let virtex = set.get("Virtex").unwrap().packed_size();
        let viewer = set.get("Viewer").unwrap().packed_size();
        let applet = set.get("Applet").unwrap().packed_size();
        assert!(base > virtex, "base {base} > virtex {virtex}");
        assert!(virtex > viewer, "virtex {virtex} > viewer {viewer}");
        assert!(viewer > applet, "viewer {viewer} > applet {applet}");
        assert!(base > 5 * applet, "applet is by far the smallest");
    }

    #[test]
    fn compression_saves_bandwidth() {
        let set = BundleSet::jhdl_applet_set();
        assert!(set.total_packed() < set.total_raw());
    }

    #[test]
    fn bundles_round_trip_through_bytes() {
        let set = BundleSet::jhdl_applet_set();
        for bundle in set.bundles() {
            let bytes = bundle.archive().to_bytes();
            let back = Archive::from_bytes(&bytes).expect("reparse");
            assert_eq!(&back, bundle.archive(), "bundle {}", bundle.name());
        }
    }

    #[test]
    fn table_renders_like_table1() {
        let set = BundleSet::jhdl_applet_set();
        let table = set.to_string();
        assert!(table.contains("JHDLBase.jar"));
        assert!(table.contains("Applet.jar"));
        assert!(table.contains("Total"));
        assert!(table.contains("kB"));
    }

    #[test]
    fn subset_selects_by_name() {
        let set = BundleSet::full_set();
        let sub = set.subset(&["Virtex", "Netlist", "nope"]);
        assert_eq!(sub.bundles().len(), 2);
        assert!(sub.get("Netlist").is_some());
    }

    #[test]
    fn full_set_extends_applet_set() {
        let set = BundleSet::full_set();
        assert_eq!(set.bundles().len(), 7);
        assert!(set.get("Estimator").is_some());
        assert!(set.get("ModGen").is_some());
    }
}
