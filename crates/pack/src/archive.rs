//! The archive container — this reproduction's "Jar file".

use std::fmt;

use crate::crc::crc32;
use crate::error::PackError;
use crate::lzss::{compress, decompress};

pub(crate) const MAGIC: &[u8; 4] = b"IPDA";
pub(crate) const VERSION: u8 = 1;

/// Serializes the container header (magic, version, name, count).
pub(crate) fn write_header(out: &mut Vec<u8>, name: &str, count: usize) {
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    write_str(out, name);
    out.extend_from_slice(&(count as u32).to_le_bytes());
}

/// Serializes one entry's wire segment: name, raw length, packed
/// length, CRC-32, compressed payload. Both [`Archive::to_bytes`] and
/// the compress-once [`crate::PackedArchive`] emit entries through
/// this function, so cached segments concatenate to byte-identical
/// containers.
pub(crate) fn write_entry_segment(out: &mut Vec<u8>, name: &str, data: &[u8]) {
    write_str(out, name);
    let packed = compress(data);
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&(packed.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&packed);
}

/// One named entry of an [`Archive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    name: String,
    data: Vec<u8>,
}

impl Entry {
    /// Entry name (a path-like string).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Uncompressed contents.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

/// A compressed, checksummed container of named entries — the analog
/// of the Jar archives the paper partitions JHDL into (its Table 1).
///
/// # Examples
///
/// ```
/// use ipd_pack::Archive;
///
/// # fn main() -> Result<(), ipd_pack::PackError> {
/// let mut archive = Archive::new("applet");
/// archive.add("generator/kcm.class", b"...bytecode...".to_vec())?;
/// let bytes = archive.to_bytes();
/// let back = Archive::from_bytes(&bytes)?;
/// assert_eq!(back.entry("generator/kcm.class")?.data(), b"...bytecode...");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Archive {
    name: String,
    entries: Vec<Entry>,
}

impl Archive {
    /// An empty archive with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Archive {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// The archive's name (e.g. `"JHDLBase"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an entry.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::DuplicateEntry`] if the name is taken.
    pub fn add(&mut self, name: impl Into<String>, data: Vec<u8>) -> Result<(), PackError> {
        let name = name.into();
        if self.entries.iter().any(|e| e.name == name) {
            return Err(PackError::DuplicateEntry { entry: name });
        }
        self.entries.push(Entry { name, data });
        Ok(())
    }

    /// Looks up an entry by name.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::MissingEntry`] when absent.
    pub fn entry(&self, name: &str) -> Result<&Entry, PackError> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| PackError::MissingEntry {
                entry: name.to_owned(),
            })
    }

    /// All entries in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the archive has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total uncompressed payload size.
    #[must_use]
    pub fn raw_size(&self) -> usize {
        self.entries.iter().map(|e| e.data.len()).sum()
    }

    /// Serializes the archive (compressing every entry).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_header(&mut out, &self.name, self.entries.len());
        for entry in &self.entries {
            write_entry_segment(&mut out, &entry.name, &entry.data);
        }
        out
    }

    /// The serialized (compressed) size in bytes — what a browser would
    /// download.
    ///
    /// Note: this compresses the whole archive to measure it. Hot
    /// paths that measure or serve repeatedly should build a
    /// [`crate::PackedArchive`] (or go through the shared
    /// [`crate::cache`]) so each entry is compressed exactly once.
    #[must_use]
    pub fn packed_size(&self) -> usize {
        self.to_bytes().len()
    }

    /// Deserializes an archive, decompressing and CRC-checking every
    /// entry.
    ///
    /// # Errors
    ///
    /// Returns [`PackError::CorruptStream`] for malformed containers
    /// and [`PackError::ChecksumMismatch`] for entries whose contents
    /// do not match their stored CRC.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PackError> {
        let mut reader = Reader { bytes, pos: 0 };
        let magic = reader.take(4)?;
        if magic != MAGIC {
            return Err(PackError::CorruptStream {
                reason: "bad magic".to_owned(),
            });
        }
        let version = reader.take(1)?[0];
        if version != VERSION {
            return Err(PackError::CorruptStream {
                reason: format!("unsupported version {version}"),
            });
        }
        let name = reader.read_str()?;
        let count = reader.read_u32()? as usize;
        // Every entry needs at least a name length, three u32 header
        // fields and its payload; a count no remaining input could
        // satisfy is hostile — reject it before reserving anything.
        let min_entry_bytes = 2 + 4 + 4 + 4;
        if count > (bytes.len() - reader.pos) / min_entry_bytes {
            return Err(PackError::CorruptStream {
                reason: format!("entry count {count} exceeds remaining input"),
            });
        }
        let mut archive = Archive::new(name);
        archive.entries.reserve_exact(count);
        for _ in 0..count {
            let entry_name = reader.read_str()?;
            let raw_len = reader.read_u32()? as usize;
            let packed_len = reader.read_u32()? as usize;
            let crc = reader.read_u32()?;
            let packed = reader.take(packed_len)?;
            let data = decompress(packed)?;
            if data.len() != raw_len {
                return Err(PackError::CorruptStream {
                    reason: format!(
                        "entry {entry_name}: length {} != header {raw_len}",
                        data.len()
                    ),
                });
            }
            if crc32(&data) != crc {
                return Err(PackError::ChecksumMismatch { entry: entry_name });
            }
            archive.add(entry_name, data)?;
        }
        Ok(archive)
    }
}

impl fmt::Display for Archive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} entries, {} bytes raw",
            self.name,
            self.len(),
            self.raw_size()
        )?;
        for e in &self.entries {
            writeln!(f, "  {:<40} {:>8} bytes", e.name, e.data.len())?;
        }
        Ok(())
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PackError> {
        if self.pos + n > self.bytes.len() {
            return Err(PackError::CorruptStream {
                reason: "truncated container".to_owned(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn read_u32(&mut self) -> Result<u32, PackError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn read_str(&mut self) -> Result<String, PackError> {
        let len = {
            let b = self.take(2)?;
            u16::from_le_bytes([b[0], b[1]]) as usize
        };
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PackError::CorruptStream {
            reason: "entry name is not UTF-8".to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_multi_entry() {
        let mut a = Archive::new("Virtex");
        a.add("lib/lut4.class", vec![1, 2, 3, 4]).unwrap();
        a.add("lib/fdce.class", b"flip flop model".to_vec())
            .unwrap();
        a.add("empty", Vec::new()).unwrap();
        let bytes = a.to_bytes();
        let back = Archive::from_bytes(&bytes).expect("parse");
        assert_eq!(back, a);
        assert_eq!(back.name(), "Virtex");
        assert_eq!(back.raw_size(), 4 + 15);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut a = Archive::new("x");
        a.add("one", vec![]).unwrap();
        assert!(matches!(
            a.add("one", vec![]),
            Err(PackError::DuplicateEntry { .. })
        ));
    }

    #[test]
    fn missing_entry_error() {
        let a = Archive::new("x");
        assert!(matches!(
            a.entry("nope"),
            Err(PackError::MissingEntry { .. })
        ));
    }

    #[test]
    fn corruption_detected_by_crc() {
        let mut a = Archive::new("x");
        // Long repetitive entry so bit flips land in compressed data.
        a.add("code", b"abcdefgh".repeat(64).to_vec()).unwrap();
        let mut bytes = a.to_bytes();
        // Flip a bit near the end (inside the compressed payload).
        let idx = bytes.len() - 3;
        bytes[idx] ^= 0x10;
        let err = Archive::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                PackError::ChecksumMismatch { .. } | PackError::CorruptStream { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            Archive::from_bytes(b"NOPE....."),
            Err(PackError::CorruptStream { .. })
        ));
    }

    #[test]
    fn packed_smaller_than_raw_for_text() {
        let mut a = Archive::new("x");
        a.add("src", b"let x = 1; ".repeat(500).to_vec()).unwrap();
        assert!(a.packed_size() < a.raw_size());
    }
}
